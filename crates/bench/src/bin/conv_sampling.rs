//! **A6** — sampling-method comparison: Monte Carlo vs Latin Hypercube vs
//! Halton QMC (paper §IV-C: "the application of other methods is
//! straightforward").
//!
//! Compares the replication scatter of the mean hottest-wire temperature
//! across the three designs at equal sample budgets.

use etherm_bench::{arg_usize, build_paper_package, iid_inputs};
use etherm_package::paper_elongation_distribution;
use etherm_report::TextTable;
use etherm_uq::{
    run_monte_carlo, Halton, LatinHypercube, McOptions, MonteCarloSampler, SampleGenerator, Sobol,
};

fn main() {
    let m = arg_usize("samples", 16);
    let reps = arg_usize("reps", 3);
    let steps = arg_usize("steps", 25);
    let mut built = build_paper_package();
    let delta = paper_elongation_distribution();
    let dists = iid_inputs(&delta, 12);

    println!("A6: sampling designs at M = {m}, {reps} replications each\n");
    let mut t = TextTable::new(&["design", "mean of means [K]", "scatter of means [K]"]);
    for design in ["monte-carlo", "latin-hypercube", "halton", "sobol"] {
        let mut means = Vec::new();
        for rep in 0..reps {
            let mut gen: Box<dyn SampleGenerator> = match design {
                "monte-carlo" => Box::new(MonteCarloSampler::new(100 + rep as u64)),
                "latin-hypercube" => Box::new(LatinHypercube::new(100 + rep as u64)),
                "halton" => Box::new(Halton::new(20 + rep * m)),
                _ => Box::new(Sobol::new(1 + rep * m)),
            };
            let result = run_monte_carlo(
                gen.as_mut(),
                &dists,
                m,
                McOptions::default(),
                |_, deltas| -> Result<Vec<f64>, String> {
                    built.apply_elongations(deltas).map_err(|e| e.to_string())?;
                    let sim = etherm_core::Simulator::new(
                        &built.model,
                        etherm_core::SolverOptions::fast(),
                    )
                    .map_err(|e| e.to_string())?;
                    let sol = sim
                        .run_transient(50.0, steps, &[])
                        .map_err(|e| e.to_string())?;
                    Ok(vec![sol.max_wire_series()[steps]])
                },
            )
            .expect("run");
            means.push(result.means()[0]);
            eprintln!("  {design} rep {rep} done");
        }
        let mean: f64 = means.iter().sum::<f64>() / means.len() as f64;
        let scatter = (means.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / (means.len().max(2) - 1) as f64)
            .sqrt();
        t.add_row_owned(vec![
            design.into(),
            format!("{mean:.3}"),
            format!("{scatter:.4}"),
        ]);
    }
    println!("{}", t.render());
    println!("stratified designs (LHS, Halton) should show noticeably smaller scatter of the");
    println!("estimated mean than iid MC at the same budget — the QoI is nearly linear in the");
    println!("12 elongations, the friendliest case for variance-reduction methods.");
}
