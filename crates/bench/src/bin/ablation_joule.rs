//! **A2** — cell-based vs edge-based Joule quadrature.
//!
//! The paper interpolates voltages to cell midpoints and scatters cell
//! powers to nodes (§III-A). The edge-based alternative dissipates
//! `Mσ,e·u_e²` directly on the edge endpoints and is discretely exact
//! w.r.t. the FIT stiffness. Both conserve the global power; this ablation
//! quantifies how much the choice moves the wire-temperature QoI.

use etherm_bench::{arg_usize, build_paper_package};
use etherm_core::{JouleScheme, Simulator, SolverOptions};
use etherm_report::TextTable;

fn main() {
    let steps = arg_usize("steps", 25);
    let built = build_paper_package();

    println!("A2: Joule-heat quadrature ablation\n");
    let mut rows = Vec::new();
    for (name, scheme) in [
        ("cell-based (paper)", JouleScheme::CellBased),
        ("edge-based", JouleScheme::EdgeBased),
    ] {
        let mut options = SolverOptions::fast();
        options.joule = scheme;
        let sim = Simulator::new(&built.model, options).expect("simulator");
        let sol = sim.run_transient(50.0, steps, &[]).expect("transient");
        rows.push((
            name,
            sol.max_wire_series()[steps],
            *sol.field_power.last().expect("nonempty"),
            sol.wire_powers.iter().map(|w| w[steps]).sum::<f64>(),
        ));
        eprintln!("  {name} done");
    }
    let mut t = TextTable::new(&["scheme", "E_hot(50s) [K]", "field power [mW]", "wire power [mW]"]);
    for &(name, e, fp, wp) in &rows {
        t.add_row_owned(vec![
            name.into(),
            format!("{e:.3}"),
            format!("{:.3}", fp * 1e3),
            format!("{:.3}", wp * 1e3),
        ]);
    }
    println!("{}", t.render());
    let de = (rows[0].1 - rows[1].1).abs();
    println!("QoI difference: {de:.3} K — the quadrature choice is a sub-sigma_MC effect");
    println!("(sigma_MC ≈ 4-5 K), consistent with the paper not dwelling on it.");
}
