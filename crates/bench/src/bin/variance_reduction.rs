//! **A11** — variance reduction vs the paper's plain Monte Carlo (Eq. 6).
//!
//! The hottest-wire temperature is monotone in each wire elongation
//! (longer wire → larger resistance → more self-heating), which is the
//! textbook case for *antithetic variates*: pairs `(u, 1 − u)` are
//! negatively correlated through the model, shrinking `σ_MC` at equal cost.
//!
//! Usage: `cargo run --release -p etherm-bench --bin variance_reduction --
//!         [--pairs N] [--steps S]`

use etherm_bench::{arg_usize, build_paper_package, mc_sample_outputs};
use etherm_package::paper_elongation_distribution;
use etherm_report::TextTable;
use etherm_uq::{antithetic, Distribution, RunningStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_WIRES: usize = 12;

fn main() {
    let n_pairs = arg_usize("pairs", 8);
    let steps = arg_usize("steps", 25);
    let delta_dist = paper_elongation_distribution();
    println!("A11: antithetic variates vs plain MC, {n_pairs} pairs, {steps} steps\n");

    let mut built = build_paper_package();
    let mut hottest_of = |u: &[f64]| -> f64 {
        let deltas: Vec<f64> = u
            .iter()
            .map(|&ui| {
                delta_dist
                    .quantile(ui.clamp(1e-12, 1.0 - 1e-12))
                    .min(0.9)
            })
            .collect();
        let outputs = mc_sample_outputs(&mut built, &deltas, steps);
        (0..N_WIRES)
            .map(|j| outputs[j * (steps + 1) + steps])
            .fold(f64::NEG_INFINITY, f64::max)
    };

    // Antithetic estimate (2·n_pairs model evaluations).
    let anti = antithetic(&mut hottest_of, N_WIRES, n_pairs, 77).expect("antithetic estimate");
    eprintln!("  antithetic done");

    // Plain MC at the same budget.
    let mut rng = StdRng::seed_from_u64(77);
    let mut plain = RunningStats::new();
    for s in 0..2 * n_pairs {
        let u: Vec<f64> = (0..N_WIRES).map(|_| rng.gen::<f64>()).collect();
        plain.push(hottest_of(&u));
        if (s + 1) % 4 == 0 {
            eprintln!("  plain MC {}/{}", s + 1, 2 * n_pairs);
        }
    }

    let mut t = TextTable::new(&["estimator", "mean [K]", "std error [K]", "evals"]);
    t.add_row_owned(vec![
        "plain MC (Eq. 6 baseline)".into(),
        format!("{:.3}", plain.mean()),
        format!("{:.4}", plain.mc_error()),
        format!("{}", 2 * n_pairs),
    ]);
    t.add_row_owned(vec![
        "antithetic pairs".into(),
        format!("{:.3}", anti.mean),
        format!("{:.4}", anti.std_error),
        format!("{}", anti.evaluations),
    ]);
    println!("{}", t.render());
    println!("Expectation: both means agree within error; the antithetic standard error is");
    println!("noticeably below the plain-MC σ/√M because the QoI is monotone in every δ_j.");
}
