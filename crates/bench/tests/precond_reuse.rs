//! Lazily-refreshed preconditioners must not change the physics.
//!
//! Runs the paper 28-pad/12-wire package transient (coarse mesh, debug-build
//! friendly) once with the cache disabled (rebuild before every solve) and
//! once with the default lazy refresh, and checks that the temperatures agree
//! within solver tolerance while the lazy run performs strictly fewer
//! preconditioner builds than solves.

use etherm_core::{Simulator, SolverOptions};
use etherm_package::{build_model, BuildOptions, BuiltPackage, PackageGeometry};

fn coarse_package() -> BuiltPackage {
    let opts = BuildOptions {
        target_spacing_xy: 1.0e-3,
        target_spacing_z: 0.5e-3,
        ..BuildOptions::paper_fig7()
    };
    build_model(&PackageGeometry::paper(), &opts).expect("package builds")
}

#[test]
fn lagged_preconditioner_matches_rebuild_every_solve() {
    let built = coarse_package();
    let t_end = 6.0;
    let steps = 3;

    let sim_ref = Simulator::new(&built.model, SolverOptions::rebuild_every_solve()).unwrap();
    let sol_ref = sim_ref.run_transient(t_end, steps, &[t_end]).unwrap();
    let c_ref = sim_ref.counters();
    let solves_ref = c_ref.electrical_solves + c_ref.thermal_solves;
    // Cache disabled: every solve (re)builds, nothing is reused.
    assert_eq!(c_ref.precond_reuses, 0);
    assert!(c_ref.precond_rebuilds >= solves_ref);

    let sim_lazy = Simulator::new(&built.model, SolverOptions::default()).unwrap();
    let sol_lazy = sim_lazy.run_transient(t_end, steps, &[t_end]).unwrap();
    let c_lazy = sim_lazy.counters();
    let solves_lazy = c_lazy.electrical_solves + c_lazy.thermal_solves;

    // The lazy cache must actually reuse factorizations: strictly fewer
    // (re)builds than solves on the paper package.
    assert!(
        c_lazy.precond_rebuilds < solves_lazy,
        "no reuse: {} rebuilds for {} solves",
        c_lazy.precond_rebuilds,
        solves_lazy
    );
    assert!(c_lazy.precond_reuses > 0);

    // Identical physics within CG/Picard tolerance: temperature fields and
    // wire temperatures agree far below any physically meaningful scale.
    let (_, t_ref) = &sol_ref.snapshots[sol_ref.snapshots.len() - 1];
    let (_, t_lazy) = &sol_lazy.snapshots[sol_lazy.snapshots.len() - 1];
    let max_diff = t_ref
        .iter()
        .zip(t_lazy)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-4, "temperature fields diverged: {max_diff} K");
    for j in 0..12 {
        let wr = sol_ref.wire_series(j);
        let wl = sol_lazy.wire_series(j);
        for (a, b) in wr.iter().zip(wl) {
            assert!((a - b).abs() < 1e-4, "wire {j}: {a} vs {b}");
        }
    }
}

#[test]
fn stationary_solve_uses_its_own_cache() {
    let built = coarse_package();
    // The stationary Picard loop on the coarse mesh needs more headroom
    // than the transient default.
    let options = SolverOptions {
        picard_max_iter: 80,
        ..SolverOptions::default()
    };
    let sim = Simulator::new(&built.model, options).unwrap();
    let st1 = sim.solve_stationary().unwrap();
    let st2 = sim.solve_stationary().unwrap();
    assert!(st1.converged && st2.converged);
    // Second stationary solve reuses the cached stationary preconditioner.
    let c = sim.counters();
    assert!(c.precond_reuses > 0);
    let diff = st1
        .temperature
        .iter()
        .zip(&st2.temperature)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(diff < 1e-6, "stationary solves disagree: {diff} K");
}
