//! Kernel bench: CSR sparse matrix-vector products on package-sized
//! FIT matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etherm_grid::{operators, Axis, Grid3};
use std::hint::black_box;

fn grid(n: usize) -> Grid3 {
    Grid3::new(
        Axis::uniform(0.0, 1.0, n).unwrap(),
        Axis::uniform(0.0, 1.0, n).unwrap(),
        Axis::uniform(0.0, 1.0, n / 4 + 1).unwrap(),
    )
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(20);
    for n in [16usize, 32] {
        let g = grid(n);
        let m: Vec<f64> = (0..g.n_edges())
            .map(|e| g.dual_area(e) / g.edge_length(e))
            .collect();
        let k = operators::assemble_stiffness(&g, &m);
        let x: Vec<f64> = (0..k.n_rows()).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; k.n_rows()];
        group.bench_with_input(
            BenchmarkId::new("laplacian", format!("{} nodes", g.n_nodes())),
            &n,
            |b, _| {
                b.iter(|| {
                    k.spmv(black_box(&x), &mut y);
                    black_box(&y);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
