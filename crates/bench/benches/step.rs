//! End-to-end bench: one coupled implicit-Euler step of the paper package
//! (electrical solve + Picard thermal iterations).

use criterion::{criterion_group, criterion_main, Criterion};
use etherm_core::{Simulator, SolverOptions};
use etherm_package::{build_model, BuildOptions, PackageGeometry};
use std::hint::black_box;

fn bench_step(c: &mut Criterion) {
    let geometry = PackageGeometry::paper();
    let opts = BuildOptions {
        target_spacing_xy: 0.42e-3,
        target_spacing_z: 0.22e-3,
        ..BuildOptions::paper_fig7()
    };
    let built = build_model(&geometry, &opts).expect("package builds");
    let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
    let t0 = sim.initial_temperature();
    let n = sim.layout().n_total();

    let mut group = c.benchmark_group("coupled-step");
    group.sample_size(10);
    group.bench_function("first step (cold caches/guesses)", |b| {
        b.iter(|| {
            let mut phi = vec![0.0; n];
            let r = sim.step(&t0, 1.0, &mut phi, 1).unwrap();
            black_box(r.linear_iterations);
        })
    });
    // Warm configuration: state after a few steps, warm potential.
    let mut phi = vec![0.0; n];
    let mut state = t0.clone();
    for s in 1..=3 {
        state = sim.step(&state, 1.0, &mut phi, s).unwrap().temperature;
    }
    group.bench_function("warm step (mid-transient)", |b| {
        b.iter(|| {
            let mut phi_local = phi.clone();
            let r = sim.step(&state, 1.0, &mut phi_local, 4).unwrap();
            black_box(r.linear_iterations);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
