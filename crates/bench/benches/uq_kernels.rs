//! Kernel bench: UQ machinery — quadrature construction, chaos fitting,
//! sparse grids and Sobol' estimation on a cheap analytic model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etherm_uq::special::normal_quantile;
use etherm_uq::{fit_regression, sobol_saltelli, MultiIndexSet, SparseGrid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_quadrature(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadrature");
    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("gauss_hermite", n), &n, |b, &n| {
            b.iter(|| {
                etherm_numerics::quadrature::QuadratureRule::gauss_hermite(black_box(n)).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("gauss_legendre", n), &n, |b, &n| {
            b.iter(|| {
                etherm_numerics::quadrature::QuadratureRule::gauss_legendre(black_box(n)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pce_regression(c: &mut Criterion) {
    let mut group = c.benchmark_group("pce_regression");
    group.sample_size(20);
    // The paper's shape: 12 germ dimensions.
    let dim = 12;
    for degree in [1usize, 2] {
        let basis = MultiIndexSet::total_degree(dim, degree).unwrap().len();
        let n = 3 * basis;
        let mut rng = StdRng::seed_from_u64(1);
        let xi: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| normal_quantile(rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12)))
                    .collect()
            })
            .collect();
        let y: Vec<f64> = xi
            .iter()
            .map(|x| 500.0 + x.iter().enumerate().map(|(j, v)| (j as f64 + 1.0) * v).sum::<f64>())
            .collect();
        group.bench_with_input(
            BenchmarkId::new(format!("d12_degree{degree}"), n),
            &n,
            |b, _| b.iter(|| fit_regression(black_box(&xi), black_box(&y), dim, degree).unwrap()),
        );
    }
    group.finish();
}

fn bench_sparse_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_grid");
    group.sample_size(20);
    for (dim, level) in [(4usize, 4usize), (8, 3), (12, 2)] {
        group.bench_with_input(
            BenchmarkId::new("gauss_hermite", format!("d{dim}_l{level}")),
            &(dim, level),
            |b, &(d, l)| b.iter(|| SparseGrid::gauss_hermite(black_box(d), black_box(l)).unwrap()),
        );
    }
    group.finish();
}

fn bench_saltelli(c: &mut Criterion) {
    let mut group = c.benchmark_group("sobol_saltelli");
    group.sample_size(10);
    group.bench_function("d12_n256_analytic", |b| {
        b.iter(|| {
            sobol_saltelli(
                |u| u.iter().enumerate().map(|(j, v)| (j as f64 + 1.0) * v).sum::<f64>(),
                black_box(12),
                256,
                7,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_quadrature,
    bench_pce_regression,
    bench_sparse_grid,
    bench_saltelli
);
criterion_main!(benches);
