//! End-to-end bench: Monte Carlo sample throughput (one full 50-step
//! transient per sample, as in the Fig. 7 study) on a reduced mesh.

use criterion::{criterion_group, criterion_main, Criterion};
use etherm_core::{Simulator, SolverOptions};
use etherm_package::{build_model, paper_elongation_distribution, BuildOptions, PackageGeometry};
use etherm_uq::dist::Distribution;
use std::hint::black_box;

fn bench_mc_sample(c: &mut Criterion) {
    let geometry = PackageGeometry::paper();
    let opts = BuildOptions {
        // Reduced mesh so the bench completes quickly; the production mesh
        // is benchmarked by `step.rs`.
        target_spacing_xy: 0.6e-3,
        target_spacing_z: 0.3e-3,
        ..BuildOptions::paper_fig7()
    };
    let mut built = build_model(&geometry, &opts).expect("package builds");
    let delta = paper_elongation_distribution();

    let mut group = c.benchmark_group("monte-carlo");
    group.sample_size(10);
    group.bench_function("one MC sample (25-step transient)", |b| {
        let mut counter = 0usize;
        b.iter(|| {
            counter += 1;
            let deltas: Vec<f64> = (0..12)
                .map(|j| delta.quantile(((counter * 13 + j * 7) % 97 + 1) as f64 / 98.0))
                .collect();
            built.apply_elongations(&deltas).unwrap();
            let sim = Simulator::new(&built.model, SolverOptions::fast()).unwrap();
            let sol = sim.run_transient(50.0, 25, &[]).unwrap();
            black_box(sol.max_wire_series()[25]);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mc_sample);
criterion_main!(benches);
