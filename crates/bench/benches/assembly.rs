//! Kernel bench: FIT system assembly — one-shot COO stamping vs the
//! pattern-cached reassembly used inside the Picard loop.

use criterion::{criterion_group, criterion_main, Criterion};
use etherm_fit::{CachedStamper, DofMap, Stamper};
use etherm_grid::{Axis, Grid3};
use std::hint::black_box;

fn bench_assembly(c: &mut Criterion) {
    let g = Grid3::new(
        Axis::uniform(0.0, 1.0, 24).unwrap(),
        Axis::uniform(0.0, 1.0, 24).unwrap(),
        Axis::uniform(0.0, 1.0, 8).unwrap(),
    );
    let m: Vec<f64> = (0..g.n_edges())
        .map(|e| g.dual_area(e) / g.edge_length(e))
        .collect();
    let map = DofMap::new(g.n_nodes(), &[(0, 1.0)]);

    let mut group = c.benchmark_group("assembly");
    group.sample_size(20);
    group.bench_function("one-shot stamper (sorts every time)", |b| {
        b.iter(|| {
            let mut st = Stamper::new(&map);
            for e in 0..g.n_edges() {
                let (na, nb) = g.edge_endpoints(e);
                st.add_conductance(na, nb, m[e]);
            }
            let (a, rhs) = st.finish();
            black_box((a.nnz(), rhs.len()));
        })
    });
    group.bench_function("cached stamper (pattern reuse)", |b| {
        let mut cache = CachedStamper::new(&map);
        // Warm-up round records the pattern.
        cache.begin();
        for e in 0..g.n_edges() {
            let (na, nb) = g.edge_endpoints(e);
            cache.add_conductance(na, nb, m[e]);
        }
        let _ = cache.finish();
        b.iter(|| {
            cache.begin();
            for e in 0..g.n_edges() {
                let (na, nb) = g.edge_endpoints(e);
                cache.add_conductance(na, nb, m[e]);
            }
            let (a, rhs) = cache.finish();
            black_box((a.nnz(), rhs.len()));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
