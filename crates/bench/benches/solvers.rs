//! **A7** — linear-solver comparison on a package-like FIT matrix:
//! CG (no preconditioner) vs Jacobi vs IC(0) vs SSOR.

use criterion::{criterion_group, criterion_main, Criterion};
use etherm_grid::{operators, Axis, Grid3};
use etherm_numerics::solvers::{
    cg, pcg, CgOptions, IncompleteCholesky, JacobiPrecond, Ssor,
};
use etherm_numerics::sparse::Csr;
use std::hint::black_box;

/// A two-material (copper-in-epoxy-like, contrast 457×) thermal matrix.
fn system() -> (Csr, Vec<f64>) {
    let g = Grid3::new(
        Axis::uniform(0.0, 6e-3, 20).unwrap(),
        Axis::uniform(0.0, 6e-3, 20).unwrap(),
        Axis::uniform(0.0, 0.8e-3, 5).unwrap(),
    );
    let m: Vec<f64> = (0..g.n_edges())
        .map(|e| {
            let (a, _) = g.edge_endpoints(e);
            let (x, y, _) = g.node_position(a);
            let lam = if (1.5e-3..4.5e-3).contains(&x) && (1.5e-3..4.5e-3).contains(&y) {
                398.0
            } else {
                0.87
            };
            lam * g.dual_area(e) / g.edge_length(e)
        })
        .collect();
    let mut k = operators::assemble_stiffness(&g, &m);
    // Robin-like diagonal to make it SPD.
    let diag: Vec<f64> = (0..g.n_nodes()).map(|n| 25.0 * g.total_boundary_area(n) + 1e-9).collect();
    k.add_diag(&diag);
    let b: Vec<f64> = (0..k.n_rows()).map(|i| ((i % 97) as f64 - 48.0) * 1e-3).collect();
    (k, b)
}

fn bench_solvers(c: &mut Criterion) {
    let (k, b) = system();
    let opts = CgOptions::with_tol(1e-8);
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);

    group.bench_function("cg (no preconditioner)", |bch| {
        bch.iter(|| {
            let mut x = vec![0.0; k.n_rows()];
            let r = cg(&k, &b, &mut x, &opts).unwrap();
            black_box((r.iterations, x[0]));
        })
    });
    group.bench_function("pcg + jacobi", |bch| {
        let p = JacobiPrecond::new(&k).unwrap();
        bch.iter(|| {
            let mut x = vec![0.0; k.n_rows()];
            let r = pcg(&k, &b, &mut x, &p, &opts).unwrap();
            black_box((r.iterations, x[0]));
        })
    });
    group.bench_function("pcg + ic0 (incl. factorization)", |bch| {
        bch.iter(|| {
            let p = IncompleteCholesky::new(&k).unwrap();
            let mut x = vec![0.0; k.n_rows()];
            let r = pcg(&k, &b, &mut x, &p, &opts).unwrap();
            black_box((r.iterations, x[0]));
        })
    });
    group.bench_function("pcg + ssor(1.2)", |bch| {
        let p = Ssor::new(&k, 1.2).unwrap();
        bch.iter(|| {
            let mut x = vec![0.0; k.n_rows()];
            let r = pcg(&k, &b, &mut x, &p, &opts).unwrap();
            black_box((r.iterations, x[0]));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
