//! Reliability glue: the package limit state as an ensemble scenario.
//!
//! The paper's reliability question — does `maxⱼ T_bw,j(t)` reach the mold
//! degradation threshold `T_critical = 523 K` under uncertain wire
//! elongations? — becomes a [`Scenario`] whose per-sample evaluation runs
//! the transient through [`Session::run_transient_observed`] with a
//! [`ThresholdObserver`]: a failing sample terminates (and bisects its
//! crossing) the moment the limit state is decided, so the rare-event
//! engine pays a fraction of a full transient for it.
//!
//! A sample binds the 12 relative elongations `δⱼ` and, optionally, a
//! drive (current) scale as a trailing 13th entry — the load parameter of
//! the fusing-current search.

use crate::builder::{elongation_length, BuiltPackage};
use etherm_core::{CoreError, Scenario, Session, ThresholdObserver};

/// A [`Scenario`] over wire elongations (+ optional drive scale) whose QoI
/// vector is the limit-state response:
///
/// | index | content |
/// |-------|---------|
/// | [`FailureScenario::QOI_PEAK`] | response `Y = max_t maxⱼ T_bw,j` (K); for an early-exited run the peak up to the crossing step, which is ≥ the threshold — exactly the information the indicator `Y ≥ b` needs for any `b ≤` threshold |
/// | [`FailureScenario::QOI_CROSSING`] | bisected first-crossing time (s), `NaN` when the run never crossed |
/// | [`FailureScenario::QOI_SOLVES`] | implicit-Euler solves spent (accepted steps + bisection sub-steps) |
#[derive(Debug, Clone)]
pub struct FailureScenario {
    wire_indices: Vec<usize>,
    direct_distances: Vec<f64>,
    t_end: f64,
    n_steps: usize,
    threshold: f64,
    current_scale: f64,
    bisections: usize,
}

impl BuiltPackage {
    /// Limit-state scenario for this package: the paper transient over
    /// `t_end` with `n_steps` implicit-Euler steps, early-exited at
    /// `threshold` (K). Samples are one relative elongation `δⱼ` per wire,
    /// optionally followed by a drive-scale multiplier.
    pub fn failure_scenario(&self, t_end: f64, n_steps: usize, threshold: f64) -> FailureScenario {
        FailureScenario {
            wire_indices: self.wire_indices.clone(),
            direct_distances: self.direct_distances.clone(),
            t_end,
            n_steps,
            threshold,
            current_scale: 1.0,
            bisections: 4,
        }
    }
}

impl FailureScenario {
    /// QoI index of the response `Y = max_t maxⱼ T_bw,j`.
    pub const QOI_PEAK: usize = 0;
    /// QoI index of the bisected crossing time (`NaN` = never crossed).
    pub const QOI_CROSSING: usize = 1;
    /// QoI index of the solve count (accepted + bisection sub-steps).
    pub const QOI_SOLVES: usize = 2;

    /// Fixes a base drive (current) scale applied to every sample; a
    /// trailing sample entry multiplies on top of this. Default 1.0.
    pub fn with_current_scale(mut self, scale: f64) -> Self {
        self.current_scale = scale;
        self
    }

    /// Overrides the number of crossing-bisection sub-steps (default 4).
    pub fn with_bisections(mut self, bisections: usize) -> Self {
        self.bisections = bisections;
        self
    }

    /// Lowers the early-exit threshold to `exit` (K): the transient stops at
    /// the earlier of `exit` and the failure threshold, reporting its
    /// peak-so-far. This is the intermediate-threshold hook of
    /// `SubsetSimulation::intermediate_exit` — the reported peak is exact
    /// below the exit and a lower bound `≥ exit` once it crossed, exactly
    /// the `LimitState::evaluate_truncated` contract of
    /// `etherm_reliability`.
    pub fn with_exit_threshold(mut self, exit: f64) -> Self {
        self.threshold = self.threshold.min(exit);
        self
    }

    /// The failure threshold (K).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The base drive scale.
    pub fn current_scale(&self) -> f64 {
        self.current_scale
    }

    /// Number of wires (= elongation entries per sample).
    pub fn n_wires(&self) -> usize {
        self.wire_indices.len()
    }
}

impl Scenario for FailureScenario {
    fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
        let n = self.wire_indices.len();
        assert!(
            sample.len() == n || sample.len() == n + 1,
            "FailureScenario: sample must hold {n} elongations (+ optional drive scale), got {}",
            sample.len()
        );
        for (j, &delta) in sample[..n].iter().enumerate() {
            let length = elongation_length(self.direct_distances[j], delta)?;
            session.set_wire_length(self.wire_indices[j], length)?;
        }
        let scale = self.current_scale * sample.get(n).copied().unwrap_or(1.0);
        session.set_drive_scale(scale)
    }

    fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
        let mut observer =
            ThresholdObserver::new(self.threshold).with_bisections(self.bisections);
        let observed =
            session.run_transient_observed(self.t_end, self.n_steps, &[], &mut observer)?;
        Ok(vec![
            observer.peak(),
            observed.crossing_time.unwrap_or(f64::NAN),
            (observed.steps_executed + observed.bisection_steps) as f64,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_model, BuildOptions};
    use crate::geometry::PackageGeometry;
    use etherm_core::{run_ensemble, EnsembleOptions, SolverOptions};
    use std::sync::Arc;

    fn coarse_package() -> BuiltPackage {
        let opts = BuildOptions {
            target_spacing_xy: 0.9e-3,
            target_spacing_z: 0.5e-3,
            ..BuildOptions::paper_fig7()
        };
        build_model(&PackageGeometry::paper(), &opts).unwrap()
    }

    #[test]
    fn failed_samples_exit_early_and_report_crossings() {
        let built = coarse_package();
        let compiled = Arc::new(built.compile(SolverOptions::fast()).unwrap());
        let n_steps = 20;
        // A threshold low enough that the nominal package crosses it during
        // the heating ramp; a safe sample gets one far above.
        let scenario = built.failure_scenario(20.0, n_steps, 340.0);
        let samples = vec![vec![0.17; 12]];
        let r = run_ensemble(&compiled, &scenario, &samples, &EnsembleOptions::default())
            .unwrap();
        let out = &r.outputs[0];
        assert!(out[FailureScenario::QOI_PEAK] >= 340.0);
        let crossing = out[FailureScenario::QOI_CROSSING];
        assert!(crossing.is_finite() && crossing > 0.0 && crossing < 20.0);
        assert!(
            out[FailureScenario::QOI_SOLVES] < n_steps as f64,
            "early exit must beat the full step count, spent {}",
            out[FailureScenario::QOI_SOLVES]
        );

        // Far threshold: full run, no crossing, exact response.
        let safe = built.failure_scenario(20.0, n_steps, 1000.0);
        let r = run_ensemble(&compiled, &safe, &samples, &EnsembleOptions::default()).unwrap();
        let out = &r.outputs[0];
        assert!(out[FailureScenario::QOI_PEAK] < 1000.0);
        assert!(out[FailureScenario::QOI_CROSSING].is_nan());
        assert_eq!(out[FailureScenario::QOI_SOLVES], n_steps as f64);
    }

    #[test]
    fn trailing_sample_entry_scales_the_drive() {
        let built = coarse_package();
        let compiled = Arc::new(built.compile(SolverOptions::fast()).unwrap());
        let scenario = built.failure_scenario(10.0, 10, 1e6); // never exits
        // Same elongations, drive scale 1 vs 1.5: the scaled sample must
        // run hotter.
        let mut base = vec![0.17; 12];
        let mut hot = base.clone();
        base.push(1.0);
        hot.push(1.5);
        let r = run_ensemble(
            &compiled,
            &scenario,
            &[base, hot],
            &EnsembleOptions::default(),
        )
        .unwrap();
        let y0 = r.outputs[0][FailureScenario::QOI_PEAK];
        let y1 = r.outputs[1][FailureScenario::QOI_PEAK];
        assert!(y1 > y0 + 1.0, "drive scale had no effect: {y0} vs {y1}");
        assert_eq!(scenario.n_wires(), 12);
        assert_eq!(scenario.current_scale(), 1.0);
        assert_eq!(scenario.threshold(), 1e6);
    }

    #[test]
    fn exit_threshold_truncates_honestly() {
        let built = coarse_package();
        let compiled = Arc::new(built.compile(SolverOptions::fast()).unwrap());
        let samples = vec![vec![0.17; 12]];
        // Full run (threshold far away): the exact peak.
        let full = built.failure_scenario(20.0, 20, 1e6);
        let r = run_ensemble(&compiled, &full, &samples, &EnsembleOptions::default()).unwrap();
        let exact_peak = r.outputs[0][FailureScenario::QOI_PEAK];
        let full_solves = r.outputs[0][FailureScenario::QOI_SOLVES];

        // Intermediate exit crossed during the heating ramp: the report is a
        // lower bound in [exit, exact] and the run stops early.
        let exit = 340.0;
        assert!(exact_peak > exit);
        let truncated = built.failure_scenario(20.0, 20, 1e6).with_exit_threshold(exit);
        assert_eq!(truncated.threshold(), exit);
        let r =
            run_ensemble(&compiled, &truncated, &samples, &EnsembleOptions::default()).unwrap();
        let y = r.outputs[0][FailureScenario::QOI_PEAK];
        assert!(y >= exit && y <= exact_peak, "{exit} ≤ {y} ≤ {exact_peak}");
        assert!(r.outputs[0][FailureScenario::QOI_SOLVES] < full_solves);

        // Exit above the peak: no truncation, bit-identical response.
        let untouched = built.failure_scenario(20.0, 20, 1e6).with_exit_threshold(exact_peak + 50.0);
        let r =
            run_ensemble(&compiled, &untouched, &samples, &EnsembleOptions::default()).unwrap();
        assert_eq!(
            r.outputs[0][FailureScenario::QOI_PEAK].to_bits(),
            exact_peak.to_bits()
        );
    }

    #[test]
    fn invalid_elongation_or_scale_rejected() {
        let built = coarse_package();
        let compiled = Arc::new(built.compile(SolverOptions::fast()).unwrap());
        let scenario = built.failure_scenario(10.0, 10, 523.0);
        let mut session = Session::new(compiled);
        assert!(scenario.apply(&mut session, &[1.0; 12]).is_err());
        let mut bad_scale = vec![0.17; 12];
        bad_scale.push(f64::NAN);
        assert!(scenario.apply(&mut session, &bad_scale).is_err());
        assert!(scenario.apply(&mut session, &[0.17; 12]).is_ok());
    }
}
