//! Builds the FIT model of the package: conforming mesh, staircase
//! materials, PEC contacts, wires, Table II boundary conditions.

use crate::geometry::PackageGeometry;
use etherm_bondwire::BondWire;
use etherm_core::{CoreError, ElectrothermalModel};
use etherm_fit::boundary::ThermalBoundary;
use etherm_grid::{BoxRegion, CellPaint, GridBuilder, MaterialId};
use etherm_materials::{library, MaterialTable};

/// Mesh/model construction options.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildOptions {
    /// Maximum lateral (x/y) cell size (m).
    pub target_spacing_xy: f64,
    /// Maximum vertical (z) cell size (m).
    pub target_spacing_z: f64,
    /// DC potential magnitude applied to the pad pairs (±V_dc, paper:
    /// 20 mV so that V_bw = 40 mV per pair).
    pub v_dc: f64,
    /// Wire diameter (m), Table II: 25.4 µm.
    pub wire_diameter: f64,
    /// Lumped segments per wire (1 = the paper's two-terminal element).
    pub wire_segments: usize,
    /// Depth of the PEC contact strip at the outer pad end (m).
    pub contact_depth: f64,
    /// Effective cooled-area fraction of the boundary (see
    /// `ThermalBoundary::area_scale`); 1.0 = the full surface convects and
    /// radiates as in the paper's §V-B description.
    pub boundary_area_scale: f64,
    /// Override for the mold compound's volumetric heat capacity ρc
    /// (J/K/m³). `None` keeps the literature value. Used by the calibrated
    /// Fig. 7 reproduction — see DESIGN.md §4 and EXPERIMENTS.md: the
    /// paper's published power (~90 mW), temperature rise (~200 K) and
    /// settling time (~15 s) are mutually consistent only with an
    /// effective package heat capacity far below literature epoxy values.
    pub mold_rho_c: Option<f64>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            target_spacing_xy: 0.30e-3,
            target_spacing_z: 0.15e-3,
            v_dc: 20e-3,
            wire_diameter: 25.4e-6,
            wire_segments: 1,
            contact_depth: 0.12e-3,
            boundary_area_scale: 1.0,
            mold_rho_c: None,
        }
    }
}

impl BuildOptions {
    /// The calibrated Fig. 7 reproduction preset: all Table I/II values
    /// unchanged, with the two unpublished environment parameters
    /// (`boundary_area_scale`, mold ρc) fitted to the two observable
    /// features of the paper's Fig. 7 — steady hottest-wire level ≈ 495 K
    /// and settling by t ≈ 50 s. See EXPERIMENTS.md for the fit.
    pub fn paper_fig7() -> Self {
        BuildOptions {
            boundary_area_scale: PAPER_FIG7_AREA_SCALE,
            mold_rho_c: Some(PAPER_FIG7_MOLD_RHO_C),
            ..BuildOptions::default()
        }
    }
}

/// Calibrated effective cooled-area fraction for the Fig. 7 preset.
pub const PAPER_FIG7_AREA_SCALE: f64 = 0.072;
/// Calibrated mold ρc (J/K/m³) for the Fig. 7 preset.
pub const PAPER_FIG7_MOLD_RHO_C: f64 = 4.0e4;

/// The built model plus the bookkeeping needed by experiments.
#[derive(Debug, Clone)]
pub struct BuiltPackage {
    /// The electrothermal model, ready for `etherm_core::Simulator`.
    pub model: ElectrothermalModel,
    /// Wire index (into `model.wires()`) per planned wire (same order as
    /// [`PackageGeometry::wire_plan`]).
    pub wire_indices: Vec<usize>,
    /// Direct distances `d_j` per wire (m) — the deterministic part of the
    /// uncertain lengths `L_j = d_j/(1 − δ_j)`.
    pub direct_distances: Vec<f64>,
    /// Nominal wire lengths installed in the model (`d_j/(1 − µ_δ)`).
    pub nominal_lengths: Vec<f64>,
}

/// The uncertain wire length `L = d / (1 − δ)` of the paper's elongation
/// model — the single definition shared by the rebuild-per-sample path
/// ([`BuiltPackage::apply_elongations`]) and the session path
/// (`ElongationScenario`), so the two can never diverge.
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] if `δ` is NaN or ≥ 1 (infinite
/// wire).
pub fn elongation_length(direct_distance: f64, delta: f64) -> Result<f64, CoreError> {
    if delta.is_nan() || delta >= 1.0 {
        return Err(CoreError::InvalidModel(format!(
            "relative elongation δ = {delta} must be < 1"
        )));
    }
    Ok(direct_distance / (1.0 - delta))
}

impl BuiltPackage {
    /// Applies sampled relative elongations: wire `j` gets length
    /// `L_j = d_j / (1 − δ_j)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] if a delta is ≥ 1 (infinite
    /// wire) or produces an invalid length.
    ///
    /// # Panics
    ///
    /// Panics if `deltas.len()` differs from the wire count.
    pub fn apply_elongations(&mut self, deltas: &[f64]) -> Result<(), CoreError> {
        assert_eq!(
            deltas.len(),
            self.wire_indices.len(),
            "one delta per wire required"
        );
        for (j, &delta) in deltas.iter().enumerate() {
            let length = elongation_length(self.direct_distances[j], delta)?;
            self.model.set_wire_length(self.wire_indices[j], length)?;
        }
        Ok(())
    }
}

/// Material ids used by the package paint.
pub const MAT_EPOXY: MaterialId = MaterialId(0);
/// Copper id (pads, chip, wires — paper Table I).
pub const MAT_COPPER: MaterialId = MaterialId(1);

/// Builds the package model with the mean elongation `µ_δ = 0.17` installed
/// as the nominal wire lengths.
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] if the mesh is too coarse to separate
/// bond points or the geometry is inconsistent.
pub fn build_model(
    geometry: &PackageGeometry,
    options: &BuildOptions,
) -> Result<BuiltPackage, CoreError> {
    // ---- mesh: conform to every box face ---------------------------------
    let (mold_lo, mold_hi) = geometry.mold_box();
    let mut gb = GridBuilder::new()
        .with_box(&BoxRegion::new(mold_lo, mold_hi))
        .with_box(&{
            let (lo, hi) = geometry.chip_box();
            BoxRegion::new(lo, hi)
        });
    for pad in geometry.pads() {
        gb = gb.with_box(&BoxRegion::new(pad.lo, pad.hi));
    }
    // Key planes at the bond points so wires attach to exact nodes.
    for w in geometry.wire_plan() {
        gb = gb
            .with_key_plane_x(w.pad_bond.0)
            .with_key_plane_y(w.pad_bond.1)
            .with_key_plane_x(w.chip_bond.0)
            .with_key_plane_y(w.chip_bond.1);
    }
    let grid = gb
        .with_target_spacings(
            options.target_spacing_xy,
            options.target_spacing_xy,
            options.target_spacing_z,
        )
        .build()
        .map_err(|e| CoreError::InvalidModel(format!("mesh generation failed: {e}")))?;

    // ---- materials --------------------------------------------------------
    let mut paint = CellPaint::new(&grid, MAT_EPOXY);
    let (clo, chi) = geometry.chip_box();
    paint.paint(&grid, &BoxRegion::new(clo, chi), MAT_COPPER);
    for pad in geometry.pads() {
        paint.paint(&grid, &BoxRegion::new(pad.lo, pad.hi), MAT_COPPER);
    }
    let mut materials = MaterialTable::new();
    let epoxy = match options.mold_rho_c {
        None => library::epoxy_resin(),
        Some(rho_c) => {
            let lib = library::epoxy_resin();
            etherm_materials::Material::new(
                "epoxy resin (calibrated rho_c)",
                lib.electrical_model().clone(),
                lib.thermal_model().clone(),
                rho_c,
            )
        }
    };
    materials.add(epoxy); // id 0
    materials.add(library::copper()); // id 1

    let mut model = ElectrothermalModel::new(grid, paint, materials)?;
    let mut boundary = ThermalBoundary::paper_default();
    boundary.area_scale = options.boundary_area_scale;
    model.set_thermal_boundary(boundary);
    model.set_ambient(300.0);

    // ---- wires -------------------------------------------------------------
    let plan = geometry.wire_plan();
    let mu_delta = 0.17;
    let mut wire_indices = Vec::with_capacity(plan.len());
    let mut direct_distances = Vec::with_capacity(plan.len());
    let mut nominal_lengths = Vec::with_capacity(plan.len());
    for w in &plan {
        let nominal_length = w.direct_distance / (1.0 - mu_delta);
        let wire = BondWire::new(
            format!("wire-{}", w.wire_id),
            nominal_length,
            options.wire_diameter,
            library::copper(),
        )
        .map_err(|e| CoreError::InvalidModel(e.to_string()))?
        .with_segments(options.wire_segments)
        .map_err(|e| CoreError::InvalidModel(e.to_string()))?;
        let idx = model.add_wire(wire, w.chip_bond, w.pad_bond)?;
        wire_indices.push(idx);
        direct_distances.push(w.direct_distance);
        nominal_lengths.push(nominal_length);
    }

    // ---- PEC contacts -------------------------------------------------------
    // Each pair: +V_dc on its first pad's outer end, −V_dc on the second's.
    let pads = geometry.pads();
    for pair in 0..6 {
        let wires: Vec<_> = plan.iter().filter(|w| w.pair_id == pair).collect();
        debug_assert_eq!(wires.len(), 2);
        for (k, w) in wires.iter().enumerate() {
            let pad = &pads[w.pad_index];
            let (lo, hi) = pad.outer_contact_box(options.contact_depth);
            let nodes = model.grid().nodes_in_box(lo, hi);
            if nodes.is_empty() {
                return Err(CoreError::InvalidModel(format!(
                    "no PEC nodes found on pad {} — refine the mesh",
                    w.pad_index
                )));
            }
            let v = if k == 0 { options.v_dc } else { -options.v_dc };
            model.set_electric_potential(&nodes, v);
        }
    }

    Ok(BuiltPackage {
        model,
        wire_indices,
        direct_distances,
        nominal_lengths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coarse() -> BuildOptions {
        BuildOptions {
            target_spacing_xy: 0.45e-3,
            target_spacing_z: 0.25e-3,
            ..BuildOptions::default()
        }
    }

    #[test]
    fn builds_paper_package() {
        let g = PackageGeometry::paper();
        let built = build_model(&g, &coarse()).unwrap();
        assert_eq!(built.model.wires().len(), 12);
        assert_eq!(built.wire_indices.len(), 12);
        // Nominal lengths average Table II's 1.55 mm.
        let mean_l: f64 = built.nominal_lengths.iter().sum::<f64>() / 12.0;
        assert!(
            (mean_l - 1.55e-3).abs() < 5e-6,
            "mean nominal length {mean_l}"
        );
        // PEC constraints exist on 12 pads.
        assert!(built.model.electric_dirichlet().len() >= 12);
        // Balanced drive: as many +20 mV as −20 mV pad contacts... per pair
        // the node counts may differ slightly, but both signs must appear.
        let pos = built
            .model
            .electric_dirichlet()
            .iter()
            .filter(|&&(_, v)| v > 0.0)
            .count();
        let neg = built
            .model
            .electric_dirichlet()
            .iter()
            .filter(|&&(_, v)| v < 0.0)
            .count();
        assert!(pos > 0 && neg > 0);
    }

    #[test]
    fn wires_attach_to_distinct_nodes() {
        let g = PackageGeometry::paper();
        let built = build_model(&g, &coarse()).unwrap();
        let mut endpoints: Vec<(usize, usize)> = built
            .model
            .wires()
            .iter()
            .map(|w| (w.node_a.min(w.node_b), w.node_a.max(w.node_b)))
            .collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        assert_eq!(endpoints.len(), 12, "wires share endpoints");
    }

    #[test]
    fn copper_volume_is_plausible() {
        let g = PackageGeometry::paper();
        let built = build_model(&g, &coarse()).unwrap();
        let grid = built.model.grid();
        let paint = built.model.paint();
        let cu = paint.material_volume(grid, MAT_COPPER);
        // Expected: chip + 28 pads.
        let chip_vol = {
            let (lo, hi) = g.chip_box();
            (hi.0 - lo.0) * (hi.1 - lo.1) * (hi.2 - lo.2)
        };
        let pad_vol: f64 = g
            .pads()
            .iter()
            .map(|p| (p.hi.0 - p.lo.0) * (p.hi.1 - p.lo.1) * (p.hi.2 - p.lo.2))
            .sum();
        let expect = chip_vol + pad_vol;
        assert!(
            (cu - expect).abs() < 0.02 * expect,
            "copper volume {cu} vs {expect}"
        );
    }

    #[test]
    fn apply_elongations_scales_lengths() {
        let g = PackageGeometry::paper();
        let mut built = build_model(&g, &coarse()).unwrap();
        let deltas = vec![0.2; 12];
        built.apply_elongations(&deltas).unwrap();
        for (j, &idx) in built.wire_indices.iter().enumerate() {
            let l = built.model.wires()[idx].wire.length();
            let expect = built.direct_distances[j] / 0.8;
            assert!((l - expect).abs() < 1e-12);
        }
        // δ ≥ 1 rejected.
        assert!(built.apply_elongations(&[1.0; 12]).is_err());
    }

    #[test]
    fn mesh_respects_targets() {
        let g = PackageGeometry::paper();
        let opts = coarse();
        let built = build_model(&g, &opts).unwrap();
        let grid = built.model.grid();
        assert!(grid.x().max_spacing() <= opts.target_spacing_xy + 1e-12);
        assert!(grid.z().max_spacing() <= opts.target_spacing_z + 1e-12);
        // Grid is modest at this coarseness.
        assert!(grid.n_nodes() < 60_000, "grid too fine: {}", grid.n_nodes());
    }
}
