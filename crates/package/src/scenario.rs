//! UQ-campaign glue: the paper's elongation sampling as an ensemble
//! [`Scenario`].
//!
//! The Monte Carlo campaign of Fig. 7 perturbs exactly one thing per
//! sample: the 12 wire lengths `L_j = d_j / (1 − δ_j)`. Applying a sample
//! through a [`Session`] therefore touches only the 12 wire records (their
//! stamped conductance values and segment heat capacities) — no model
//! rebuild, no pattern re-recording, no new simulator.

use crate::builder::BuiltPackage;
use etherm_core::{
    BatchScenario, CompiledModel, CoreError, Scenario, Session, SolverOptions, TransientSolution,
};

impl BuiltPackage {
    /// Compiles the package model for session reuse (see
    /// [`etherm_core::CompiledModel`]). The wires carry their nominal
    /// lengths; samples are applied per run via an [`ElongationScenario`]
    /// or [`Session::set_wire_length`].
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledModel::compile`] failures.
    pub fn compile(&self, options: SolverOptions) -> Result<CompiledModel, CoreError> {
        CompiledModel::compile(self.model.clone(), options)
    }

    /// An ensemble scenario sampling this package's wire elongations: each
    /// sample is one relative elongation `δ_j` per wire, the run is the
    /// paper transient over `t_end` with `n_steps` implicit-Euler steps,
    /// and `qoi` extracts the per-sample outputs from the solution.
    pub fn elongation_scenario<F>(
        &self,
        t_end: f64,
        n_steps: usize,
        qoi: F,
    ) -> ElongationScenario<F>
    where
        F: Fn(&TransientSolution) -> Vec<f64> + Sync,
    {
        ElongationScenario {
            wire_indices: self.wire_indices.clone(),
            direct_distances: self.direct_distances.clone(),
            t_end,
            n_steps,
            qoi,
        }
    }
}

/// A [`Scenario`] over relative wire elongations: sample `j` sets wire `j`
/// to `L_j = d_j / (1 − δ_j)`, evaluation runs the transient and extracts
/// QoIs with the user closure.
#[derive(Debug, Clone)]
pub struct ElongationScenario<F>
where
    F: Fn(&TransientSolution) -> Vec<f64> + Sync,
{
    wire_indices: Vec<usize>,
    direct_distances: Vec<f64>,
    t_end: f64,
    n_steps: usize,
    qoi: F,
}

impl<F> ElongationScenario<F>
where
    F: Fn(&TransientSolution) -> Vec<f64> + Sync,
{
    /// A scenario over explicit wire indices and direct bond-to-bond
    /// distances (for custom models; packages use
    /// [`BuiltPackage::elongation_scenario`]).
    ///
    /// # Panics
    ///
    /// Panics if `wire_indices` and `direct_distances` differ in length.
    pub fn new(
        wire_indices: Vec<usize>,
        direct_distances: Vec<f64>,
        t_end: f64,
        n_steps: usize,
        qoi: F,
    ) -> Self {
        assert_eq!(
            wire_indices.len(),
            direct_distances.len(),
            "one direct distance per wire"
        );
        ElongationScenario {
            wire_indices,
            direct_distances,
            t_end,
            n_steps,
            qoi,
        }
    }
}

impl<F> Scenario for ElongationScenario<F>
where
    F: Fn(&TransientSolution) -> Vec<f64> + Sync,
{
    fn apply(&self, session: &mut Session, deltas: &[f64]) -> Result<(), CoreError> {
        assert_eq!(
            deltas.len(),
            self.wire_indices.len(),
            "one delta per wire required"
        );
        for (j, &delta) in deltas.iter().enumerate() {
            let length = crate::builder::elongation_length(self.direct_distances[j], delta)?;
            session.set_wire_length(self.wire_indices[j], length)?;
        }
        Ok(())
    }

    fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
        let sol = session.run_transient(self.t_end, self.n_steps, &[])?;
        Ok((self.qoi)(&sol))
    }
}

impl<F> BatchScenario for ElongationScenario<F>
where
    F: Fn(&TransientSolution) -> Vec<f64> + Sync,
{
    fn t_end(&self) -> f64 {
        self.t_end
    }

    fn n_steps(&self) -> usize {
        self.n_steps
    }

    fn qoi(&self, solution: &TransientSolution) -> Vec<f64> {
        (self.qoi)(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_model, BuildOptions};
    use crate::geometry::PackageGeometry;
    use etherm_core::{run_ensemble, EnsembleOptions, Simulator};
    use std::sync::Arc;

    fn coarse_package() -> BuiltPackage {
        let opts = BuildOptions {
            target_spacing_xy: 0.9e-3,
            target_spacing_z: 0.5e-3,
            ..BuildOptions::paper_fig7()
        };
        build_model(&PackageGeometry::paper(), &opts).unwrap()
    }

    #[test]
    fn scenario_matches_rebuild_per_sample_bitwise() {
        // The headline contract of the compile-once refactor: session reuse
        // (exact mode) reproduces the old fresh-`Simulator`-per-sample path
        // bit for bit across an elongation sweep.
        let mut built = coarse_package();
        let samples: Vec<Vec<f64>> = [0.1, 0.17, 0.25, 0.12]
            .iter()
            .map(|&d| vec![d; 12])
            .collect();
        let opts = etherm_core::SolverOptions::fast();

        // Old path: mutate the model, rebuild the simulator.
        let mut rebuild_outputs = Vec::new();
        for deltas in &samples {
            built.apply_elongations(deltas).unwrap();
            let sim = Simulator::new(&built.model, opts.clone()).unwrap();
            let sol = sim.run_transient(5.0, 5, &[]).unwrap();
            let mut out = Vec::new();
            for j in 0..sol.n_wires() {
                out.extend_from_slice(sol.wire_series(j));
            }
            rebuild_outputs.push(out);
        }

        // New path: compile once, one exact-mode session.
        built.apply_elongations(&[0.17; 12]).unwrap();
        let compiled = Arc::new(built.compile(opts).unwrap());
        let scenario = built.elongation_scenario(5.0, 5, |sol| {
            let mut out = Vec::new();
            for j in 0..sol.n_wires() {
                out.extend_from_slice(sol.wire_series(j));
            }
            out
        });
        let result =
            run_ensemble(&compiled, &scenario, &samples, &EnsembleOptions::default()).unwrap();
        assert_eq!(result.outputs, rebuild_outputs);
    }

    #[test]
    fn scenario_rejects_invalid_elongation() {
        let built = coarse_package();
        let compiled = Arc::new(built.compile(etherm_core::SolverOptions::fast()).unwrap());
        let scenario = built.elongation_scenario(5.0, 5, |_| vec![0.0]);
        let mut session = Session::new(compiled);
        assert!(scenario.apply(&mut session, &[1.0; 12]).is_err());
        assert!(scenario.apply(&mut session, &[f64::NAN; 12]).is_err());
        assert!(scenario.apply(&mut session, &[0.2; 12]).is_ok());
    }
}
