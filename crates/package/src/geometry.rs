//! Parametric geometry of the 28-pad / 12-wire package.
//!
//! Layout (top view, dimensions in meters, z pointing up):
//!
//! ```text
//!   +--------------------------+  ^ y
//!   |  ▭ ▭ ▭ ▭ ▭ ▭ ▭  (North)  |  |
//!   | ▯                      ▯ |  |
//!   | ▯        +------+      ▯ |
//!   | ▯ (West) | chip | (East)▯ |
//!   | ▯        +------+      ▯ |
//!   | ▯                      ▯ |
//!   |  ▭ ▭ ▭ ▭ ▭ ▭ ▭  (South)  |
//!   +--------------------------+ --> x
//! ```
//!
//! Seven pads per side (28 total) extend inward from the package edge; the
//! middle pad of each side is the long variant (4 × 1.261 mm, the paper's
//! "other 4"). Twelve wires connect the chip's top edge to the inner ends
//! of 6 adjacent pad pairs, giving the voltage loop pad → wire → chip →
//! wire → pad driven by ±V_dc on the outer pad ends.

/// Package side, counter-clockwise from the bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// `y = 0` edge.
    South,
    /// `x = width` edge.
    East,
    /// `y = width` edge.
    North,
    /// `x = 0` edge.
    West,
}

impl Side {
    /// All four sides.
    pub const ALL: [Side; 4] = [Side::South, Side::East, Side::North, Side::West];
}

/// One contact pad.
#[derive(Debug, Clone, PartialEq)]
pub struct Pad {
    /// Side the pad belongs to.
    pub side: Side,
    /// Index along the side (0..7).
    pub index: usize,
    /// Axis-aligned box `(lo, hi)` of the pad body.
    pub lo: (f64, f64, f64),
    /// Upper corner of the pad body.
    pub hi: (f64, f64, f64),
    /// Whether this is one of the 4 long pads (1.261 mm).
    pub long: bool,
}

impl Pad {
    /// Nominal wire-bond point: centered on the pad width, at distance `a`
    /// from the inner end, on the pad's top surface (paper Fig. 4a).
    pub fn bond_point(&self, a: f64) -> (f64, f64, f64) {
        let z = self.hi.2;
        match self.side {
            Side::South => (0.5 * (self.lo.0 + self.hi.0), self.hi.1 - a, z),
            Side::North => (0.5 * (self.lo.0 + self.hi.0), self.lo.1 + a, z),
            Side::West => (self.hi.0 - a, 0.5 * (self.lo.1 + self.hi.1), z),
            Side::East => (self.lo.0 + a, 0.5 * (self.lo.1 + self.hi.1), z),
        }
    }

    /// A thin box at the pad's outer end (the externally accessible
    /// contact), used to select PEC nodes.
    pub fn outer_contact_box(&self, depth: f64) -> ((f64, f64, f64), (f64, f64, f64)) {
        match self.side {
            Side::South => (self.lo, (self.hi.0, self.lo.1 + depth, self.hi.2)),
            Side::North => ((self.lo.0, self.hi.1 - depth, self.lo.2), self.hi),
            Side::West => (self.lo, (self.lo.0 + depth, self.hi.1, self.hi.2)),
            Side::East => ((self.hi.0 - depth, self.lo.1, self.lo.2), self.hi),
        }
    }
}

/// A planned wire: which pad it lands on and the two bond points.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePlan {
    /// Wire index `0..12`.
    pub wire_id: usize,
    /// Index into [`PackageGeometry::pads`].
    pub pad_index: usize,
    /// Voltage-pair id `0..6`; the two wires of a pair share it.
    pub pair_id: usize,
    /// Bond point on the pad (m).
    pub pad_bond: (f64, f64, f64),
    /// Bond point on the chip edge (m).
    pub chip_bond: (f64, f64, f64),
    /// Direct 3D distance `d` between the bond points (paper Fig. 4a).
    pub direct_distance: f64,
}

/// Parametric package geometry. All lengths in meters.
#[derive(Debug, Clone, PartialEq)]
pub struct PackageGeometry {
    /// Outer mold width (square footprint).
    pub mold_width: f64,
    /// Mold height.
    pub mold_height: f64,
    /// Pad width (0.311 mm, Table in §V-A).
    pub pad_width: f64,
    /// Short pad length (1.01 mm, 24 pads).
    pub pad_length: f64,
    /// Long pad length (1.261 mm, 4 pads).
    pub pad_length_long: f64,
    /// Pad (leadframe) thickness.
    pub pad_thickness: f64,
    /// Bottom z of the pad plane.
    pub pad_z0: f64,
    /// Chip half-width (auto-calibrated by [`PackageGeometry::paper`]).
    pub chip_half_width: f64,
    /// Chip thickness.
    pub chip_thickness: f64,
    /// Bottom z of the chip.
    pub chip_z0: f64,
    /// Nominal bond offset `a` from the pad's inner end (paper Fig. 4a).
    pub bond_offset: f64,
    /// Number of pads per side.
    pub pads_per_side: usize,
}

impl PackageGeometry {
    /// A baseline geometry with the paper's published pad dimensions and
    /// plausible remaining values (see DESIGN.md §4).
    pub fn baseline() -> Self {
        PackageGeometry {
            mold_width: 6.0e-3,
            mold_height: 0.8e-3,
            pad_width: 0.311e-3,
            pad_length: 1.01e-3,
            pad_length_long: 1.261e-3,
            pad_thickness: 0.15e-3,
            pad_z0: 0.10e-3,
            chip_half_width: 0.8e-3,
            chip_thickness: 0.20e-3,
            chip_z0: 0.10e-3,
            bond_offset: 0.155e-3, // centered: a = pad_width/2
            pads_per_side: 7,
        }
    }

    /// The paper's geometry: [`PackageGeometry::baseline`] with the chip
    /// half-width calibrated (by bisection) so that the *nominal* average
    /// wire length `d̄/(1 − µ_δ)` matches Table II's `L̄ = 1.55 mm` with
    /// `µ_δ = 0.17`.
    pub fn paper() -> Self {
        let mut g = PackageGeometry::baseline();
        let target_mean_d = 1.55e-3 * (1.0 - 0.17);
        let mut lo = 0.3e-3;
        let mut hi = 1.6e-3;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            g.chip_half_width = mid;
            let mean = g.mean_direct_distance();
            // Larger chip → shorter wires.
            if mean > target_mean_d {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        g.chip_half_width = 0.5 * (lo + hi);
        g
    }

    /// Mold box corners.
    pub fn mold_box(&self) -> ((f64, f64, f64), (f64, f64, f64)) {
        (
            (0.0, 0.0, 0.0),
            (self.mold_width, self.mold_width, self.mold_height),
        )
    }

    /// Chip box corners.
    pub fn chip_box(&self) -> ((f64, f64, f64), (f64, f64, f64)) {
        let c = 0.5 * self.mold_width;
        (
            (
                c - self.chip_half_width,
                c - self.chip_half_width,
                self.chip_z0,
            ),
            (
                c + self.chip_half_width,
                c + self.chip_half_width,
                self.chip_z0 + self.chip_thickness,
            ),
        )
    }

    /// All 28 pads, ordered side by side (South, East, North, West), each
    /// side left-to-right along its edge. The middle pad of each side is
    /// the long variant.
    pub fn pads(&self) -> Vec<Pad> {
        let n = self.pads_per_side;
        let w = self.mold_width;
        let pw = self.pad_width;
        // Keep a corner margin so pads of adjacent sides cannot intersect
        // (the perpendicular side's pads reach pad_length_long inward).
        let margin = self.pad_length_long + 0.05e-3;
        let usable = w - 2.0 * margin;
        // Pads evenly spaced within the usable span: n pads, n+1 gaps.
        let gap = (usable - n as f64 * pw) / (n + 1) as f64;
        assert!(
            gap > 0.0,
            "pads do not fit on the package edge (gap = {gap})"
        );
        let z0 = self.pad_z0;
        let z1 = self.pad_z0 + self.pad_thickness;
        let mut pads = Vec::with_capacity(4 * n);
        for &side in &Side::ALL {
            for i in 0..n {
                let long = i == n / 2;
                let len = if long {
                    self.pad_length_long
                } else {
                    self.pad_length
                };
                let c0 = margin + gap + i as f64 * (pw + gap); // start along the edge
                let (lo, hi) = match side {
                    Side::South => ((c0, 0.0, z0), (c0 + pw, len, z1)),
                    Side::North => ((c0, w - len, z0), (c0 + pw, w, z1)),
                    Side::West => ((0.0, c0, z0), (len, c0 + pw, z1)),
                    Side::East => ((w - len, c0, z0), (w, c0 + pw, z1)),
                };
                pads.push(Pad {
                    side,
                    index: i,
                    lo,
                    hi,
                    long,
                });
            }
        }
        pads
    }

    /// Chip-side bond point for a wire from the given pad: the point on the
    /// chip's top-edge closest to the pad bond (projection onto the facing
    /// chip edge, clamped to the edge).
    pub fn chip_bond_for(&self, pad: &Pad) -> (f64, f64, f64) {
        let (clo, chi) = self.chip_box();
        let z = chi.2;
        let pb = pad.bond_point(self.bond_offset);
        match pad.side {
            Side::South => (pb.0.clamp(clo.0, chi.0), clo.1, z),
            Side::North => (pb.0.clamp(clo.0, chi.0), chi.1, z),
            Side::West => (clo.0, pb.1.clamp(clo.1, chi.1), z),
            Side::East => (chi.0, pb.1.clamp(clo.1, chi.1), z),
        }
    }

    /// Minimum spacing between chip-side bonds on the same chip edge (m);
    /// physical bonders keep neighboring balls at least a pad pitch apart,
    /// and coincident bonds would short a wire pair at a single grid node.
    pub const MIN_CHIP_BOND_SEPARATION: f64 = 0.40e-3;

    /// The 12-wire plan: 6 adjacent pad pairs — pads (1,2) on every side
    /// plus pads (4,5) on South and North.
    pub fn wire_plan(&self) -> Vec<WirePlan> {
        let pads = self.pads();
        let n = self.pads_per_side;
        // (side index, pad index) pairs. Deliberately mixed corner/center
        // positions (and pairs touching the long middle pad) so the direct
        // distances vary — the paper's observation that the shortest wires
        // between the closest contacts run hottest needs that spread.
        let pair_slots: [(usize, usize, usize); 6] = [
            (0, 0, 1), // South, near the corner (long wires)
            (0, 3, 4), // South, center (short wires; pad 3 is the long pad)
            (1, 1, 2), // East, off-center
            (2, 2, 3), // North, center
            (2, 5, 6), // North, near the corner
            (3, 2, 3), // West, center
        ];
        let mut plan = Vec::with_capacity(12);
        let mut wire_id = 0;
        for (pair_id, &(s, i0, i1)) in pair_slots.iter().enumerate() {
            for &i in &[i0, i1] {
                let pad_index = s * n + i;
                let pad = &pads[pad_index];
                let pad_bond = pad.bond_point(self.bond_offset);
                let chip_bond = self.chip_bond_for(pad);
                plan.push(WirePlan {
                    wire_id,
                    pad_index,
                    pair_id,
                    pad_bond,
                    chip_bond,
                    direct_distance: 0.0, // set after separation below
                });
                wire_id += 1;
            }
        }
        self.separate_chip_bonds(&mut plan, &pads);
        for w in &mut plan {
            w.direct_distance = dist3(w.pad_bond, w.chip_bond);
        }
        plan
    }

    /// Enforces [`Self::MIN_CHIP_BOND_SEPARATION`] between chip bonds that
    /// share a chip edge: projection-clamped bonds of corner pads would
    /// otherwise coincide at the chip corner (shorting the pair at a single
    /// mesh node and concentrating the heat non-physically).
    fn separate_chip_bonds(&self, plan: &mut [WirePlan], pads: &[Pad]) {
        let (clo, chi) = self.chip_box();
        let sep = Self::MIN_CHIP_BOND_SEPARATION;
        for &side in &Side::ALL {
            // Wires landing on this chip edge, sorted by the coordinate
            // that runs along the edge.
            let mut idxs: Vec<usize> = (0..plan.len())
                .filter(|&i| pads[plan[i].pad_index].side == side)
                .collect();
            let along = |w: &WirePlan| match side {
                Side::South | Side::North => w.chip_bond.0,
                _ => w.chip_bond.1,
            };
            idxs.sort_by(|&a, &b| along(&plan[a]).partial_cmp(&along(&plan[b])).expect("finite"));
            let (lo, hi) = match side {
                Side::South | Side::North => (clo.0, chi.0),
                _ => (clo.1, chi.1),
            };
            // Forward sweep: enforce minimum spacing, then clamp the chain
            // back from the far end if it overran the edge.
            let mut coords: Vec<f64> = idxs.iter().map(|&i| along(&plan[i])).collect();
            for k in 1..coords.len() {
                coords[k] = coords[k].max(coords[k - 1] + sep);
            }
            if let Some(last) = coords.last_mut() {
                *last = last.min(hi);
            }
            for k in (0..coords.len().saturating_sub(1)).rev() {
                coords[k] = coords[k].min(coords[k + 1] - sep);
            }
            for (k, &i) in idxs.iter().enumerate() {
                let c = coords[k].clamp(lo, hi);
                match side {
                    Side::South | Side::North => plan[i].chip_bond.0 = c,
                    _ => plan[i].chip_bond.1 = c,
                }
            }
        }
    }

    /// Mean direct distance `d̄` over the 12 planned wires.
    pub fn mean_direct_distance(&self) -> f64 {
        let plan = self.wire_plan();
        plan.iter().map(|w| w.direct_distance).sum::<f64>() / plan.len() as f64
    }

    /// Total number of pads.
    pub fn n_pads(&self) -> usize {
        4 * self.pads_per_side
    }
}

/// Euclidean distance between two 3D points.
pub(crate) fn dist3(a: (f64, f64, f64), b: (f64, f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2) + (a.2 - b.2).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_counts_and_dimensions() {
        let g = PackageGeometry::baseline();
        let pads = g.pads();
        assert_eq!(pads.len(), 28);
        let long: Vec<_> = pads.iter().filter(|p| p.long).collect();
        assert_eq!(long.len(), 4);
        for p in &pads {
            let dx = p.hi.0 - p.lo.0;
            let dy = p.hi.1 - p.lo.1;
            let (w, l) = match p.side {
                Side::South | Side::North => (dx, dy),
                _ => (dy, dx),
            };
            assert!((w - 0.311e-3).abs() < 1e-12, "width {w}");
            let want_l = if p.long { 1.261e-3 } else { 1.01e-3 };
            assert!((l - want_l).abs() < 1e-12, "length {l}");
            // Pads stay inside the mold.
            assert!(p.lo.0 >= -1e-15 && p.hi.0 <= g.mold_width + 1e-15);
            assert!(p.lo.1 >= -1e-15 && p.hi.1 <= g.mold_width + 1e-15);
        }
    }

    #[test]
    fn pads_do_not_overlap_along_side() {
        let g = PackageGeometry::baseline();
        let pads = g.pads();
        let south: Vec<_> = pads.iter().filter(|p| p.side == Side::South).collect();
        for w in south.windows(2) {
            assert!(w[0].hi.0 < w[1].lo.0, "pads overlap");
        }
    }

    #[test]
    fn wire_plan_structure() {
        let g = PackageGeometry::baseline();
        let plan = g.wire_plan();
        assert_eq!(plan.len(), 12);
        // Pair ids 0..6 each twice.
        let mut pair_counts = [0usize; 6];
        for w in &plan {
            pair_counts[w.pair_id] += 1;
        }
        assert!(pair_counts.iter().all(|&c| c == 2));
        // All pads distinct.
        let mut pads: Vec<_> = plan.iter().map(|w| w.pad_index).collect();
        pads.sort_unstable();
        pads.dedup();
        assert_eq!(pads.len(), 12);
        // Direct distances are positive and vary (asymmetric layout).
        let dmin = plan.iter().map(|w| w.direct_distance).fold(f64::MAX, f64::min);
        let dmax = plan.iter().map(|w| w.direct_distance).fold(0.0, f64::max);
        assert!(dmin > 0.2e-3);
        assert!(dmax > dmin * 1.01, "no variation: {dmin} vs {dmax}");
    }

    #[test]
    fn bond_points_lie_on_pad_and_chip() {
        let g = PackageGeometry::baseline();
        let pads = g.pads();
        for w in g.wire_plan() {
            let pad = &pads[w.pad_index];
            let pb = w.pad_bond;
            assert!(pb.0 >= pad.lo.0 - 1e-15 && pb.0 <= pad.hi.0 + 1e-15);
            assert!(pb.1 >= pad.lo.1 - 1e-15 && pb.1 <= pad.hi.1 + 1e-15);
            assert_eq!(pb.2, pad.hi.2);
            let (clo, chi) = g.chip_box();
            let cb = w.chip_bond;
            assert!(cb.0 >= clo.0 - 1e-15 && cb.0 <= chi.0 + 1e-15);
            assert!(cb.1 >= clo.1 - 1e-15 && cb.1 <= chi.1 + 1e-15);
            assert_eq!(cb.2, chi.2);
        }
    }

    #[test]
    fn paper_calibration_hits_table_ii_mean_length() {
        let g = PackageGeometry::paper();
        let mean_d = g.mean_direct_distance();
        let implied_mean_l = mean_d / (1.0 - 0.17);
        assert!(
            (implied_mean_l - 1.55e-3).abs() < 1e-6,
            "implied mean length {implied_mean_l}"
        );
        // Chip still inside the pad ring.
        let (clo, chi) = g.chip_box();
        assert!(clo.0 > g.pad_length_long);
        assert!(chi.0 < g.mold_width - g.pad_length_long);
    }

    #[test]
    fn outer_contact_boxes_touch_the_edge() {
        let g = PackageGeometry::baseline();
        for p in g.pads() {
            let (lo, hi) = p.outer_contact_box(0.1e-3);
            match p.side {
                Side::South => assert_eq!(lo.1, 0.0),
                Side::North => assert_eq!(hi.1, g.mold_width),
                Side::West => assert_eq!(lo.0, 0.0),
                Side::East => assert_eq!(hi.0, g.mold_width),
            }
        }
    }

    #[test]
    fn dist3_basic() {
        assert_eq!(dist3((0.0, 0.0, 0.0), (3.0, 4.0, 0.0)), 5.0);
    }
}

#[cfg(test)]
mod separation_tests {
    use super::*;

    #[test]
    fn chip_bonds_respect_minimum_separation() {
        let g = PackageGeometry::paper();
        let pads = g.pads();
        let plan = g.wire_plan();
        for &side in &Side::ALL {
            let mut coords: Vec<f64> = plan
                .iter()
                .filter(|w| pads[w.pad_index].side == side)
                .map(|w| match side {
                    Side::South | Side::North => w.chip_bond.0,
                    _ => w.chip_bond.1,
                })
                .collect();
            coords.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            for pair in coords.windows(2) {
                assert!(
                    pair[1] - pair[0] >= PackageGeometry::MIN_CHIP_BOND_SEPARATION - 1e-12,
                    "bonds too close on {side:?}: {coords:?}"
                );
            }
        }
    }

    #[test]
    fn chip_bonds_stay_on_chip_edge() {
        let g = PackageGeometry::paper();
        let (clo, chi) = g.chip_box();
        for w in g.wire_plan() {
            let cb = w.chip_bond;
            assert!(cb.0 >= clo.0 - 1e-12 && cb.0 <= chi.0 + 1e-12);
            assert!(cb.1 >= clo.1 - 1e-12 && cb.1 <= chi.1 + 1e-12);
        }
    }

    #[test]
    fn all_chip_bonds_distinct() {
        let g = PackageGeometry::paper();
        let plan = g.wire_plan();
        for i in 0..plan.len() {
            for j in i + 1..plan.len() {
                let d = dist3(plan[i].chip_bond, plan[j].chip_bond);
                assert!(d > 1e-4, "wires {i} and {j} bond {d} m apart");
            }
        }
    }
}
