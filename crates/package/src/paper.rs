//! Paper-exact parameter sets (Tables I and II).

use etherm_uq::Normal;

/// The elongation distribution the paper identifies from its 12 X-ray
/// measurements (Fig. 5): `δ ~ N(µ = 0.17, σ = 0.048)`.
///
/// The Fig. 7/8 experiments use this distribution verbatim (not a re-fit of
/// the synthetic metrology) so that the headline reproduction is anchored
/// to the paper's numbers.
pub fn paper_elongation_distribution() -> Normal {
    Normal::new(0.17, 0.048).expect("paper parameters are valid")
}

/// Table II of the paper: simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperParameters {
    /// Bonding wire voltage `V_bw` per pair (V).
    pub wire_voltage: f64,
    /// End time of the transient (s).
    pub end_time: f64,
    /// Number of time points (51 → 50 implicit-Euler steps).
    pub n_time_points: usize,
    /// Monte Carlo samples `M`.
    pub n_mc_samples: usize,
    /// Wire diameter (m).
    pub wire_diameter: f64,
    /// Average wire length `L̄` (m).
    pub mean_wire_length: f64,
    /// Ambient temperature (K).
    pub ambient: f64,
    /// Heat transfer coefficient (W/m²/K).
    pub heat_transfer_coefficient: f64,
    /// Emissivity.
    pub emissivity: f64,
    /// Critical temperature (K), §V-D.
    pub critical_temperature: f64,
    /// Elongation mean `µ_BW`.
    pub elongation_mean: f64,
    /// Elongation standard deviation `σ_BW`.
    pub elongation_std: f64,
}

impl Default for PaperParameters {
    fn default() -> Self {
        PaperParameters {
            wire_voltage: 40e-3,
            end_time: 50.0,
            n_time_points: 51,
            n_mc_samples: 1000,
            wire_diameter: 25.4e-6,
            mean_wire_length: 1.55e-3,
            ambient: 300.0,
            heat_transfer_coefficient: 25.0,
            emissivity: 0.2475,
            critical_temperature: 523.0,
            elongation_mean: 0.17,
            elongation_std: 0.048,
        }
    }
}

impl PaperParameters {
    /// Number of implicit-Euler steps (`n_time_points − 1`).
    pub fn n_steps(&self) -> usize {
        self.n_time_points - 1
    }

    /// The per-contact DC potential `±V_dc = ±V_bw/2`.
    pub fn v_dc(&self) -> f64 {
        0.5 * self.wire_voltage
    }

    /// The reference MC results reported in §V-D, for comparison in
    /// EXPERIMENTS.md: `(σ_MC, error_MC, crossing time)`.
    pub fn reported_results(&self) -> (f64, f64, f64) {
        (4.65, 0.147, 26.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_uq::dist::Distribution;

    #[test]
    fn distribution_matches_figure_5() {
        let d = paper_elongation_distribution();
        assert_eq!(d.mean(), 0.17);
        assert_eq!(d.std_dev(), 0.048);
    }

    #[test]
    fn table_ii_values() {
        let p = PaperParameters::default();
        assert_eq!(p.wire_voltage, 40e-3);
        assert_eq!(p.v_dc(), 20e-3);
        assert_eq!(p.end_time, 50.0);
        assert_eq!(p.n_steps(), 50);
        assert_eq!(p.n_mc_samples, 1000);
        assert_eq!(p.wire_diameter, 25.4e-6);
        assert_eq!(p.mean_wire_length, 1.55e-3);
        assert_eq!(p.ambient, 300.0);
        assert_eq!(p.heat_transfer_coefficient, 25.0);
        assert_eq!(p.emissivity, 0.2475);
        assert_eq!(p.critical_temperature, 523.0);
        let (sigma_mc, err_mc, t_cross) = p.reported_results();
        assert_eq!(sigma_mc, 4.65);
        assert_eq!(err_mc, 0.147);
        assert_eq!(t_cross, 26.0);
        // Consistency: error_MC ≈ σ_MC/√M.
        assert!((sigma_mc / (p.n_mc_samples as f64).sqrt() - err_mc).abs() < 1e-2);
    }
}
