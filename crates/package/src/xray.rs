//! Synthetic X-ray metrology of the bonding wires (substitutes the paper's
//! Fig. 3 photographs; see DESIGN.md §4).
//!
//! Per wire the measured length decomposes as `L = d + Δs + Δh` (paper
//! Fig. 4): the direct distance `d` from the layout, a misplacement
//! elongation `Δs` (bond landed further along the pad than planned) and a
//! bending elongation `Δh` (wire loop height). The paper's camera could
//! determine `Δh` for only 6 of the 12 wires; the remaining wires take the
//! average of the 6 observed values — this quirk is reproduced faithfully
//! because it shrinks the fitted spread exactly as in the original data
//! pipeline.

use crate::geometry::PackageGeometry;
use etherm_uq::dist::Distribution;
use etherm_uq::{fit_normal, Normal, TruncatedNormal, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One wire's synthetic measurement record.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMeasurement {
    /// Wire id (0..12).
    pub wire_id: usize,
    /// Direct distance `d` (m).
    pub direct: f64,
    /// Misplacement elongation `Δs` (m).
    pub delta_s: f64,
    /// True bending elongation `Δh` (m).
    pub delta_h_true: f64,
    /// Observed `Δh` — `None` when hidden by the camera angle.
    pub delta_h_observed: Option<f64>,
    /// Effective `Δh` entering the length (observed or imputed average).
    pub delta_h_used: f64,
    /// Resulting total length `L = d + Δs + Δh_used` (m).
    pub length: f64,
    /// Relative elongation `δ = (L − d)/L`.
    pub delta_rel: f64,
}

/// The synthetic metrology model.
///
/// Defaults are calibrated so that the fitted normal lands near the paper's
/// `N(µ = 0.17, σ = 0.048)` (Fig. 5); exact sample values depend on the
/// seed, as they would on the physical chip at hand.
#[derive(Debug, Clone, PartialEq)]
pub struct XrayMetrology {
    /// Maximum misplacement elongation `Δs ~ U(0, s_max)` (m).
    pub s_max: f64,
    /// Mean of the bending elongation `Δh` (m).
    pub dh_mean: f64,
    /// Standard deviation of the bending elongation (m).
    pub dh_std: f64,
    /// Number of wires whose `Δh` the camera can see (paper: 6 of 12).
    pub visible_dh: usize,
    /// RNG seed (one physical chip = one seed).
    pub seed: u64,
}

impl Default for XrayMetrology {
    fn default() -> Self {
        XrayMetrology {
            s_max: 0.16e-3,
            dh_mean: 0.20e-3,
            dh_std: 0.075e-3,
            visible_dh: 6,
            seed: 2016,
        }
    }
}

impl XrayMetrology {
    /// "Measures" the 12 wires of the given package.
    ///
    /// # Panics
    ///
    /// Panics if the metrology parameters are non-physical (negative
    /// spreads) — they are developer inputs, not runtime data.
    pub fn measure(&self, geometry: &PackageGeometry) -> Vec<WireMeasurement> {
        assert!(self.s_max >= 0.0 && self.dh_std > 0.0 && self.dh_mean >= 0.0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ds_dist = Uniform::new(0.0, self.s_max.max(1e-12)).expect("valid ds range");
        let dh_dist = TruncatedNormal::new(self.dh_mean, self.dh_std, 0.0, self.dh_mean * 6.0)
            .expect("valid dh distribution");
        let plan = geometry.wire_plan();

        // First pass: true geometry per wire.
        struct Raw {
            wire_id: usize,
            d: f64,
            ds: f64,
            dh: f64,
        }
        let raws: Vec<Raw> = plan
            .iter()
            .map(|w| Raw {
                wire_id: w.wire_id,
                d: w.direct_distance,
                ds: ds_dist.quantile(rng.gen::<f64>()),
                dh: dh_dist.quantile(rng.gen::<f64>()),
            })
            .collect();

        // Camera quirk: only the first `visible_dh` wires expose Δh.
        let visible = self.visible_dh.min(raws.len());
        let mean_dh_observed = if visible > 0 {
            raws[..visible].iter().map(|r| r.dh).sum::<f64>() / visible as f64
        } else {
            self.dh_mean
        };

        raws.into_iter()
            .enumerate()
            .map(|(i, r)| {
                let observed = if i < visible { Some(r.dh) } else { None };
                let dh_used = observed.unwrap_or(mean_dh_observed);
                let length = r.d + r.ds + dh_used;
                WireMeasurement {
                    wire_id: r.wire_id,
                    direct: r.d,
                    delta_s: r.ds,
                    delta_h_true: r.dh,
                    delta_h_observed: observed,
                    delta_h_used: dh_used,
                    length,
                    delta_rel: (length - r.d) / length,
                }
            })
            .collect()
    }

    /// The relative elongations `δ` of a measurement set.
    pub fn elongations(measurements: &[WireMeasurement]) -> Vec<f64> {
        measurements.iter().map(|m| m.delta_rel).collect()
    }

    /// Fits the normal distribution of `δ` exactly as the paper does
    /// (moment matching on the 12 samples).
    ///
    /// # Panics
    ///
    /// Panics with fewer than two measurements or a degenerate fit.
    pub fn fit(measurements: &[WireMeasurement]) -> Normal {
        let deltas = Self::elongations(measurements);
        let (mu, sigma) = fit_normal(&deltas);
        Normal::new(mu, sigma).expect("non-degenerate elongation sample")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure_paper() -> Vec<WireMeasurement> {
        XrayMetrology::default().measure(&PackageGeometry::paper())
    }

    #[test]
    fn twelve_measurements_with_camera_quirk() {
        let ms = measure_paper();
        assert_eq!(ms.len(), 12);
        let observed = ms.iter().filter(|m| m.delta_h_observed.is_some()).count();
        assert_eq!(observed, 6);
        // Hidden wires all use the same imputed value.
        let imputed: Vec<f64> = ms
            .iter()
            .filter(|m| m.delta_h_observed.is_none())
            .map(|m| m.delta_h_used)
            .collect();
        assert_eq!(imputed.len(), 6);
        assert!(imputed.windows(2).all(|w| w[0] == w[1]));
        // Imputed value equals the mean of the observed ones.
        let mean_obs: f64 = ms
            .iter()
            .filter_map(|m| m.delta_h_observed)
            .sum::<f64>()
            / 6.0;
        assert!((imputed[0] - mean_obs).abs() < 1e-15);
    }

    #[test]
    fn lengths_decompose_consistently() {
        for m in measure_paper() {
            assert!((m.length - (m.direct + m.delta_s + m.delta_h_used)).abs() < 1e-15);
            assert!(m.delta_rel > 0.0 && m.delta_rel < 1.0);
            assert!((m.delta_rel - (m.length - m.direct) / m.length).abs() < 1e-15);
            assert!(m.delta_s >= 0.0 && m.delta_h_true >= 0.0);
        }
    }

    #[test]
    fn fit_lands_near_paper_values() {
        let ms = measure_paper();
        let fit = XrayMetrology::fit(&ms);
        // One 12-sample chip: generous but meaningful bounds around the
        // paper's N(0.17, 0.048).
        assert!(
            (0.10..=0.24).contains(&fit.mu()),
            "fitted mu = {}",
            fit.mu()
        );
        assert!(
            (0.015..=0.095).contains(&fit.sigma()),
            "fitted sigma = {}",
            fit.sigma()
        );
    }

    #[test]
    fn fit_is_seed_reproducible() {
        let g = PackageGeometry::paper();
        let a = XrayMetrology::default().measure(&g);
        let b = XrayMetrology::default().measure(&g);
        assert_eq!(a, b);
        let c = XrayMetrology {
            seed: 99,
            ..Default::default()
        }
        .measure(&g);
        assert_ne!(a, c);
    }

    #[test]
    fn ensemble_average_matches_paper_closely() {
        // Averaging the fit over many virtual chips must match the
        // calibration target much tighter than a single chip.
        let g = PackageGeometry::paper();
        let mut mus = Vec::new();
        let mut sigmas = Vec::new();
        for seed in 0..50 {
            let ms = XrayMetrology {
                seed,
                ..Default::default()
            }
            .measure(&g);
            let fit = XrayMetrology::fit(&ms);
            mus.push(fit.mu());
            sigmas.push(fit.sigma());
        }
        let mu_bar: f64 = mus.iter().sum::<f64>() / mus.len() as f64;
        let sigma_bar: f64 = sigmas.iter().sum::<f64>() / sigmas.len() as f64;
        assert!((mu_bar - 0.17).abs() < 0.02, "ensemble mu {mu_bar}");
        assert!((sigma_bar - 0.048).abs() < 0.02, "ensemble sigma {sigma_bar}");
    }

    #[test]
    fn elongations_accessor() {
        let ms = measure_paper();
        let ds = XrayMetrology::elongations(&ms);
        assert_eq!(ds.len(), 12);
        assert_eq!(ds[3], ms[3].delta_rel);
    }
}
