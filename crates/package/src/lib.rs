//! The paper's exemplary chip package (§IV-A, §V-A) and its synthetic
//! X-ray wire metrology (§IV-B).
//!
//! The real package of the paper is proprietary; only X-ray photographs and
//! a handful of published dimensions exist (28 contact pads of width
//! 0.311 mm, 24 × length 1.01 mm + 4 × 1.261 mm, 12 copper bonding wires of
//! diameter 25.4 µm and average length 1.55 mm, copper chip, epoxy mold).
//! This crate rebuilds a plausible peripheral-pad layout from those numbers
//! (see DESIGN.md §4 for the substitution argument):
//!
//! * [`geometry`] — parametric package geometry; [`PackageGeometry::paper`]
//!   auto-calibrates the chip size so the nominal wire lengths reproduce
//!   Table II's 1.55 mm average,
//! * [`builder`] — turns the geometry into an
//!   [`etherm_core::ElectrothermalModel`] (conforming mesh, PEC contacts at
//!   ±20 mV on 6 pad pairs, Table I materials, Table II boundary
//!   conditions),
//! * [`xray`] — synthetic metrology reproducing Fig. 4's length
//!   decomposition `L = d + Δs + Δh`, including the paper's camera quirk
//!   (bending elongation observable for only 6 of the 12 wires),
//! * [`paper`] — the paper-exact elongation distribution
//!   `δ ~ N(0.17, 0.048)` and Table II parameter set,
//! * [`scenario`] — the elongation sampling as an ensemble
//!   [`etherm_core::Scenario`]: compile the package once, re-run cheap
//!   solver sessions per Monte Carlo sample,
//! * [`failure`] — the limit-state scenario of the rare-event reliability
//!   engine: elongations + drive scale in, early-exited threshold response
//!   out.

#![forbid(unsafe_code)]

pub mod builder;
pub mod failure;
pub mod geometry;
pub mod paper;
pub mod scenario;
pub mod xray;

pub use builder::{build_model, elongation_length, BuildOptions, BuiltPackage};
pub use failure::FailureScenario;
pub use geometry::{PackageGeometry, Pad, Side, WirePlan};
pub use paper::{paper_elongation_distribution, PaperParameters};
pub use scenario::ElongationScenario;
pub use xray::{WireMeasurement, XrayMetrology};
