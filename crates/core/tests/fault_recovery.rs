//! Property tests of the solver-resilience layer: seeded fault plans must
//! either be absorbed by the recovery ladder with bit-identical results or
//! surface as structured errors, and ensemble quarantine must stay
//! deterministic for any thread count.
//!
//! Breakdown (sign-flip) faults are kept off apply index 0 throughout:
//! negating the initial-residual computation `r0 = b − A·x0` perturbs the
//! system CG solves without ever producing a negative `pᵀAp`, so it is the
//! one fault class the non-finite and breakdown guards intentionally
//! cannot see (the same convention `bench_robustness` uses).

use etherm_core::{
    run_ensemble, CompiledModel, CoreError, ElectrothermalModel, EnsembleOptions, FailurePolicy,
    Fault, FaultKind, FaultPlan, Scenario, Session, SolverOptions,
};
use etherm_fit::boundary::ThermalBoundary;
use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
use etherm_materials::{library, MaterialTable};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A driven epoxy block with one bond wire across it — the smallest model
/// that exercises both linear systems and the Joule coupling.
fn wire_model() -> ElectrothermalModel {
    let grid = Grid3::new(
        Axis::uniform(0.0, 2e-3, 4).unwrap(),
        Axis::uniform(0.0, 1e-3, 2).unwrap(),
        Axis::uniform(0.0, 0.5e-3, 1).unwrap(),
    );
    let paint = CellPaint::new(&grid, MaterialId(0));
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
    let wire = etherm_bondwire::BondWire::new("w", 1.5e-3, 25.4e-6, library::copper()).unwrap();
    model
        .add_wire(wire, (0.0, 0.5e-3, 0.5e-3), (2e-3, 0.5e-3, 0.5e-3))
        .unwrap();
    let a = model.wires()[0].node_a;
    let b = model.wires()[0].node_b;
    model.set_electric_potential(&[a], 0.02);
    model.set_electric_potential(&[b], -0.02);
    model.set_thermal_boundary(ThermalBoundary::convective(25.0, 300.0));
    model
}

fn compiled() -> Arc<CompiledModel> {
    Arc::new(CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap())
}

fn session() -> Session {
    Session::new(compiled())
}

/// Detectable one-shot kinds: NaN and Inf trip the non-finite guards at
/// any apply index, a sign flip trips the `pᵀAp < 0` breakdown check at
/// any apply index except 0.
const DETECTABLE: [FaultKind; 3] = [FaultKind::Nan, FaultKind::Inf, FaultKind::Breakdown];

/// At most one detectable fault per solve index: a single failure per
/// solve is absorbed by the first ladder rung (a plain retry), which
/// restores the iterate backup and never downgrades the preconditioner —
/// the precondition for exact bit-identity with the fault-free run.
fn recoverable_plan() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec((0usize..8, 0usize..3, 0usize..3), 0..5).prop_map(|raw| {
        // Dedupe by solve index (last one wins): at most one fault per
        // solve keeps the ladder on its retry rung.
        let by_solve: std::collections::BTreeMap<usize, (usize, usize)> = raw
            .into_iter()
            .map(|(solve, apply, kind_idx)| (solve, (apply, kind_idx)))
            .collect();
        FaultPlan::new(
            by_solve
                .into_iter()
                .map(|(solve, (apply, kind_idx))| {
                    let kind = DETECTABLE[kind_idx];
                    Fault {
                        solve,
                        apply: if kind == FaultKind::Breakdown {
                            apply.max(1)
                        } else {
                            apply
                        },
                        kind,
                    }
                })
                .collect(),
        )
    })
}

fn saturating_kind() -> impl Strategy<Value = FaultKind> {
    (0usize..DETECTABLE.len()).prop_map(|i| DETECTABLE[i])
}

/// Sets the sampled wire length, and for poisoned sample indices installs
/// an unrecoverable saturating plan (clearing any stale plan otherwise —
/// workers reuse their session across samples).
struct PoisonedCampaign {
    poisoned: BTreeSet<usize>,
}

impl Scenario for PoisonedCampaign {
    fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
        session.set_wire_length(0, sample[0])
    }

    fn apply_indexed(
        &self,
        session: &mut Session,
        sample: &[f64],
        index: usize,
    ) -> Result<(), CoreError> {
        session.set_fault_plan(
            self.poisoned
                .contains(&index)
                .then(|| FaultPlan::saturating(FaultKind::Nan)),
        );
        self.apply(session, sample)
    }

    fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
        let sol = session.run_transient(1.0, 2, &[])?;
        Ok(vec![*sol.wire_series(0).last().unwrap()])
    }
}

/// Non-vacuousness guard for the bit-identity property: a fault at the
/// very first operator application of the very first solve always fires.
#[test]
fn a_first_solve_fault_actually_fires_and_recovers() {
    let mut clean = session();
    let reference = clean.run_transient(1.0, 3, &[1.0]).unwrap();

    let mut faulted = session();
    faulted.set_fault_plan(Some(FaultPlan::new(vec![Fault {
        solve: 0,
        apply: 0,
        kind: FaultKind::Nan,
    }])));
    let solution = faulted.run_transient(1.0, 3, &[1.0]).unwrap();
    assert_eq!(faulted.faults_fired(), 1);
    assert_eq!(faulted.counters().recovery.recovered_solves, 1);
    assert_eq!(solution, reference);
}

proptest! {
    // Every case runs full transients; keep the case count an order of
    // magnitude below the library defaults.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any plan of per-solve-unique detectable faults is absorbed by plain
    /// retries and the recovered run is bitwise equal to the fault-free
    /// one, with the ledger accounting for exactly the faults that fired.
    #[test]
    fn recovered_runs_are_bit_identical_to_fault_free(plan in recoverable_plan()) {
        let mut clean = session();
        let reference = clean.run_transient(1.0, 3, &[1.0]).unwrap();

        let mut faulted = session();
        faulted.set_fault_plan(Some(plan));
        let solution = faulted.run_transient(1.0, 3, &[1.0]).unwrap();
        prop_assert_eq!(&solution, &reference);

        // Faults whose solve/apply coordinates the run never reaches stay
        // dormant; every fault that did fire cost exactly one retry.
        let fired = faulted.faults_fired();
        let ledger = faulted.counters().recovery;
        prop_assert_eq!(ledger.solve_retries, fired);
        prop_assert_eq!(ledger.recovered_solves, fired);
        prop_assert_eq!(ledger.forced_refreshes, 0);
        prop_assert_eq!(ledger.precond_fallbacks, 0);
        prop_assert_eq!(ledger.dt_halvings, 0);
        prop_assert_eq!(ledger.any(), fired > 0);
    }

    /// A saturating fault exhausts the ladder into a structured error —
    /// never a panic, never a silently non-finite result — and the session
    /// stays fully reusable afterwards.
    #[test]
    fn saturating_faults_error_structurally_and_leave_the_session_reusable(
        kind in saturating_kind(),
        steps in 1usize..4,
    ) {
        let mut clean = session();
        let reference = clean.run_transient(1.0, steps, &[]).unwrap();

        let mut s = session();
        s.set_fault_plan(Some(FaultPlan::saturating(kind)));
        let err = s.run_transient(1.0, steps, &[]).expect_err("unrecoverable");
        let message = format!("{err}");
        prop_assert!(!message.is_empty());

        // Clearing the plan and resetting restores bit-identity.
        s.set_fault_plan(None);
        s.reset();
        let rerun = s.run_transient(1.0, steps, &[]).unwrap();
        prop_assert_eq!(&rerun, &reference);
    }
}

proptest! {
    // Three ensemble runs per case — keep the case count minimal.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Quarantine reports exactly the poisoned sample indices and the
    /// whole result (outputs, merged counters, failure list) is identical
    /// for any thread count.
    #[test]
    fn quarantine_is_deterministic_across_thread_counts(
        raw_poisoned in proptest::collection::vec(0usize..6, 0..3),
    ) {
        let poisoned: BTreeSet<usize> = raw_poisoned.into_iter().collect();
        let compiled = compiled();
        let samples: Vec<Vec<f64>> =
            (0..6).map(|i| vec![1.2e-3 + 1e-4 * i as f64]).collect();
        let scenario = PoisonedCampaign { poisoned: poisoned.clone() };
        let policy = FailurePolicy::Quarantine { max_failures: poisoned.len().max(1) };

        let reference = run_ensemble(
            &compiled,
            &scenario,
            &samples,
            &EnsembleOptions { failure_policy: policy, ..EnsembleOptions::default() },
        )
        .unwrap();
        let failed: BTreeSet<usize> =
            reference.failures.iter().map(|f| f.sample).collect();
        prop_assert_eq!(&failed, &poisoned);
        for (i, out) in reference.outputs.iter().enumerate() {
            prop_assert_eq!(out.is_empty(), poisoned.contains(&i), "sample {}", i);
        }

        for threads in [2, 3] {
            let par = run_ensemble(
                &compiled,
                &scenario,
                &samples,
                &EnsembleOptions {
                    n_threads: threads,
                    failure_policy: policy,
                    ..EnsembleOptions::default()
                },
            )
            .unwrap();
            prop_assert_eq!(&par.outputs, &reference.outputs, "threads = {}", threads);
            prop_assert_eq!(&par.counters, &reference.counters, "threads = {}", threads);
            prop_assert_eq!(
                par.failures.len(),
                reference.failures.len(),
                "threads = {}",
                threads
            );
        }
    }
}
