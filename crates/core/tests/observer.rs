//! Integration tests of the in-run observer/early-exit hook: bit-identity
//! of observed-but-not-stopped runs, early termination at the decided
//! limit state, and crossing-time bisection accuracy — the contracts the
//! rare-event reliability engine builds on.

use etherm_bondwire::degradation::first_crossing;
use etherm_core::{
    CompiledModel, ElectrothermalModel, ObserverAction, Session, SolverOptions, StepObserver,
    StepRecord, ThresholdObserver,
};
use etherm_fit::boundary::ThermalBoundary;
use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
use etherm_materials::{library, MaterialTable};
use std::sync::Arc;

/// A driven epoxy block with one bond wire across it; the wire heats from
/// 300 K toward ≈330 K within a couple of seconds.
fn wire_model() -> ElectrothermalModel {
    let grid = Grid3::new(
        Axis::uniform(0.0, 2e-3, 4).unwrap(),
        Axis::uniform(0.0, 1e-3, 2).unwrap(),
        Axis::uniform(0.0, 0.5e-3, 1).unwrap(),
    );
    let paint = CellPaint::new(&grid, MaterialId(0));
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
    let wire = etherm_bondwire::BondWire::new("w", 1.5e-3, 25.4e-6, library::copper()).unwrap();
    model
        .add_wire(wire, (0.0, 0.5e-3, 0.5e-3), (2e-3, 0.5e-3, 0.5e-3))
        .unwrap();
    let a = model.wires()[0].node_a;
    let b = model.wires()[0].node_b;
    model.set_electric_potential(&[a], 0.02);
    model.set_electric_potential(&[b], -0.02);
    model.set_thermal_boundary(ThermalBoundary::convective(25.0, 300.0));
    model
}

fn session() -> Session {
    let compiled = CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap();
    Session::new(Arc::new(compiled))
}

/// An observer that looks but never interferes.
struct PassThrough {
    records_seen: usize,
}

impl StepObserver for PassThrough {
    fn observe(&mut self, record: &StepRecord<'_>) -> ObserverAction {
        assert_eq!(record.wire_temperatures.len(), 1);
        assert!(record.temperature.len() > 1);
        self.records_seen += 1;
        ObserverAction::Continue
    }
}

#[test]
fn non_stopping_observer_is_bit_identical_to_run_transient() {
    let mut plain = session();
    let reference = plain.run_transient(2.0, 8, &[2.0]).unwrap();

    let mut observed_session = session();
    let mut observer = PassThrough { records_seen: 0 };
    let observed = observed_session
        .run_transient_observed(2.0, 8, &[2.0], &mut observer)
        .unwrap();
    // Full bitwise equality of every recorded series and snapshot.
    assert_eq!(observed.solution, reference);
    assert!(!observed.stopped_early);
    assert_eq!(observed.steps_executed, 8);
    assert_eq!(observed.bisection_steps, 0);
    assert_eq!(observed.crossing_time, None);
    assert_eq!(observer.records_seen, 9); // initial state + 8 steps
    // Identical solver work too.
    assert_eq!(plain.counters(), observed_session.counters());
}

#[test]
fn early_exit_matches_full_run_crossing_and_saves_steps() {
    // Full reference run: crossing of 315 K interpolated from the sampled
    // series (the post-hoc `assess_series` path).
    let threshold = 315.0;
    let n_steps = 40;
    let t_end = 4.0;
    let dt = t_end / n_steps as f64;
    let mut full = session();
    let reference = full.run_transient(t_end, n_steps, &[]).unwrap();
    let series = reference.max_wire_series();
    let expected = first_crossing(&reference.times, &series, threshold)
        .expect("reference run must cross the threshold");
    assert!(expected > dt, "crossing should not be in the first step");

    // Observed run: terminates at the crossing, bisects it.
    let mut obs_session = session();
    let mut observer = ThresholdObserver::new(threshold);
    let observed = obs_session
        .run_transient_observed(t_end, n_steps, &[], &mut observer)
        .unwrap();
    assert!(observed.stopped_early);
    assert!(
        observed.steps_executed < n_steps,
        "early exit must execute strictly fewer steps ({} vs {n_steps})",
        observed.steps_executed
    );
    assert!(observed.bisection_steps > 0);
    let crossing = observed.crossing_time.expect("crossing decided");
    // The bisected crossing and the sampled-series interpolation may differ
    // by the in-step curvature — both live in the same step, so they agree
    // within one step size.
    assert!(
        (crossing - expected).abs() <= dt,
        "bisected crossing {crossing} vs interpolated {expected} (dt = {dt})"
    );
    // The truncated series agrees bitwise with the reference prefix.
    let k = observed.solution.times.len();
    assert_eq!(&reference.times[..k], &observed.solution.times[..]);
    assert_eq!(
        &reference.max_wire_series()[..k],
        &observed.solution.max_wire_series()[..]
    );
    // The observer's peak is the crossing step's value: at or above the
    // threshold.
    assert!(observer.peak() >= threshold);
    // Early exit does strictly less solver work than the full run.
    assert!(
        obs_session.counters().thermal_solves < full.counters().thermal_solves,
        "observed {:?} vs full {:?}",
        obs_session.counters(),
        full.counters()
    );
}

#[test]
fn threshold_below_initial_state_stops_at_time_zero() {
    let mut s = session();
    let mut observer = ThresholdObserver::new(250.0); // below ambient
    let observed = s
        .run_transient_observed(2.0, 8, &[], &mut observer)
        .unwrap();
    assert!(observed.stopped_early);
    assert_eq!(observed.steps_executed, 0);
    assert_eq!(observed.crossing_time, Some(0.0));
    assert_eq!(observed.bisection_steps, 0);
}

#[test]
fn stop_without_bisection_terminates_cleanly() {
    struct StopAfter {
        steps: usize,
    }
    impl StepObserver for StopAfter {
        fn observe(&mut self, record: &StepRecord<'_>) -> ObserverAction {
            if record.step >= self.steps {
                ObserverAction::Stop
            } else {
                ObserverAction::Continue
            }
        }
    }
    let mut s = session();
    let observed = s
        .run_transient_observed(2.0, 8, &[], &mut StopAfter { steps: 3 })
        .unwrap();
    assert!(observed.stopped_early);
    assert_eq!(observed.steps_executed, 3);
    assert_eq!(observed.solution.times.len(), 4);
    assert_eq!(observed.crossing_time, None);
    assert_eq!(observed.bisection_steps, 0);
}

#[test]
fn zero_bisections_reduce_to_linear_interpolation() {
    let threshold = 315.0;
    let n_steps = 40;
    let t_end = 4.0;
    let mut full = session();
    let reference = full.run_transient(t_end, n_steps, &[]).unwrap();
    let expected =
        first_crossing(&reference.times, &reference.max_wire_series(), threshold).unwrap();

    let mut s = session();
    let mut observer = ThresholdObserver::new(threshold).with_bisections(0);
    let observed = s
        .run_transient_observed(t_end, n_steps, &[], &mut observer)
        .unwrap();
    assert_eq!(observed.bisection_steps, 0);
    // With zero bisections the session interpolates the violating step's
    // endpoints — on the bitwise-identical prefix this is *exactly* the
    // sampled-series first crossing.
    let crossing = observed.crossing_time.unwrap();
    assert!(
        (crossing - expected).abs() < 1e-12,
        "{crossing} vs {expected}"
    );
}
