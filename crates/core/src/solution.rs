//! Result container of a transient run.

/// Time histories produced by [`crate::Simulator::run_transient`].
///
/// Wire temperatures are the paper's representative values
/// `T_bw,j = Xⱼᵀ T` (mean of the two attachment nodes, Eq. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSolution {
    /// Sample times, starting at `t = 0` (length `n_steps + 1`).
    pub times: Vec<f64>,
    /// `wire_temperatures[j][i]` = temperature of wire `j` at `times[i]` (K).
    pub wire_temperatures: Vec<Vec<f64>>,
    /// `wire_powers[j][i]` = Joule power dissipated in wire `j` (W).
    pub wire_powers: Vec<Vec<f64>>,
    /// Total field (grid) Joule power per time (W).
    pub field_power: Vec<f64>,
    /// Picard iterations used per step (length `n_steps`).
    pub picard_iterations: Vec<usize>,
    /// Total inner CG iterations over the whole run.
    pub linear_iterations: usize,
    /// Requested full-field snapshots `(time, T_full)`.
    pub snapshots: Vec<(f64, Vec<f64>)>,
}

impl TransientSolution {
    /// Number of recorded time points.
    pub fn n_times(&self) -> usize {
        self.times.len()
    }

    /// Number of wires.
    pub fn n_wires(&self) -> usize {
        self.wire_temperatures.len()
    }

    /// Temperature series of wire `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn wire_series(&self, j: usize) -> &[f64] {
        &self.wire_temperatures[j]
    }

    /// Maximum wire temperature at time index `i`.
    ///
    /// # Panics
    ///
    /// Panics if there are no wires or `i` is out of range.
    pub fn max_wire_temperature_at(&self, i: usize) -> f64 {
        self.wire_temperatures
            .iter()
            .map(|s| s[i])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index and final temperature of the hottest wire (at the last time).
    ///
    /// Returns `None` when the model has no wires.
    pub fn hottest_wire(&self) -> Option<(usize, f64)> {
        let last = self.times.len().checked_sub(1)?;
        self.wire_temperatures
            .iter()
            .enumerate()
            .map(|(j, s)| (j, s[last]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite temperatures"))
    }

    /// Per-time maximum over all wires (`maxⱼ T_bw,j(t)`).
    pub fn max_wire_series(&self) -> Vec<f64> {
        (0..self.times.len())
            .map(|i| self.max_wire_temperature_at(i))
            .collect()
    }

    /// The snapshot nearest to time `t`, if any were recorded.
    pub fn snapshot_near(&self, t: f64) -> Option<&(f64, Vec<f64>)> {
        self.snapshots.iter().min_by(|a, b| {
            (a.0 - t)
                .abs()
                .partial_cmp(&(b.0 - t).abs())
                .expect("finite times")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol() -> TransientSolution {
        TransientSolution {
            times: vec![0.0, 1.0, 2.0],
            wire_temperatures: vec![vec![300.0, 310.0, 315.0], vec![300.0, 320.0, 312.0]],
            wire_powers: vec![vec![0.0; 3]; 2],
            field_power: vec![0.0; 3],
            picard_iterations: vec![2, 2],
            linear_iterations: 10,
            snapshots: vec![(2.0, vec![300.0])],
        }
    }

    #[test]
    fn accessors() {
        let s = sol();
        assert_eq!(s.n_times(), 3);
        assert_eq!(s.n_wires(), 2);
        assert_eq!(s.wire_series(1)[1], 320.0);
        assert_eq!(s.max_wire_temperature_at(1), 320.0);
        assert_eq!(s.max_wire_series(), vec![300.0, 320.0, 315.0]);
        // Hottest at final time is wire 0 (315 > 312).
        assert_eq!(s.hottest_wire(), Some((0, 315.0)));
        assert_eq!(s.snapshot_near(1.7).unwrap().0, 2.0);
    }

    #[test]
    fn empty_wires() {
        let s = TransientSolution {
            times: vec![0.0],
            wire_temperatures: vec![],
            wire_powers: vec![],
            field_power: vec![0.0],
            picard_iterations: vec![],
            linear_iterations: 0,
            snapshots: vec![],
        };
        assert_eq!(s.hottest_wire(), None);
        assert!(s.snapshot_near(0.0).is_none());
    }
}
