//! The QoI-evaluation abstraction behind the surrogate fast path: batches of
//! physical-space parameter samples go in, QoI vectors come out, and the
//! caller neither knows nor cares whether each answer came from a full
//! transient solve or a microsecond surrogate prediction.
//!
//! * [`QoiEvaluator`] — the trait: batch evaluation plus bookkeeping of how
//!   many samples paid for a full solve vs. were served cheaply,
//! * [`FullSolve`] — today's path: every sample fans out over
//!   [`run_ensemble`] worker sessions.
//!
//! The surrogate-serving implementation (`SurrogateWithFallback`) lives in
//! `etherm_reliability`, next to the training pipeline and the estimators
//! that consume it.

use crate::compiled::CompiledModel;
use crate::ensemble::{run_ensemble, EnsembleOptions, Scenario};
use crate::error::CoreError;
use crate::session::SolveCounters;
use std::sync::Arc;

/// Evaluates QoI vectors for batches of *physical-space* parameter samples.
///
/// Contract:
///
/// * the output has one entry per input sample, in sample order;
/// * an **empty** QoI vector marks a quarantined sample (the evaluator could
///   not produce an answer under a tolerant failure policy) — non-empty
///   vectors all have the same length;
/// * evaluation is deterministic: the same batch yields bit-identical
///   outputs regardless of worker-thread count.
pub trait QoiEvaluator {
    /// Length of one parameter sample.
    fn dim(&self) -> usize;

    /// Evaluates one batch of samples.
    ///
    /// # Errors
    ///
    /// Propagates solver failures per the underlying failure policy.
    fn evaluate(&mut self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError>;

    /// Cumulative number of samples routed through the full transient
    /// solver.
    fn full_solves(&self) -> usize;

    /// Cumulative number of samples answered without a transient solve
    /// (0 for a pure full-solve evaluator).
    fn served(&self) -> usize;

    /// Merged linear-solver counters for all full solves so far.
    fn counters(&self) -> SolveCounters;
}

/// The reference [`QoiEvaluator`]: every sample is a full transient solve,
/// fanned out over [`run_ensemble`] worker sessions.
pub struct FullSolve<'a, S: Scenario> {
    compiled: &'a Arc<CompiledModel>,
    scenario: &'a S,
    dim: usize,
    options: EnsembleOptions,
    counters: SolveCounters,
    evaluated: usize,
    quarantined: usize,
}

impl<'a, S: Scenario> FullSolve<'a, S> {
    /// Wraps a compiled model and scenario; `dim` is the per-sample
    /// parameter count and `options` controls the worker fan-out per batch.
    pub fn new(
        compiled: &'a Arc<CompiledModel>,
        scenario: &'a S,
        dim: usize,
        options: EnsembleOptions,
    ) -> Self {
        FullSolve {
            compiled,
            scenario,
            dim,
            options,
            counters: SolveCounters::default(),
            evaluated: 0,
            quarantined: 0,
        }
    }

    /// Samples quarantined (empty QoI vector) so far.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// The ensemble options every batch runs with.
    pub fn options(&self) -> &EnsembleOptions {
        &self.options
    }
}

impl<S: Scenario> QoiEvaluator for FullSolve<'_, S> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn evaluate(&mut self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        if samples.is_empty() {
            return Ok(Vec::new());
        }
        let result = run_ensemble(self.compiled, self.scenario, samples, &self.options)?;
        self.counters.merge(&result.counters);
        self.evaluated += samples.len();
        self.quarantined += result.outputs.iter().filter(|o| o.is_empty()).count();
        Ok(result.outputs)
    }

    fn full_solves(&self) -> usize {
        self.evaluated
    }

    fn served(&self) -> usize {
        0
    }

    fn counters(&self) -> SolveCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ElectrothermalModel;
    use crate::options::SolverOptions;
    use crate::session::Session;
    use etherm_fit::boundary::ThermalBoundary;
    use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
    use etherm_materials::{library, MaterialTable};

    /// A driven epoxy block with one wire across it (same fixture as the
    /// ensemble tests).
    fn wire_model() -> ElectrothermalModel {
        let grid = Grid3::new(
            Axis::uniform(0.0, 2e-3, 4).unwrap(),
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
            Axis::uniform(0.0, 0.5e-3, 1).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(library::epoxy_resin());
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let wire =
            etherm_bondwire::BondWire::new("w", 1.5e-3, 25.4e-6, library::copper()).unwrap();
        model
            .add_wire(wire, (0.0, 0.5e-3, 0.5e-3), (2e-3, 0.5e-3, 0.5e-3))
            .unwrap();
        let a = model.wires()[0].node_a;
        let b = model.wires()[0].node_b;
        model.set_electric_potential(&[a], 0.02);
        model.set_electric_potential(&[b], -0.02);
        model.set_thermal_boundary(ThermalBoundary::convective(25.0, 300.0));
        model
    }

    struct LengthScenario;
    impl Scenario for LengthScenario {
        fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
            session.set_wire_length(0, sample[0])
        }
        fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
            let sol = session.run_transient(2.0, 4, &[])?;
            Ok(vec![*sol.wire_series(0).last().unwrap()])
        }
    }

    #[test]
    fn full_solve_matches_direct_ensemble_and_tracks_counts() {
        let compiled =
            Arc::new(CompiledModel::compile(wire_model(), SolverOptions::fast()).unwrap());
        let samples: Vec<Vec<f64>> =
            (0..5).map(|i| vec![1.2e-3 + 1e-4 * i as f64]).collect();
        let options = EnsembleOptions::default();
        let direct =
            run_ensemble(&compiled, &LengthScenario, &samples, &options).expect("direct");

        let mut fs = FullSolve::new(&compiled, &LengthScenario, 1, options);
        assert_eq!(fs.evaluate(&[]).expect("empty batch"), Vec::<Vec<f64>>::new());
        let out = fs.evaluate(&samples).expect("full solve");
        assert_eq!(format!("{out:?}"), format!("{:?}", direct.outputs));
        assert_eq!(fs.dim(), 1);
        assert_eq!(fs.full_solves(), 5);
        assert_eq!(fs.served(), 0);
        assert_eq!(fs.quarantined(), 0);
        assert_eq!(fs.counters().thermal_solves, direct.counters.thermal_solves);
    }
}
