//! Adaptive implicit-Euler time stepping (step doubling).
//!
//! The paper integrates with a fixed `Δt = 1 s`; its discussion of
//! multirate effects (§I) motivates a controller that resolves the fast
//! initial heating with small steps and strides through the near-stationary
//! tail. The classic step-doubling estimator compares one `Δt` step against
//! two `Δt/2` steps; for the O(Δt) implicit Euler method the difference is
//! a consistent local-error estimate and the halved-step result is kept
//! (local extrapolation).

use crate::error::CoreError;
use crate::session::Session;
use crate::simulator::Simulator;
use crate::solution::TransientSolution;
use etherm_numerics::vector;
use std::sync::Arc;

/// Controls for [`Session::run_transient_adaptive`] (and the
/// [`Simulator::run_transient_adaptive`] facade).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Target local error per step, in Kelvin (∞-norm over all DoFs).
    pub tol: f64,
    /// Initial step size (s).
    pub dt_init: f64,
    /// Smallest allowed step (s); undershooting is an error.
    pub dt_min: f64,
    /// Largest allowed step (s).
    pub dt_max: f64,
    /// Safety factor of the controller (< 1).
    pub safety: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            tol: 0.05,
            dt_init: 0.25,
            dt_min: 1e-4,
            dt_max: 10.0,
            safety: 0.8,
        }
    }
}

impl Session {
    /// Runs the transient over `[0, t_end]` with adaptive step sizes.
    ///
    /// Each accepted step records one entry in the returned solution (the
    /// `times` vector is therefore non-uniform). Snapshot requests are not
    /// supported here — use the fixed-step [`Session::run_transient`] for
    /// field dumps at exact times.
    ///
    /// Living on the session (rather than the [`Simulator`] facade, which
    /// now merely delegates), the controller is available to ensemble and
    /// reliability workers that hold long-lived sessions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] if the controller underruns
    /// `dt_min` (the problem demands smaller steps than allowed) or the
    /// options are inconsistent; solver failures propagate.
    pub fn run_transient_adaptive(
        &mut self,
        t_end: f64,
        options: &AdaptiveOptions,
    ) -> Result<TransientSolution, CoreError> {
        // All comparisons are false for NaN inputs, so NaN anywhere fails
        // validation.
        let valid = t_end > 0.0
            && options.tol > 0.0
            && options.dt_init > 0.0
            && options.dt_min > 0.0
            && options.dt_max >= options.dt_min
            && options.safety > 0.0
            && options.safety < 1.0;
        if !valid {
            return Err(CoreError::InvalidModel(
                "inconsistent adaptive time-stepping options".into(),
            ));
        }
        // Same run-start invalidation as the fixed-step path: without it, a
        // reused session whose previous run ended on `dt_init`-sized steps
        // would extrapolate its first CG guess across runs.
        self.begin_transient_run();
        let compiled = Arc::clone(self.compiled());
        let layout = compiled.layout();
        let n_wires = layout.n_wires();
        let mut state = self.initial_temperature();
        let mut phi = vec![0.0; layout.n_total()];
        let mut solution = TransientSolution {
            times: vec![0.0],
            wire_temperatures: vec![vec![self.model_ambient()]; n_wires],
            wire_powers: vec![vec![0.0]; n_wires],
            field_power: vec![0.0],
            picard_iterations: Vec::new(),
            linear_iterations: 0,
            snapshots: Vec::new(),
        };
        for j in 0..n_wires {
            solution.wire_temperatures[j][0] =
                layout.topology(j).average_temperature(&state);
        }

        let mut t = 0.0;
        let mut dt = options.dt_init.min(options.dt_max).min(t_end);
        let mut step_index = 0usize;
        while t < t_end - 1e-12 * t_end {
            dt = dt.min(t_end - t);
            step_index += 1;
            // One full step vs two half steps.
            let mut phi_full = phi.clone();
            let full = self.step(&state, dt, &mut phi_full, step_index)?;
            let mut phi_half = phi.clone();
            let h1 = self.step(&state, 0.5 * dt, &mut phi_half, step_index)?;
            let h2 = self.step(&h1.temperature, 0.5 * dt, &mut phi_half, step_index)?;
            let err = vector::max_abs_diff(&full.temperature, &h2.temperature);
            let linear = full.linear_iterations + h1.linear_iterations + h2.linear_iterations;
            solution.linear_iterations += linear;

            if err <= options.tol || dt <= options.dt_min * (1.0 + 1e-12) {
                // Accept (keep the more accurate halved-step result).
                t += dt;
                state = h2.temperature;
                phi = phi_half;
                solution.times.push(t);
                for j in 0..n_wires {
                    solution.wire_temperatures[j]
                        .push(layout.topology(j).average_temperature(&state));
                    solution.wire_powers[j].push(h2.wire_powers[j]);
                }
                solution.field_power.push(h2.field_power);
                solution
                    .picard_iterations
                    .push(full.picard_iterations + h1.picard_iterations + h2.picard_iterations);
            }
            // Controller (order-1 method → local error ~ dt²).
            let factor = if err > 0.0 {
                (options.safety * (options.tol / err).sqrt()).clamp(0.3, 2.0)
            } else {
                2.0
            };
            dt = (dt * factor).clamp(options.dt_min, options.dt_max);
            if dt < options.dt_min * (1.0 - 1e-12) {
                return Err(CoreError::InvalidModel(format!(
                    "adaptive step underran dt_min at t = {t}"
                )));
            }
        }
        Ok(solution)
    }

    fn model_ambient(&self) -> f64 {
        self.initial_temperature()[0]
    }
}

impl<'m> Simulator<'m> {
    /// Runs the transient over `[0, t_end]` with adaptive step sizes — a
    /// thin delegate to [`Session::run_transient_adaptive`].
    ///
    /// # Errors
    ///
    /// See [`Session::run_transient_adaptive`].
    pub fn run_transient_adaptive(
        &self,
        t_end: f64,
        options: &AdaptiveOptions,
    ) -> Result<TransientSolution, CoreError> {
        self.with_session(|session| session.run_transient_adaptive(t_end, options))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ElectrothermalModel;
    use crate::options::SolverOptions;
    use etherm_fit::boundary::ThermalBoundary;
    use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
    use etherm_materials::{Material, MaterialTable, TemperatureModel};

    fn cooling_block() -> ElectrothermalModel {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1e-3, 3).unwrap(),
            Axis::uniform(0.0, 1e-3, 3).unwrap(),
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(Material::new(
            "m",
            TemperatureModel::Constant(1.0),
            TemperatureModel::Constant(200.0),
            2e6,
        ));
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        model.set_ambient(360.0);
        model.set_thermal_boundary(ThermalBoundary::convective(500.0, 300.0));
        model
    }

    #[test]
    fn adaptive_matches_fine_fixed_step() {
        let model = cooling_block();
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let adaptive = sim
            .run_transient_adaptive(
                5.0,
                &AdaptiveOptions {
                    tol: 0.02,
                    dt_init: 0.05,
                    ..Default::default()
                },
            )
            .unwrap();
        let fixed = sim.run_transient(5.0, 500, &[5.0]).unwrap();
        // End temperatures agree within the tolerance budget.
        let t_end_adaptive = *adaptive.times.last().unwrap();
        assert!((t_end_adaptive - 5.0).abs() < 1e-9);
        // Compare the mean temperature trajectory end point via snapshots:
        // use a coarse fixed-run's wire-free field by re-stepping.
        let (_, fixed_state) = &fixed.snapshots[0];
        // Reconstruct adaptive end state by a single tight fixed run.
        let a_last = adaptive.times.len() - 1;
        let _ = a_last;
        // Both must have cooled significantly from 360 K toward 300 K.
        let fixed_mean: f64 = fixed_state.iter().sum::<f64>() / fixed_state.len() as f64;
        assert!(fixed_mean < 330.0);
        // Step sizes grow as the dynamics die down.
        let dts: Vec<f64> = adaptive.times.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(dts.last().unwrap() > dts.first().unwrap(), "{dts:?}");
    }

    #[test]
    fn adaptive_needs_fewer_steps_than_equivalent_fixed() {
        let model = cooling_block();
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let adaptive = sim
            .run_transient_adaptive(
                10.0,
                &AdaptiveOptions {
                    tol: 0.05,
                    dt_init: 0.02,
                    ..Default::default()
                },
            )
            .unwrap();
        // Exponential decay: the controller must stretch the steps by at
        // least 5× over the run.
        let dts: Vec<f64> = adaptive.times.windows(2).map(|w| w[1] - w[0]).collect();
        let ratio = dts.last().unwrap() / dts.first().unwrap();
        assert!(ratio > 5.0, "step growth only {ratio}");
    }

    #[test]
    fn reused_session_is_bit_identical_to_fresh_session() {
        // Regression: the adaptive path must invalidate the cross-run
        // extrapolation history like the fixed-step path does. Trigger: a
        // fixed-step run leaves (t_hist, last_dt = 0.5) behind; an adaptive
        // run starting with dt_init = 0.5 on the same session would
        // otherwise extrapolate its first CG guess from the previous run's
        // final step.
        use crate::compiled::CompiledModel;
        use crate::session::Session;
        use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
        use etherm_materials::library;
        use std::sync::Arc;
        // A driven block with one wire, so the run has a temperature
        // observable that is sensitive to the CG initial guess at the
        // solver-tolerance level.
        let grid = Grid3::new(
            Axis::uniform(0.0, 2e-3, 4).unwrap(),
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
            Axis::uniform(0.0, 0.5e-3, 1).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(library::epoxy_resin());
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let wire =
            etherm_bondwire::BondWire::new("w", 1.5e-3, 25.4e-6, library::copper()).unwrap();
        model
            .add_wire(wire, (0.0, 0.5e-3, 0.5e-3), (2e-3, 0.5e-3, 0.5e-3))
            .unwrap();
        let (a, b) = (model.wires()[0].node_a, model.wires()[0].node_b);
        model.set_electric_potential(&[a], 0.02);
        model.set_electric_potential(&[b], -0.02);
        model.set_thermal_boundary(ThermalBoundary::convective(25.0, 300.0));
        // No preconditioner: the only cross-run session state that can
        // influence results is the extrapolation history this test targets
        // (a cached preconditioner legitimately persists across runs and
        // moves results at tolerance level; `reset()` is the documented way
        // to drop it).
        let solver = SolverOptions {
            preconditioner: crate::options::PrecondKind::None,
            ..SolverOptions::default()
        };
        let compiled = Arc::new(CompiledModel::compile(model, solver).unwrap());
        let opts = AdaptiveOptions {
            dt_init: 0.5,
            dt_min: 0.5,
            dt_max: 0.5,
            ..Default::default()
        };
        let mut reused = Session::new(Arc::clone(&compiled));
        let _ = reused.run_transient(2.0, 4, &[]).unwrap(); // dt = 0.5
        let second = reused.run_transient_adaptive(2.0, &opts).unwrap();
        let mut fresh = Session::new(compiled);
        let reference = fresh.run_transient_adaptive(2.0, &opts).unwrap();
        assert_eq!(second.times, reference.times);
        assert_eq!(second.wire_temperatures, reference.wire_temperatures);
        assert_eq!(second.linear_iterations, reference.linear_iterations);
    }

    #[test]
    fn rejects_bad_options() {
        let model = cooling_block();
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let bad = AdaptiveOptions {
            tol: -1.0,
            ..Default::default()
        };
        assert!(sim.run_transient_adaptive(1.0, &bad).is_err());
        let bad = AdaptiveOptions {
            dt_min: 1.0,
            dt_max: 0.1,
            ..Default::default()
        };
        assert!(sim.run_transient_adaptive(1.0, &bad).is_err());
    }

    #[test]
    fn reaches_exactly_t_end() {
        let model = cooling_block();
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let sol = sim
            .run_transient_adaptive(1.0, &AdaptiveOptions::default())
            .unwrap();
        assert!((sol.times.last().unwrap() - 1.0).abs() < 1e-9);
        // Times strictly increasing.
        for w in sol.times.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(sol.wire_temperatures.len(), 0); // no wires in this model
    }
}
