//! Solver configuration.

use etherm_numerics::solvers::CgOptions;

/// Which Joule-heat quadrature feeds the thermal right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JouleScheme {
    /// Paper scheme: voltages interpolated to cell midpoints, cell powers
    /// scattered to nodes (§III-A).
    #[default]
    CellBased,
    /// Per-edge dissipation `Mσ,e·u_e²` split onto the edge endpoints —
    /// discretely exact w.r.t. the FIT stiffness (ablation A2).
    EdgeBased,
}

/// Preconditioner selection for the inner CG solves.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PrecondKind {
    /// No preconditioning (plain CG).
    None,
    /// Diagonal (Jacobi) scaling — robust for the huge σ contrasts.
    Jacobi,
    /// Zero-fill incomplete Cholesky (default; strongest per-iteration).
    #[default]
    Ic0,
    /// Symmetric SOR with the given relaxation factor.
    Ssor(f64),
}

/// Options of the coupled transient solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Inner linear-solver (CG) controls.
    pub linear: CgOptions,
    /// Preconditioner for both subsystems.
    pub preconditioner: PrecondKind,
    /// Relative ℓ₂ tolerance of the per-step Picard iteration.
    pub picard_tol: f64,
    /// Picard iteration cap per time step.
    pub picard_max_iter: usize,
    /// Joule-heat quadrature.
    pub joule: JouleScheme,
    /// Whether wire-internal DoFs carry their segment heat capacity
    /// (`ρc·A·L/n` each). The paper's lumped element is massless; the
    /// capacity is tiny but improves conditioning of multi-segment chains.
    pub wire_heat_capacity: bool,
    /// Fail the run (instead of warning) when Picard stalls.
    pub strict_picard: bool,
    /// Re-solve the electrical subsystem in *every* Picard iteration
    /// (strong coupling). When `false`, the potential is computed once per
    /// time step and lagged through the remaining Picard iterations — the
    /// classic weak-coupling scheme, accurate to `O(Δt)` like the implicit
    /// Euler method itself and ~35 % faster on package-sized models.
    pub resolve_electrical_every_picard: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            linear: CgOptions {
                tol_rel: 1e-9,
                tol_abs: 1e-30,
                max_iter: 0,
            },
            preconditioner: PrecondKind::Ic0,
            picard_tol: 1e-7,
            picard_max_iter: 25,
            joule: JouleScheme::CellBased,
            wire_heat_capacity: true,
            strict_picard: false,
            resolve_electrical_every_picard: true,
        }
    }
}

impl SolverOptions {
    /// Fast options for Monte Carlo sweeps: slightly looser tolerances that
    /// keep the sampling error dominant over the solver error.
    pub fn fast() -> Self {
        SolverOptions {
            linear: CgOptions {
                tol_rel: 1e-6,
                tol_abs: 1e-30,
                max_iter: 0,
            },
            picard_tol: 1e-4,
            picard_max_iter: 15,
            resolve_electrical_every_picard: false,
            ..SolverOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = SolverOptions::default();
        assert_eq!(o.joule, JouleScheme::CellBased);
        assert_eq!(o.preconditioner, PrecondKind::Ic0);
        assert!(o.picard_tol > 0.0 && o.picard_tol < 1e-3);
        assert!(o.picard_max_iter >= 10);
        assert!(o.wire_heat_capacity);
    }

    #[test]
    fn fast_is_looser() {
        let f = SolverOptions::fast();
        let d = SolverOptions::default();
        assert!(f.linear.tol_rel > d.linear.tol_rel);
        assert!(f.picard_tol > d.picard_tol);
    }
}
