//! Solver configuration.

use etherm_numerics::solvers::CgOptions;

/// Which Joule-heat quadrature feeds the thermal right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JouleScheme {
    /// Paper scheme: voltages interpolated to cell midpoints, cell powers
    /// scattered to nodes (§III-A).
    #[default]
    CellBased,
    /// Per-edge dissipation `Mσ,e·u_e²` split onto the edge endpoints —
    /// discretely exact w.r.t. the FIT stiffness (ablation A2).
    EdgeBased,
}

/// Preconditioner selection for the inner CG solves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecondKind {
    /// No preconditioning (plain CG).
    None,
    /// Diagonal (Jacobi) scaling — robust for the huge σ contrasts.
    Jacobi,
    /// Incomplete Cholesky with structural fill level `k`: `Ic(0)` is the
    /// classic zero-fill IC(0); higher levels build a denser factor that
    /// cuts CG iterations substantially — worthwhile now that factorizations
    /// are cached and refreshed lazily instead of rebuilt every solve.
    Ic(usize),
    /// Symmetric SOR with the given relaxation factor.
    Ssor(f64),
    /// Smoothed-aggregation algebraic multigrid V-cycle: near-mesh-
    /// independent CG iteration counts at a higher per-iteration cost —
    /// the preconditioner of choice once the FIT grid is refined past the
    /// paper resolution. The hierarchy honors the same frozen-skeleton
    /// `refresh` contract as the incomplete factorizations, so it slots
    /// into the lazy per-subsystem cache unchanged.
    Amg {
        /// Strength-of-connection threshold θ of the aggregation
        /// (`|a_ij| ≥ θ·√(a_ii·a_jj)`); halved automatically per level.
        theta: f64,
        /// Relaxation factor of the symmetric Gauss–Seidel/SOR smoother
        /// pair (forward pre-sweep, backward post-sweep).
        omega: f64,
    },
}

impl PrecondKind {
    /// Smoothed-aggregation AMG with the standard knobs (θ = 0.08,
    /// Gauss–Seidel smoothing).
    pub fn amg() -> Self {
        PrecondKind::Amg {
            theta: 0.08,
            omega: 1.0,
        }
    }

    /// Short human/machine-readable name for benchmark records
    /// (e.g. `"ic(1)"`, `"amg(theta=0.08,omega=1)"`).
    pub fn describe(&self) -> String {
        match self {
            PrecondKind::None => "none".into(),
            PrecondKind::Jacobi => "jacobi".into(),
            PrecondKind::Ic(level) => format!("ic({level})"),
            PrecondKind::Ssor(omega) => format!("ssor({omega})"),
            PrecondKind::Amg { theta, omega } => format!("amg(theta={theta},omega={omega})"),
        }
    }
}

impl Default for PrecondKind {
    fn default() -> Self {
        // IC(1) costs one extra symbolic pass at construction (amortized by
        // the lazy refresh cache) and roughly halves thermal CG iterations
        // on the paper package compared to IC(0).
        PrecondKind::Ic(1)
    }
}

/// Escalation ladder applied when an inner linear solve fails (iteration
/// cap, SPD breakdown, non-finite contamination).
///
/// The rungs fire in order, each bounded, each recorded in the run's
/// [`crate::RecoveryLedger`]:
///
/// 1. plain retry from the saved pre-solve state (`max_retries` times) —
///    catches transient contamination without touching the preconditioner,
///    so a successful retry is bit-identical to an undisturbed solve;
/// 2. forced preconditioner refresh (in place, frozen pattern);
/// 3. preconditioner downgrade (`Amg` → `Ic(1)` → `Jacobi`), sticky for the
///    rest of the session until the cache is cleared;
/// 4. at the step level, halve `dt` and redo the step as two sub-steps
///    (`max_dt_halvings` levels of recursion).
///
/// `RecoveryPolicy::disabled()` reproduces the historical fail-fast
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Plain same-configuration retries per solve before escalating.
    pub max_retries: usize,
    /// Whether a failing solve may force a preconditioner refresh even when
    /// the factorization is fresh.
    pub forced_refresh: bool,
    /// Whether the ladder may downgrade the preconditioner kind.
    pub precond_fallback: bool,
    /// Maximum levels of `dt`-halving recursion per transient step
    /// (`2` means a step may shrink to `dt/4` sub-steps).
    pub max_dt_halvings: usize,
    /// Total Krylov-iteration budget for one run (`run_transient` /
    /// stationary solve), summed over all solves *including* recovery
    /// attempts. `0` disables the budget. Exceeding it aborts the run with
    /// [`crate::CoreError::BudgetExhausted`] — the backstop that keeps a
    /// pathological sample from burning a whole campaign's CPU.
    pub linear_iteration_budget: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 1,
            forced_refresh: true,
            precond_fallback: true,
            max_dt_halvings: 2,
            linear_iteration_budget: 0,
        }
    }
}

impl RecoveryPolicy {
    /// No escalation at all: the first hard failure propagates, reproducing
    /// the historical fail-fast behavior.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            forced_refresh: false,
            precond_fallback: false,
            max_dt_halvings: 0,
            linear_iteration_budget: 0,
        }
    }

    /// Whether every rung of the ladder is off.
    pub fn is_disabled(&self) -> bool {
        self.max_retries == 0
            && !self.forced_refresh
            && !self.precond_fallback
            && self.max_dt_halvings == 0
    }
}

/// Options of the coupled transient solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Inner linear-solver (CG) controls.
    pub linear: CgOptions,
    /// Preconditioner for both subsystems.
    pub preconditioner: PrecondKind,
    /// Relative ℓ₂ tolerance of the per-step Picard iteration.
    pub picard_tol: f64,
    /// Picard iteration cap per time step.
    pub picard_max_iter: usize,
    /// Joule-heat quadrature.
    pub joule: JouleScheme,
    /// Whether wire-internal DoFs carry their segment heat capacity
    /// (`ρc·A·L/n` each). The paper's lumped element is massless; the
    /// capacity is tiny but improves conditioning of multi-segment chains.
    pub wire_heat_capacity: bool,
    /// Fail the run (instead of warning) when Picard stalls.
    pub strict_picard: bool,
    /// Re-solve the electrical subsystem in *every* Picard iteration
    /// (strong coupling). When `false`, the potential is computed once per
    /// time step and lagged through the remaining Picard iterations — the
    /// classic weak-coupling scheme, accurate to `O(Δt)` like the implicit
    /// Euler method itself and ~35 % faster on package-sized models.
    pub resolve_electrical_every_picard: bool,
    /// OS threads for the sparse matrix-vector products inside CG
    /// (`1` = serial). The row partition is deterministic and the product
    /// bit-identical to the serial kernel, so results do not depend on the
    /// thread count.
    pub n_threads: usize,
    /// Lazy-refresh trigger: a cached preconditioner is refreshed (in place,
    /// over the frozen sparsity pattern) when a solve needs more than
    /// `precond_refresh_factor ×` the CG iterations of the first solve after
    /// the last (re)build. `1.0` effectively refreshes every solve;
    /// `f64::INFINITY` disables the degradation trigger.
    pub precond_refresh_factor: f64,
    /// Forced refresh after this many consecutive solves reusing the same
    /// factorization. `0` rebuilds every solve (the pre-cache behavior,
    /// useful as a benchmark baseline); large values leave refreshes to the
    /// degradation trigger alone.
    pub precond_max_reuses: usize,
    /// Drop tolerance for incomplete-Cholesky fill (`PrecondKind::Ic` with
    /// level ≥ 1): fill entries with `|L[i,j]| < τ·√(L[i,i]·L[j,j])` are
    /// pruned from the factor pattern after the first factorization. On the
    /// paper package, `0.01` halves the triangular-sweep cost at unchanged
    /// CG iteration counts. `0.0` keeps the full structural pattern.
    pub precond_droptol: f64,
    /// Escalation ladder applied when an inner solve fails.
    pub recovery: RecoveryPolicy,
    /// Panel width of the batched ensemble fast path: a batched campaign
    /// groups this many same-model samples per worker and advances all of
    /// them through one fused multi-RHS thermal solve per Picard iterate
    /// (`crate::BatchSession`). `0` or `1` disables batching — the scalar
    /// per-sample path stays the default, and exact-mode campaigns are
    /// unaffected either way. Typical sweet spot: 8–32.
    pub batch_width: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            linear: CgOptions {
                tol_rel: 1e-9,
                tol_abs: 1e-30,
                max_iter: 0,
            },
            preconditioner: PrecondKind::default(),
            picard_tol: 1e-7,
            picard_max_iter: 25,
            joule: JouleScheme::CellBased,
            wire_heat_capacity: true,
            strict_picard: false,
            resolve_electrical_every_picard: true,
            n_threads: 1,
            precond_refresh_factor: 1.5,
            precond_max_reuses: 64,
            precond_droptol: 0.01,
            recovery: RecoveryPolicy::default(),
            batch_width: 0,
        }
    }
}

impl SolverOptions {
    /// Options reproducing the pre-cache behavior: the preconditioner is
    /// rebuilt from scratch before every CG solve. Used as the reference
    /// configuration of `bench_transient` and by the equivalence tests.
    pub fn rebuild_every_solve() -> Self {
        SolverOptions {
            precond_max_reuses: 0,
            ..SolverOptions::default()
        }
    }

    /// The UQ-campaign profile: default (tight) tolerances with the AMG
    /// preconditioner — the configuration of the session-reuse ensemble in
    /// `bench_uq`. AMG costs more per CG iteration but needs ~8× fewer of
    /// them on the paper package, and its hierarchy honors the frozen-
    /// skeleton `refresh` contract, so warm sessions refresh it in place
    /// across samples instead of re-aggregating.
    pub fn uq() -> Self {
        SolverOptions {
            preconditioner: PrecondKind::amg(),
            ..SolverOptions::default()
        }
    }

    /// Fast options for Monte Carlo sweeps: slightly looser tolerances that
    /// keep the sampling error dominant over the solver error.
    pub fn fast() -> Self {
        SolverOptions {
            linear: CgOptions {
                tol_rel: 1e-6,
                tol_abs: 1e-30,
                max_iter: 0,
            },
            picard_tol: 1e-4,
            picard_max_iter: 15,
            resolve_electrical_every_picard: false,
            ..SolverOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = SolverOptions::default();
        assert_eq!(o.joule, JouleScheme::CellBased);
        assert_eq!(o.preconditioner, PrecondKind::Ic(1));
        assert!(o.picard_tol > 0.0 && o.picard_tol < 1e-3);
        assert!(o.picard_max_iter >= 10);
        assert!(o.wire_heat_capacity);
        assert_eq!(o.n_threads, 1);
        assert!(o.precond_refresh_factor > 1.0);
        assert!(o.precond_max_reuses > 0);
        assert_eq!(o.batch_width, 0, "batching must be opt-in");
    }

    #[test]
    fn rebuild_every_solve_disables_reuse() {
        let o = SolverOptions::rebuild_every_solve();
        assert_eq!(o.precond_max_reuses, 0);
        assert_eq!(o.preconditioner, SolverOptions::default().preconditioner);
    }

    #[test]
    fn precond_names_are_stable() {
        assert_eq!(PrecondKind::None.describe(), "none");
        assert_eq!(PrecondKind::Jacobi.describe(), "jacobi");
        assert_eq!(PrecondKind::Ic(1).describe(), "ic(1)");
        assert_eq!(PrecondKind::Ssor(1.2).describe(), "ssor(1.2)");
        assert_eq!(
            PrecondKind::amg().describe(),
            "amg(theta=0.08,omega=1)"
        );
    }

    #[test]
    fn recovery_defaults_and_disabled() {
        let r = RecoveryPolicy::default();
        assert_eq!(r.max_retries, 1);
        assert!(r.forced_refresh && r.precond_fallback);
        assert_eq!(r.max_dt_halvings, 2);
        assert_eq!(r.linear_iteration_budget, 0);
        assert!(!r.is_disabled());
        assert!(RecoveryPolicy::disabled().is_disabled());
        assert_eq!(SolverOptions::default().recovery, RecoveryPolicy::default());
    }

    #[test]
    fn fast_is_looser() {
        let f = SolverOptions::fast();
        let d = SolverOptions::default();
        assert!(f.linear.tol_rel > d.linear.tol_rel);
        assert!(f.picard_tol > d.picard_tol);
    }
}
