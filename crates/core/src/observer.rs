//! In-run step observation and early exit.
//!
//! A reliability analysis asks a yes/no question of every transient — "does
//! `maxⱼ T_bw,j(t)` reach the critical temperature?" — and the answer is
//! usually decided long before `t_end`: a failing sample crosses the
//! threshold during the initial heating ramp, a safe sample settles below it
//! and can only be declared safe at the end. A [`StepObserver`] is evaluated
//! by [`crate::Session::run_transient_observed`] after every accepted
//! implicit-Euler step and may terminate the run the moment the limit state
//! is decided; with [`ObserverAction::StopAndBisect`] the session
//! additionally refines the crossing time by time-bisection inside the
//! violating step (each probe is one implicit-Euler sub-step from the saved
//! step-start state), so a failed sample costs a fraction of a full
//! transient.
//!
//! Observation is strictly read-only: a run with an observer that never
//! stops is bit-identical to [`crate::Session::run_transient`].

/// Decision returned by a [`StepObserver`] after each accepted step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObserverAction {
    /// Keep integrating.
    Continue,
    /// Terminate the transient after this step (limit state decided).
    Stop,
    /// Terminate and refine the first crossing of
    /// `maxⱼ T_bw,j = threshold` inside the just-accepted step by time
    /// bisection: `bisections` implicit-Euler sub-steps from the saved
    /// step-start state narrow the bracket, then the crossing time is
    /// linearly interpolated on the final bracket. With `bisections = 0`
    /// the interpolation uses the full step's endpoints — the same
    /// estimate as `etherm_bondwire::degradation::first_crossing` on the
    /// sampled series.
    StopAndBisect {
        /// Threshold whose crossing is refined (K).
        threshold: f64,
        /// Number of bisection sub-steps (extra coupled solves).
        bisections: usize,
    },
}

/// What an observer sees after an accepted step (or the initial state, with
/// `step == 0` and `dt == 0`).
#[derive(Debug)]
pub struct StepRecord<'a> {
    /// Step index (0 = initial state, then 1..=n_steps).
    pub step: usize,
    /// Time at the end of the step (s).
    pub time: f64,
    /// Step size that produced this state (0 for the initial record).
    pub dt: f64,
    /// Per-wire representative temperatures `T_bw,j = Xⱼᵀ T` (K), in wire
    /// order — the paper's QoI layout.
    pub wire_temperatures: &'a [f64],
    /// Full state vector (grid + wire-internal DoFs, K).
    pub temperature: &'a [f64],
}

impl StepRecord<'_> {
    /// `maxⱼ T_bw,j` at this step; `-∞` for a model without wires.
    pub fn max_wire_temperature(&self) -> f64 {
        self.wire_temperatures
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
    }
}

/// In-run hook of [`crate::Session::run_transient_observed`], evaluated
/// after every accepted step.
pub trait StepObserver {
    /// Inspects the accepted step and decides whether to continue.
    fn observe(&mut self, record: &StepRecord<'_>) -> ObserverAction;
}

/// Result of an observed transient run.
#[derive(Debug, Clone)]
pub struct ObservedTransient {
    /// The (possibly truncated) solution; its time series end at the last
    /// accepted step.
    pub solution: crate::TransientSolution,
    /// Accepted full steps executed (`n_steps` when the run completed).
    pub steps_executed: usize,
    /// Extra implicit-Euler sub-steps spent bisecting the crossing.
    pub bisection_steps: usize,
    /// Whether an observer terminated the run before `t_end`.
    pub stopped_early: bool,
    /// Refined crossing time (s) when the observer requested
    /// [`ObserverAction::StopAndBisect`].
    pub crossing_time: Option<f64>,
}

/// The limit-state observer of the reliability engine: stops (and bisects)
/// as soon as `maxⱼ T_bw,j` reaches `threshold`, and tracks the running
/// peak either way.
#[derive(Debug, Clone)]
pub struct ThresholdObserver {
    threshold: f64,
    bisections: usize,
    peak: f64,
}

impl ThresholdObserver {
    /// Observer for the given threshold (K) with the default 4 bisection
    /// refinements (crossing localized to `dt/16` before interpolation).
    pub fn new(threshold: f64) -> Self {
        ThresholdObserver {
            threshold,
            bisections: 4,
            peak: f64::NEG_INFINITY,
        }
    }

    /// Overrides the number of bisection sub-steps (0 = pure linear
    /// interpolation on the violating step).
    pub fn with_bisections(mut self, bisections: usize) -> Self {
        self.bisections = bisections;
        self
    }

    /// The threshold (K).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Running peak of `maxⱼ T_bw,j` over the observed steps — for a run
    /// that stopped early this is the value at the crossing step (≥ the
    /// threshold), for a completed run the true response maximum.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

impl StepObserver for ThresholdObserver {
    fn observe(&mut self, record: &StepRecord<'_>) -> ObserverAction {
        let y = record.max_wire_temperature();
        if y > self.peak {
            self.peak = y;
        }
        if y >= self.threshold {
            ObserverAction::StopAndBisect {
                threshold: self.threshold,
                bisections: self.bisections,
            }
        } else {
            ObserverAction::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_observer_stops_at_crossing() {
        let mut obs = ThresholdObserver::new(523.0).with_bisections(2);
        assert_eq!(obs.threshold(), 523.0);
        let t = vec![300.0; 4];
        let rec = StepRecord {
            step: 1,
            time: 1.0,
            dt: 1.0,
            wire_temperatures: &[400.0, 410.0],
            temperature: &t,
        };
        assert_eq!(obs.observe(&rec), ObserverAction::Continue);
        assert_eq!(obs.peak(), 410.0);
        let rec = StepRecord {
            step: 2,
            time: 2.0,
            dt: 1.0,
            wire_temperatures: &[520.0, 530.0],
            temperature: &t,
        };
        assert_eq!(
            obs.observe(&rec),
            ObserverAction::StopAndBisect {
                threshold: 523.0,
                bisections: 2
            }
        );
        assert_eq!(obs.peak(), 530.0);
        assert_eq!(rec.max_wire_temperature(), 530.0);
    }

    #[test]
    fn no_wires_never_stops() {
        let mut obs = ThresholdObserver::new(523.0);
        let t = vec![600.0; 4];
        let rec = StepRecord {
            step: 1,
            time: 1.0,
            dt: 1.0,
            wire_temperatures: &[],
            temperature: &t,
        };
        assert_eq!(obs.observe(&rec), ObserverAction::Continue);
        assert_eq!(rec.max_wire_temperature(), f64::NEG_INFINITY);
    }
}
