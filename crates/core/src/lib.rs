//! Coupled transient electrothermal field–circuit solver with embedded
//! lumped bonding wires — the primary contribution of Casper et al.
//! (DATE 2016).
//!
//! The discrete system (paper Eqs. 3–4 extended by the wire stamps) is
//!
//! ```text
//! S̃ Mσ(T) S̃ᵀ Φ  +  Σⱼ Pⱼ G_el,j(T_bw,j) Pⱼᵀ Φ = 0
//! Mρc Ṫ + S̃ Mλ(T) S̃ᵀ T + Σⱼ Pⱼ G_th,j(T_bw,j) Pⱼᵀ T = Q(T, Φ)
//! ```
//!
//! with `Q = Q_el + Q_bnd + Q_bw`. Time is discretized by the implicit
//! Euler method; each step is solved by Picard (fixed-point) iteration with
//! all temperature-dependent coefficients lagged, which keeps every linear
//! system symmetric positive definite.
//!
//! Entry points:
//!
//! * [`ElectrothermalModel`] — geometry + materials + wires + boundary
//!   conditions,
//! * [`Simulator`] — assembles and solves; [`Simulator::run_transient`]
//!   produces a [`TransientSolution`], [`Simulator::solve_stationary`] the
//!   steady state,
//! * [`qoi`] — quantities of interest: per-wire temperatures `T_bw = XᵀT`,
//!   the hottest-wire envelope of Fig. 7, field slices for Fig. 8.

mod adaptive;
mod error;
pub mod export;
mod layout;
mod model;
pub mod options;
pub mod qoi;
mod simulator;
mod solution;

pub use adaptive::AdaptiveOptions;
pub use error::CoreError;
pub use layout::DofLayout;
pub use model::{ElectrothermalModel, WireAttachment};
pub use options::{JouleScheme, PrecondKind, SolverOptions};
pub use simulator::{Simulator, SolveCounters, StationaryResult, StepResult};
pub use solution::TransientSolution;
