//! Coupled transient electrothermal field–circuit solver with embedded
//! lumped bonding wires — the primary contribution of Casper et al.
//! (DATE 2016).
//!
//! The discrete system (paper Eqs. 3–4 extended by the wire stamps) is
//!
//! ```text
//! S̃ Mσ(T) S̃ᵀ Φ  +  Σⱼ Pⱼ G_el,j(T_bw,j) Pⱼᵀ Φ = 0
//! Mρc Ṫ + S̃ Mλ(T) S̃ᵀ T + Σⱼ Pⱼ G_th,j(T_bw,j) Pⱼᵀ T = Q(T, Φ)
//! ```
//!
//! with `Q = Q_el + Q_bnd + Q_bw`. Time is discretized by the implicit
//! Euler method; each step is solved by Picard (fixed-point) iteration with
//! all temperature-dependent coefficients lagged, which keeps every linear
//! system symmetric positive definite.
//!
//! Entry points:
//!
//! * [`ElectrothermalModel`] — geometry + materials + wires + boundary
//!   conditions,
//! * [`Simulator`] — the one-shot facade: assembles and solves;
//!   [`Simulator::run_transient`] produces a [`TransientSolution`],
//!   [`Simulator::solve_stationary`] the steady state,
//! * [`CompiledModel`] / [`Session`] — the compile-once/run-many split for
//!   parameter campaigns: compile the invariants once, open one cheap
//!   session per worker and re-run with new parameters,
//! * [`ensemble`] — evaluate one compiled model for many parameter samples
//!   across threads with deterministic sample-order merging,
//! * [`QoiEvaluator`] / [`FullSolve`] — the batch QoI-evaluation seam the
//!   surrogate fast path plugs into: callers ask for QoI vectors and need
//!   not know whether a full transient or a surrogate answered,
//! * [`observer`] — in-run step observation with early exit and
//!   crossing-time bisection, the transient-side workhorse of the
//!   rare-event reliability engine,
//! * [`qoi`] — quantities of interest: per-wire temperatures `T_bw = XᵀT`,
//!   the hottest-wire envelope of Fig. 7, field slices for Fig. 8.

#![forbid(unsafe_code)]

mod adaptive;
mod assembly;
mod batch;
mod compiled;
pub mod ensemble;
mod error;
mod evaluator;
pub mod export;
mod layout;
mod model;
pub mod observer;
pub mod options;
pub mod qoi;
mod session;
mod simulator;
mod solution;

pub use adaptive::AdaptiveOptions;
pub use batch::BatchSession;
pub use compiled::CompiledModel;
pub use ensemble::{
    run_ensemble, run_ensemble_batched, BatchScenario, EnsembleOptions, EnsembleResult,
    FailurePolicy, SampleFailure, Scenario,
};
pub use error::CoreError;
pub use evaluator::{FullSolve, QoiEvaluator};
pub use etherm_numerics::solvers::{Fault, FaultKind, FaultPlan};
pub use layout::DofLayout;
pub use model::{ElectrothermalModel, WireAttachment};
pub use observer::{
    ObservedTransient, ObserverAction, StepObserver, StepRecord, ThresholdObserver,
};
pub use options::{JouleScheme, PrecondKind, RecoveryPolicy, SolverOptions};
pub use session::{RecoveryLedger, Session, SolveCounters, StationaryResult, StepResult};
pub use simulator::Simulator;
pub use solution::TransientSolution;
