//! The classic one-model/one-run solver facade.
//!
//! [`Simulator`] is a thin wrapper over the compile-once/run-many split of
//! [`crate::CompiledModel`] + [`crate::Session`]: construction compiles the
//! model (DoF layout, Dirichlet maps, frozen stamping patterns) and opens
//! one session; the solve entry points delegate to it. Use it for one-shot
//! runs; for parameter campaigns compile once and reuse sessions (see
//! [`crate::ensemble`]).

use crate::compiled::CompiledModel;
use crate::error::CoreError;
use crate::layout::DofLayout;
use crate::model::ElectrothermalModel;
use crate::options::SolverOptions;
use crate::session::{Session, SolveCounters, StationaryResult, StepResult};
use crate::solution::TransientSolution;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;

/// Assembles and solves the coupled electrothermal system for one model.
///
/// Construction precomputes everything temperature-independent (DoF layout,
/// Dirichlet maps, heat-capacity diagonal, frozen assembly patterns); the
/// per-step work lags the temperature-dependent coefficients in a Picard
/// loop, so every inner system is symmetric positive definite and solved by
/// preconditioned CG.
///
/// The lifetime ties the simulator to the model it was built from (the
/// model is snapshotted at construction; later external mutations are not
/// observed — exactly as with the previous borrowing implementation, where
/// they were prevented by the borrow checker).
#[derive(Debug)]
pub struct Simulator<'m> {
    compiled: Arc<CompiledModel>,
    session: RefCell<Session>,
    _model: PhantomData<&'m ElectrothermalModel>,
}

impl<'m> Simulator<'m> {
    /// Prepares a simulator for the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for inconsistent constraints
    /// (e.g. out-of-range Dirichlet nodes).
    pub fn new(model: &'m ElectrothermalModel, options: SolverOptions) -> Result<Self, CoreError> {
        let compiled = Arc::new(CompiledModel::compile(model.clone(), options)?);
        let session = RefCell::new(Session::new(Arc::clone(&compiled)));
        Ok(Simulator {
            compiled,
            session,
            _model: PhantomData,
        })
    }

    /// The DoF layout (grid + wire internal DoFs).
    pub fn layout(&self) -> &DofLayout {
        self.compiled.layout()
    }

    /// The solver options in use.
    pub fn options(&self) -> &SolverOptions {
        self.compiled.options()
    }

    /// The compiled model backing this simulator (shareable with
    /// [`crate::Session`]s).
    pub fn compiled(&self) -> &Arc<CompiledModel> {
        &self.compiled
    }

    /// Snapshot of the cumulative per-system iteration counters.
    pub fn counters(&self) -> SolveCounters {
        self.session.borrow().counters()
    }

    /// Initial full state: everything at the ambient temperature, wire
    /// internals interpolated.
    pub fn initial_temperature(&self) -> Vec<f64> {
        self.compiled.initial_temperature()
    }

    /// Performs one implicit-Euler step of size `dt` from the full state
    /// `t_prev`, warm-starting the electrical solve from `phi_warm`.
    ///
    /// # Errors
    ///
    /// Returns solver failures; a stalled Picard loop is an error only with
    /// [`SolverOptions::strict_picard`].
    pub fn step(
        &self,
        t_prev: &[f64],
        dt: f64,
        phi_warm: &mut [f64],
        step_index: usize,
    ) -> Result<StepResult, CoreError> {
        self.session.borrow_mut().step(t_prev, dt, phi_warm, step_index)
    }

    /// Solves the stationary coupled problem (steady state).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] if neither a thermal boundary nor
    /// thermal Dirichlet nodes anchor the temperature (singular system).
    pub fn solve_stationary(&self) -> Result<StationaryResult, CoreError> {
        self.session.borrow_mut().solve_stationary()
    }

    /// Runs the implicit-Euler transient over `[0, t_end]` with `n_steps`
    /// equal steps (the paper: 50 s, 51 time points → 50 steps), recording
    /// full-field snapshots at the requested times (matched to the nearest
    /// step).
    ///
    /// # Errors
    ///
    /// Propagates step failures.
    ///
    /// # Panics
    ///
    /// Panics if `n_steps == 0` or `t_end ≤ 0`.
    pub fn run_transient(
        &self,
        t_end: f64,
        n_steps: usize,
        snapshot_times: &[f64],
    ) -> Result<TransientSolution, CoreError> {
        self.session
            .borrow_mut()
            .run_transient(t_end, n_steps, snapshot_times)
    }

    /// Runs the transient with an in-run observer — see
    /// [`Session::run_transient_observed`].
    ///
    /// # Errors
    ///
    /// Propagates step failures (including bisection sub-steps).
    ///
    /// # Panics
    ///
    /// Panics if `n_steps == 0` or `t_end ≤ 0`.
    pub fn run_transient_observed(
        &self,
        t_end: f64,
        n_steps: usize,
        snapshot_times: &[f64],
        observer: &mut dyn crate::observer::StepObserver,
    ) -> Result<crate::observer::ObservedTransient, CoreError> {
        self.session
            .borrow_mut()
            .run_transient_observed(t_end, n_steps, snapshot_times, observer)
    }

    /// Runs `f` on the facade's single session (crate-internal plumbing for
    /// delegates that live in other modules).
    pub(crate) fn with_session<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        f(&mut self.session.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::PrecondKind;
    use etherm_bondwire::BondWire;
    use etherm_fit::boundary::ThermalBoundary;
    use etherm_grid::{Axis, BoxRegion, CellPaint, Grid3, MaterialId};
    use etherm_materials::{library, Material, MaterialTable, TemperatureModel};
    use etherm_numerics::vector;

    /// A copper bar 1 × 0.1 × 0.1 mm, 4×1×1 cells, driven by ±V on its ends.
    fn bar_model(v: f64) -> ElectrothermalModel {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1e-3, 4).unwrap(),
            Axis::uniform(0.0, 1e-4, 1).unwrap(),
            Axis::uniform(0.0, 1e-4, 1).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(Material::new(
            "linear copper",
            TemperatureModel::Constant(5.8e7),
            TemperatureModel::Constant(398.0),
            3.45e6,
        ));
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let left = model.model_nodes_at_x(0.0);
        let right = model.model_nodes_at_x(1e-3);
        model.set_electric_potential(&left, v);
        model.set_electric_potential(&right, 0.0);
        model.set_thermal_boundary(ThermalBoundary::convective(1000.0, 300.0));
        model
    }

    // Small helper on the model for tests.
    trait NodesAtX {
        fn model_nodes_at_x(&self, x: f64) -> Vec<usize>;
    }
    impl NodesAtX for ElectrothermalModel {
        fn model_nodes_at_x(&self, x: f64) -> Vec<usize> {
            (0..self.grid().n_nodes())
                .filter(|&n| (self.grid().node_position(n).0 - x).abs() < 1e-12)
                .collect()
        }
    }

    #[test]
    fn stationary_energy_balance() {
        // In steady state, dissipated power equals boundary outflow.
        let model = bar_model(1e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let st = sim.solve_stationary().unwrap();
        assert!(st.converged);
        let out = model
            .thermal_boundary()
            .outgoing_power(model.grid(), &st.temperature[..model.grid().n_nodes()]);
        let total_in = st.field_power + st.wire_powers.iter().sum::<f64>();
        assert!(
            (out - total_in).abs() < 2e-2 * total_in,
            "in {total_in} vs out {out}"
        );
        // The bar is warmer than ambient everywhere.
        assert!(st.temperature.iter().all(|&t| t > 300.0 - 1e-9));
    }

    #[test]
    fn transient_approaches_stationary() {
        let model = bar_model(1e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let st = sim.solve_stationary().unwrap();
        let tr = sim.run_transient(50.0, 50, &[]).unwrap();
        let last = tr.times.len() - 1;
        assert!(tr.times[last] == 50.0);
        // Use a snapshot to compare fields (bar equilibrates in ≪ 50 s).
        let n = model.grid().n_nodes();
        let tr2 = sim.run_transient(50.0, 50, &[50.0]).unwrap();
        let (_, t_final) = &tr2.snapshots[0];
        let diff = vector::max_abs_diff(&t_final[..n], &st.temperature[..n]);
        assert!(diff < 0.5, "transient did not settle: {diff}");
        // Temperatures rise monotonically toward the steady state.
        assert!(tr.field_power[last] > 0.0);
    }

    #[test]
    fn wire_between_blocks_heats_up() {
        // Two copper pads in epoxy connected only by a bond wire; driving a
        // voltage across the pads forces all current through the wire.
        let grid = Grid3::new(
            Axis::from_coords(vec![0.0, 0.5e-3, 1.0e-3, 1.5e-3, 2.0e-3]).unwrap(),
            Axis::uniform(0.0, 0.5e-3, 2).unwrap(),
            Axis::uniform(0.0, 0.25e-3, 1).unwrap(),
        );
        let mut paint = CellPaint::new(&grid, MaterialId(0));
        paint.paint(
            &grid,
            &BoxRegion::new((0.0, 0.0, 0.0), (0.5e-3, 0.5e-3, 0.25e-3)),
            MaterialId(1),
        );
        paint.paint(
            &grid,
            &BoxRegion::new((1.5e-3, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3)),
            MaterialId(1),
        );
        let mut materials = MaterialTable::new();
        materials.add(library::epoxy_resin());
        materials.add(library::copper());
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let wire = BondWire::new("w1", 1.55e-3, 25.4e-6, library::copper()).unwrap();
        model
            .add_wire(wire, (0.5e-3, 0.25e-3, 0.25e-3), (1.5e-3, 0.25e-3, 0.25e-3))
            .unwrap();
        // PEC at outer pad ends.
        let left: Vec<usize> = (0..model.grid().n_nodes())
            .filter(|&n| model.grid().node_position(n).0 == 0.0)
            .collect();
        let right: Vec<usize> = (0..model.grid().n_nodes())
            .filter(|&n| (model.grid().node_position(n).0 - 2.0e-3).abs() < 1e-12)
            .collect();
        model.set_electric_potential(&left, 0.02);
        model.set_electric_potential(&right, -0.02);

        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let sol = sim.run_transient(50.0, 25, &[]).unwrap();
        let series = sol.wire_series(0);
        // Wire heats up monotonically (until near equilibrium) and ends warm.
        assert!(series[0] == 300.0);
        assert!(
            series.last().unwrap() > &320.0,
            "wire only reached {} K",
            series.last().unwrap()
        );
        // Wire power is positive and current is substantial.
        let p_wire = sol.wire_powers[0].last().unwrap();
        assert!(*p_wire > 0.0);
        // Energy: wire dominates dissipation (pads are far thicker).
        let fp = sol.field_power.last().unwrap();
        assert!(p_wire > fp, "wire {p_wire} vs field {fp}");
    }

    #[test]
    fn amg_reproduces_ic_physics() {
        // The preconditioner choice may change iteration counts, never the
        // converged temperatures.
        let model = bar_model(1e-3);
        let sim_ic = Simulator::new(&model, SolverOptions::default()).unwrap();
        let amg_options = SolverOptions {
            preconditioner: PrecondKind::amg(),
            ..SolverOptions::default()
        };
        let sim_amg = Simulator::new(&model, amg_options).unwrap();
        let sol_ic = sim_ic.run_transient(10.0, 10, &[10.0]).unwrap();
        let sol_amg = sim_amg.run_transient(10.0, 10, &[10.0]).unwrap();
        let (_, t_ic) = &sol_ic.snapshots[0];
        let (_, t_amg) = &sol_amg.snapshots[0];
        let diff = vector::max_abs_diff(t_ic, t_amg);
        assert!(diff < 1e-6, "AMG changed the physics by {diff} K");
        let c = sim_amg.counters();
        assert!(c.peak_coarse_dim > 0, "AMG coarse level not recorded");
        assert_eq!(sim_ic.counters().peak_coarse_dim, 0);
    }

    #[test]
    fn no_drive_stays_at_ambient() {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(library::epoxy_resin());
        let model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let sol = sim.run_transient(10.0, 5, &[]).unwrap();
        // Nothing drives the system: stays at 300 K, one Picard iteration.
        let t_end = sim.initial_temperature();
        let tr = sim.step(&t_end, 1.0, &mut vec![0.0; sim.layout().n_total()], 1).unwrap();
        assert!(tr.converged);
        assert!(tr.temperature.iter().all(|&t| (t - 300.0).abs() < 1e-9));
        assert!(sol.field_power.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn invalid_dirichlet_rejected() {
        let mut model = bar_model(1e-3);
        model.set_electric_potential(&[usize::MAX], 0.0);
        assert!(Simulator::new(&model, SolverOptions::default()).is_err());
    }

    #[test]
    fn stationary_without_anchor_is_rejected() {
        let mut model = bar_model(1e-3);
        model.set_thermal_boundary(ThermalBoundary::adiabatic());
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        assert!(matches!(
            sim.solve_stationary(),
            Err(CoreError::InvalidModel(_))
        ));
    }

    #[test]
    fn invalid_step_size_rejected() {
        let model = bar_model(1e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let t0 = sim.initial_temperature();
        let mut phi = vec![0.0; sim.layout().n_total()];
        assert!(sim.step(&t0, 0.0, &mut phi, 0).is_err());
        assert!(sim.step(&t0, f64::NAN, &mut phi, 0).is_err());
    }

    #[test]
    fn snapshots_are_recorded_at_requested_times() {
        let model = bar_model(1e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let sol = sim.run_transient(10.0, 10, &[0.0, 5.0, 10.0]).unwrap();
        assert_eq!(sol.snapshots.len(), 3);
        assert_eq!(sol.snapshots[0].0, 0.0);
        assert_eq!(sol.snapshots[1].0, 5.0);
        assert_eq!(sol.snapshots[2].0, 10.0);
        assert_eq!(sol.times.len(), 11);
    }
}
