//! The coupled solver: assembly, Picard iteration, implicit Euler stepping.

use crate::error::CoreError;
use crate::layout::DofLayout;
use crate::model::ElectrothermalModel;
use crate::options::{JouleScheme, PrecondKind, SolverOptions};
use crate::solution::TransientSolution;
use etherm_bondwire::stamp::{stamp_wire, wire_joule_heat, WirePhysics};
use etherm_fit::matrices::{
    cell_property_into, cell_temperatures_into, node_capacitance_diagonal,
    edge_material_diagonal_into, Property,
};
use etherm_fit::{CachedStamper, DofMap};
use etherm_numerics::solvers::{
    pcg_with, AmgOptions, AmgPrecond, AmgSmoother, CgOptions, IdentityPrecond,
    IncompleteCholesky, JacobiPrecond, KrylovWorkspace, Preconditioner, SolveReport, Ssor,
};
use etherm_numerics::sparse::{Csr, ParSpmv};
use etherm_numerics::{vector, NumericsError};
use std::cell::RefCell;

/// A cached preconditioner of the kind selected in
/// [`SolverOptions::preconditioner`], refreshable in place over the frozen
/// assembly pattern.
#[derive(Debug)]
enum CachedPrecond {
    Identity(IdentityPrecond),
    Jacobi(JacobiPrecond),
    Ic(IncompleteCholesky),
    Ssor(Ssor),
    Amg(Box<AmgPrecond>),
}

impl CachedPrecond {
    fn build(options: &SolverOptions, a: &Csr) -> Result<Self, NumericsError> {
        Ok(match options.preconditioner {
            PrecondKind::None => CachedPrecond::Identity(IdentityPrecond::new(a.n_rows())),
            PrecondKind::Jacobi => CachedPrecond::Jacobi(JacobiPrecond::new(a)?),
            PrecondKind::Ic(level) => CachedPrecond::Ic(IncompleteCholesky::with_fill_drop(
                a,
                level,
                options.precond_droptol,
            )?),
            PrecondKind::Ssor(omega) => CachedPrecond::Ssor(Ssor::new(a, omega)?),
            PrecondKind::Amg { theta, omega } => CachedPrecond::Amg(Box::new(AmgPrecond::new(
                a,
                AmgOptions {
                    strength_theta: theta,
                    smoother: AmgSmoother::Ssor { omega, sweeps: 1 },
                    n_threads: options.n_threads,
                    ..AmgOptions::default()
                },
            )?)),
        })
    }

    fn refresh(&mut self, a: &Csr) -> Result<(), NumericsError> {
        match self {
            CachedPrecond::Identity(_) => Ok(()),
            CachedPrecond::Jacobi(p) => p.refresh(a),
            CachedPrecond::Ic(p) => p.refresh(a),
            CachedPrecond::Ssor(p) => p.refresh(a),
            CachedPrecond::Amg(p) => p.refresh(a),
        }
    }

    /// Coarsest-level dimension of an AMG hierarchy (`None` otherwise).
    fn coarse_dim(&self) -> Option<usize> {
        match self {
            CachedPrecond::Amg(p) => Some(p.coarse_dim()),
            _ => None,
        }
    }
}

impl Preconditioner for CachedPrecond {
    fn dim(&self) -> usize {
        match self {
            CachedPrecond::Identity(p) => p.dim(),
            CachedPrecond::Jacobi(p) => p.dim(),
            CachedPrecond::Ic(p) => p.dim(),
            CachedPrecond::Ssor(p) => p.dim(),
            CachedPrecond::Amg(p) => p.dim(),
        }
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            CachedPrecond::Identity(p) => p.apply(r, z),
            CachedPrecond::Jacobi(p) => p.apply(r, z),
            CachedPrecond::Ic(p) => p.apply(r, z),
            CachedPrecond::Ssor(p) => p.apply(r, z),
            CachedPrecond::Amg(p) => p.apply(r, z),
        }
    }
}

/// Per-subsystem solver state: the cached preconditioner, the Krylov
/// workspace, and the bookkeeping driving the lazy refresh policy.
#[derive(Debug, Default)]
struct SubsystemCache {
    precond: Option<CachedPrecond>,
    ws: KrylovWorkspace,
    /// CG iterations of the first solve after the last (re)build — the
    /// reference for the degradation trigger.
    baseline_iters: Option<usize>,
    /// Solves since the last (re)build.
    reuses: usize,
}

impl SubsystemCache {
    fn mark_rebuilt(&mut self) {
        self.baseline_iters = None;
        self.reuses = 0;
    }
}

/// Scratch buffers reused across Picard iterates and time steps: the
/// per-iterate material averaging, heat sources and reduced unknowns run
/// allocation-free after the first iterate.
#[derive(Debug, Default)]
struct Scratch {
    /// Per-cell mean temperature.
    cell_t: Vec<f64>,
    /// Per-cell electrical conductivity at the lagged temperature.
    cell_sigma: Vec<f64>,
    /// Edge conductance diagonal `Mσ`.
    m_sigma: Vec<f64>,
    /// Per-cell thermal conductivity at the lagged temperature.
    cell_lambda: Vec<f64>,
    /// Edge conductance diagonal `Mλ`.
    m_lambda: Vec<f64>,
    /// Heat sources, full numbering (W per DoF).
    q: Vec<f64>,
    /// Reduced unknowns of the current linear solve.
    x_red: Vec<f64>,
    /// Joule power per wire (W), refreshed every heat-source evaluation.
    wire_powers: Vec<f64>,
    /// Lagged Picard temperature (full numbering).
    t_star: Vec<f64>,
    /// Next Picard temperature (full numbering).
    t_new: Vec<f64>,
    /// Start state of the previous transient step (for the extrapolated CG
    /// initial guess of the first thermal solve of a step).
    t_hist: Vec<f64>,
    /// Extrapolated CG initial guess `2·t_prev − t_hist`.
    t_guess: Vec<f64>,
    /// Step size of the previous transient step (predictor validity check).
    last_dt: f64,
}

/// The three independently cached linear subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Subsystem {
    Electrical,
    ThermalTransient,
    ThermalStationary,
}

impl Subsystem {
    fn name(self) -> &'static str {
        match self {
            Subsystem::Electrical => "electrical",
            Subsystem::ThermalTransient | Subsystem::ThermalStationary => "thermal",
        }
    }
}

/// Result of one implicit-Euler step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Full temperature vector after the step (K).
    pub temperature: Vec<f64>,
    /// Full potential vector at the end of the step (V).
    pub potential: Vec<f64>,
    /// Picard iterations used.
    pub picard_iterations: usize,
    /// Inner CG iterations used (electrical + thermal).
    pub linear_iterations: usize,
    /// Whether the Picard loop met its tolerance.
    pub converged: bool,
    /// Joule power per wire (W).
    pub wire_powers: Vec<f64>,
    /// Total field Joule power (W).
    pub field_power: f64,
}

/// Result of a stationary (steady-state) solve.
#[derive(Debug, Clone)]
pub struct StationaryResult {
    /// Full temperature vector (K).
    pub temperature: Vec<f64>,
    /// Full potential vector (V).
    pub potential: Vec<f64>,
    /// Picard iterations used.
    pub picard_iterations: usize,
    /// Whether the outer iteration converged.
    pub converged: bool,
    /// Joule power per wire (W).
    pub wire_powers: Vec<f64>,
    /// Total field Joule power (W).
    pub field_power: f64,
}

/// Cumulative iteration counters per subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveCounters {
    /// CG iterations spent in electrical solves.
    pub electrical_iterations: usize,
    /// Number of electrical solves.
    pub electrical_solves: usize,
    /// CG iterations spent in thermal solves.
    pub thermal_iterations: usize,
    /// Number of thermal solves.
    pub thermal_solves: usize,
    /// Preconditioner (re)builds and in-place refreshes, all subsystems.
    pub precond_rebuilds: usize,
    /// Solves that reused a cached preconditioner unchanged.
    pub precond_reuses: usize,
    /// Largest coarsest-level dimension any AMG hierarchy reached (0 when
    /// no AMG preconditioner was built).
    pub peak_coarse_dim: usize,
}

/// Assembles and solves the coupled electrothermal system for one model.
///
/// Construction precomputes everything temperature-independent (DoF layout,
/// Dirichlet maps, heat-capacity diagonal); the per-step work lags the
/// temperature-dependent coefficients in a Picard loop, so every inner
/// system is symmetric positive definite and solved by preconditioned CG.
#[derive(Debug)]
pub struct Simulator<'m> {
    model: &'m ElectrothermalModel,
    layout: DofLayout,
    elec_map: DofMap,
    therm_map: DofMap,
    /// Heat capacity per DoF (J/K), full numbering.
    mass_diag: Vec<f64>,
    options: SolverOptions,
    /// Pattern-cached assemblies (the stamping sequences are deterministic,
    /// so the CSR patterns are recorded once and values refilled in place).
    /// Cumulative per-system iteration counters (diagnostics).
    counters: RefCell<SolveCounters>,
    elec_cache: RefCell<CachedStamper>,
    /// Transient thermal assembly (with mass stamps).
    therm_cache: RefCell<CachedStamper>,
    /// Stationary thermal assembly (no mass stamps — different pattern
    /// sequence, hence its own cache).
    therm_cache_stationary: RefCell<CachedStamper>,
    /// Per-subsystem cached preconditioner + Krylov workspace; the patterns
    /// of the three reduced systems are frozen, so each cache refreshes in
    /// place and the solves are allocation-free after warm-up.
    elec_solver: RefCell<SubsystemCache>,
    therm_solver: RefCell<SubsystemCache>,
    therm_solver_stationary: RefCell<SubsystemCache>,
    /// Reusable per-Picard-iterate buffers.
    scratch: RefCell<Scratch>,
}

impl<'m> Simulator<'m> {
    /// Prepares a simulator for the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for inconsistent constraints
    /// (e.g. out-of-range Dirichlet nodes).
    pub fn new(model: &'m ElectrothermalModel, options: SolverOptions) -> Result<Self, CoreError> {
        let n_grid = model.grid().n_nodes();
        let wires: Vec<_> = model
            .wires()
            .iter()
            .map(|w| (&w.wire, w.node_a, w.node_b))
            .collect();
        let layout = DofLayout::new(n_grid, &wires);
        for &(n, _) in model.electric_dirichlet() {
            if n >= n_grid {
                return Err(CoreError::InvalidModel(format!(
                    "electric Dirichlet node {n} out of range"
                )));
            }
        }
        for &(n, _) in model.thermal_dirichlet() {
            if n >= n_grid {
                return Err(CoreError::InvalidModel(format!(
                    "thermal Dirichlet node {n} out of range"
                )));
            }
        }
        let elec_map = DofMap::new(layout.n_total(), model.electric_dirichlet());
        let therm_map = DofMap::new(layout.n_total(), model.thermal_dirichlet());

        let mut mass_diag =
            node_capacitance_diagonal(model.grid(), model.paint(), model.materials());
        mass_diag.resize(layout.n_total(), 0.0);
        if options.wire_heat_capacity {
            for (j, att) in model.wires().iter().enumerate() {
                let topo = layout.topology(j);
                if topo.n_internal() == 0 {
                    continue;
                }
                let seg_capacity = att.wire.heat_capacity() / att.wire.segments() as f64;
                for i in 0..topo.n_internal() {
                    mass_diag[topo.internal_offset + i] = seg_capacity;
                }
            }
        }

        let counters = RefCell::new(SolveCounters::default());
        let elec_cache = RefCell::new(CachedStamper::new(&elec_map));
        let therm_cache = RefCell::new(CachedStamper::new(&therm_map));
        let therm_cache_stationary = RefCell::new(CachedStamper::new(&therm_map));
        Ok(Simulator {
            model,
            layout,
            elec_map,
            therm_map,
            mass_diag,
            options,
            counters,
            elec_cache,
            therm_cache,
            therm_cache_stationary,
            elec_solver: RefCell::new(SubsystemCache::default()),
            therm_solver: RefCell::new(SubsystemCache::default()),
            therm_solver_stationary: RefCell::new(SubsystemCache::default()),
            scratch: RefCell::new(Scratch::default()),
        })
    }

    /// The DoF layout (grid + wire internal DoFs).
    pub fn layout(&self) -> &DofLayout {
        &self.layout
    }

    /// The solver options in use.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Snapshot of the cumulative per-system iteration counters.
    pub fn counters(&self) -> SolveCounters {
        *self.counters.borrow()
    }

    /// Initial full state: everything at the ambient temperature, wire
    /// internals interpolated.
    pub fn initial_temperature(&self) -> Vec<f64> {
        let mut t = vec![self.model.ambient(); self.layout.n_total()];
        for &(n, value) in self.model.thermal_dirichlet() {
            t[n] = value;
        }
        self.layout.interpolate_wire_internals(&mut t);
        t
    }

    /// Refreshes `cache`'s preconditioner in place from `a`, falling back to
    /// a full rebuild when the refresh fails (pattern change or numeric
    /// breakdown with every shift).
    fn refresh_or_rebuild(
        &self,
        cache: &mut SubsystemCache,
        a: &Csr,
    ) -> Result<(), NumericsError> {
        let p = cache.precond.as_mut().expect("preconditioner present");
        if p.refresh(a).is_err() {
            *p = CachedPrecond::build(&self.options, a)?;
        }
        let coarse_dim = p.coarse_dim();
        cache.mark_rebuilt();
        let mut c = self.counters.borrow_mut();
        c.precond_rebuilds += 1;
        if let Some(nc) = coarse_dim {
            c.peak_coarse_dim = c.peak_coarse_dim.max(nc);
        }
        Ok(())
    }

    /// Solves one reduced SPD system with the subsystem's cached
    /// preconditioner and workspace.
    ///
    /// Lazy-refresh policy: the factorization is reused until either (a) it
    /// has served [`SolverOptions::precond_max_reuses`] solves, or (b) a
    /// converged solve needs more than [`SolverOptions::precond_refresh_factor`]
    /// times the iterations of the first solve after the last (re)build —
    /// then it is refreshed in place over the frozen pattern. A
    /// non-converged solve with a stale factorization triggers an immediate
    /// refresh and one retry before the failure is reported.
    fn solve_reduced(
        &self,
        system: Subsystem,
        a: &Csr,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<usize, CoreError> {
        let cell = match system {
            Subsystem::Electrical => &self.elec_solver,
            Subsystem::ThermalTransient => &self.therm_solver,
            Subsystem::ThermalStationary => &self.therm_solver_stationary,
        };
        let cache = &mut *cell.borrow_mut();
        let opts: CgOptions = self.options.linear;

        let mut fresh = match &mut cache.precond {
            slot @ None => {
                let built = CachedPrecond::build(&self.options, a)?;
                let mut c = self.counters.borrow_mut();
                c.precond_rebuilds += 1;
                if let Some(nc) = built.coarse_dim() {
                    c.peak_coarse_dim = c.peak_coarse_dim.max(nc);
                }
                drop(c);
                *slot = Some(built);
                cache.mark_rebuilt();
                true
            }
            Some(_) if cache.reuses >= self.options.precond_max_reuses => {
                self.refresh_or_rebuild(cache, a)?;
                true
            }
            Some(_) => false,
        };
        if !fresh {
            cache.reuses += 1;
            self.counters.borrow_mut().precond_reuses += 1;
        }

        let run = |cache: &mut SubsystemCache, x: &mut [f64]| -> Result<SolveReport, NumericsError> {
            let p = cache.precond.as_ref().expect("preconditioner present");
            if self.options.n_threads > 1 {
                let op = ParSpmv::new(a, self.options.n_threads);
                pcg_with(&op, b, x, p, &opts, &mut cache.ws)
            } else {
                pcg_with(a, b, x, p, &opts, &mut cache.ws)
            }
        };

        let mut report = run(cache, x)?;
        if !report.converged && !fresh {
            // A stale factorization can genuinely stall CG; retry once with
            // current values before declaring failure.
            self.refresh_or_rebuild(cache, a)?;
            fresh = true;
            report = run(cache, x)?;
        }
        if !report.converged {
            return Err(CoreError::LinearSolveFailed {
                system: system.name(),
                iterations: report.iterations,
                residual: report.residual,
            });
        }

        {
            let mut c = self.counters.borrow_mut();
            if system == Subsystem::Electrical {
                c.electrical_iterations += report.iterations;
                c.electrical_solves += 1;
            } else {
                c.thermal_iterations += report.iterations;
                c.thermal_solves += 1;
            }
        }

        match cache.baseline_iters {
            None => cache.baseline_iters = Some(report.iterations.max(1)),
            Some(base) => {
                let degraded = report.iterations as f64
                    > self.options.precond_refresh_factor * base as f64;
                if degraded && !fresh {
                    // Refresh eagerly so the *next* solve starts from
                    // current values.
                    self.refresh_or_rebuild(cache, a)?;
                }
            }
        }
        Ok(report.iterations)
    }

    /// Solves the electrical subsystem at the lagged temperature
    /// `scratch.t_star`. `phi_warm` (full numbering) is used as the initial
    /// guess and updated in place with the solution — no per-iterate clone.
    /// The lagged conductivities stay behind in `scratch.cell_sigma` /
    /// `scratch.m_sigma` for the heat-source evaluation.
    fn solve_electrical(
        &self,
        phi_warm: &mut [f64],
        s: &mut Scratch,
    ) -> Result<usize, CoreError> {
        let grid = self.model.grid();
        let t_grid = &s.t_star[..grid.n_nodes()];
        cell_temperatures_into(grid, t_grid, &mut s.cell_t);
        cell_property_into(
            grid,
            self.model.paint(),
            self.model.materials(),
            &s.cell_t,
            Property::Electrical,
            &mut s.cell_sigma,
        );
        edge_material_diagonal_into(grid, &s.cell_sigma, &mut s.m_sigma);

        if self.model.electric_dirichlet().is_empty() {
            // No drive: the potential is identically zero.
            phi_warm.fill(0.0);
            return Ok(0);
        }

        let mut stamper = self.elec_cache.borrow_mut();
        stamper.begin();
        for e in 0..grid.n_edges() {
            let (a, b) = grid.edge_endpoints(e);
            stamper.add_conductance(a, b, s.m_sigma[e]);
        }
        for (j, att) in self.model.wires().iter().enumerate() {
            stamp_wire(
                &att.wire,
                self.layout.topology(j),
                &s.t_star,
                WirePhysics::Electrical,
                &mut *stamper,
            );
        }
        let (a, b) = stamper.finish();
        self.elec_map.restrict_into(phi_warm, &mut s.x_red);
        let iterations = self.solve_reduced(Subsystem::Electrical, a, b, &mut s.x_red)?;
        self.elec_map.expand_into(&s.x_red, phi_warm);
        Ok(iterations)
    }

    /// Heat sources (W per DoF) from field Joule heating and wire
    /// self-heating into `scratch.q` / `scratch.wire_powers`; returns the
    /// total field Joule power. Uses the conductivities left in scratch by
    /// the last electrical solve and the potential in `phi`.
    fn heat_sources(&self, phi: &[f64], s: &mut Scratch) -> f64 {
        let grid = self.model.grid();
        let phi_grid = &phi[..grid.n_nodes()];
        // Nodal field heat into the grid prefix of q, then extend with zeros
        // for the wire-internal DoFs.
        match self.options.joule {
            JouleScheme::CellBased => etherm_fit::joule::joule_heat_cell_based_into(
                grid,
                &s.cell_sigma,
                phi_grid,
                &mut s.q,
            ),
            JouleScheme::EdgeBased => etherm_fit::joule::joule_heat_edge_based_into(
                grid,
                &s.m_sigma,
                phi_grid,
                &mut s.q,
            ),
        }
        let field_power: f64 = vector::sum(&s.q);
        s.q.resize(self.layout.n_total(), 0.0);
        s.wire_powers.clear();
        for (j, att) in self.model.wires().iter().enumerate() {
            let p = wire_joule_heat(
                &att.wire,
                self.layout.topology(j),
                &s.t_star,
                phi,
                &mut s.q,
            );
            s.wire_powers.push(p);
        }
        field_power
    }

    /// Assembles and solves the thermal system for one Picard iterate at the
    /// lagged temperature `scratch.t_star`, writing the new temperature to
    /// `scratch.t_new`.
    ///
    /// `dt = None` means stationary (no mass term); `t_prev` is the previous
    /// time level (ignored when stationary).
    fn solve_thermal(
        &self,
        t_prev: &[f64],
        dt: Option<f64>,
        use_predictor: bool,
        s: &mut Scratch,
    ) -> Result<usize, CoreError> {
        let grid = self.model.grid();
        let t_grid = &s.t_star[..grid.n_nodes()];
        cell_temperatures_into(grid, t_grid, &mut s.cell_t);
        cell_property_into(
            grid,
            self.model.paint(),
            self.model.materials(),
            &s.cell_t,
            Property::Thermal,
            &mut s.cell_lambda,
        );
        edge_material_diagonal_into(grid, &s.cell_lambda, &mut s.m_lambda);

        let (mut stamper, system) = if dt.is_some() {
            (self.therm_cache.borrow_mut(), Subsystem::ThermalTransient)
        } else {
            (
                self.therm_cache_stationary.borrow_mut(),
                Subsystem::ThermalStationary,
            )
        };
        stamper.begin();
        for e in 0..grid.n_edges() {
            let (a, b) = grid.edge_endpoints(e);
            stamper.add_conductance(a, b, s.m_lambda[e]);
        }
        for (j, att) in self.model.wires().iter().enumerate() {
            stamp_wire(
                &att.wire,
                self.layout.topology(j),
                &s.t_star,
                WirePhysics::Thermal,
                &mut *stamper,
            );
        }
        self.model
            .thermal_boundary()
            .stamp(grid, &s.t_star[..grid.n_nodes()], &mut *stamper);
        if let Some(dt) = dt {
            for i in 0..self.layout.n_total() {
                let m = self.mass_diag[i] / dt;
                if m != 0.0 {
                    stamper.add_diag(i, m);
                    stamper.add_rhs(i, m * t_prev[i]);
                }
            }
        }
        for (i, &qi) in s.q.iter().enumerate() {
            if qi != 0.0 {
                stamper.add_rhs(i, qi);
            }
        }
        let (a, b) = stamper.finish();
        // CG initial guess: the lagged temperature, or — for the first
        // Picard iterate of a continuation step — the linear extrapolation
        // from the previous step (a guess only affects iteration counts,
        // never the converged solution).
        if use_predictor {
            self.therm_map.restrict_into(&s.t_guess, &mut s.x_red);
        } else {
            self.therm_map.restrict_into(&s.t_star, &mut s.x_red);
        }
        let iterations = self.solve_reduced(system, a, b, &mut s.x_red)?;
        s.t_new.resize(self.layout.n_total(), 0.0);
        self.therm_map.expand_into(&s.x_red, &mut s.t_new);
        Ok(iterations)
    }

    /// Performs one implicit-Euler step of size `dt` from the full state
    /// `t_prev`, warm-starting the electrical solve from `phi_warm`.
    ///
    /// # Errors
    ///
    /// Returns solver failures; a stalled Picard loop is an error only with
    /// [`SolverOptions::strict_picard`].
    pub fn step(
        &self,
        t_prev: &[f64],
        dt: f64,
        phi_warm: &mut [f64],
        step_index: usize,
    ) -> Result<StepResult, CoreError> {
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(CoreError::InvalidModel(format!("invalid time step {dt}")));
        }
        self.coupled_solve(t_prev, Some(dt), phi_warm, step_index)
    }

    /// Solves the stationary coupled problem (steady state).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] if neither a thermal boundary nor
    /// thermal Dirichlet nodes anchor the temperature (singular system).
    pub fn solve_stationary(&self) -> Result<StationaryResult, CoreError> {
        if !self.model.thermal_boundary().is_active()
            && self.model.thermal_dirichlet().is_empty()
        {
            return Err(CoreError::InvalidModel(
                "stationary solve needs an active thermal boundary or fixed temperatures".into(),
            ));
        }
        let t0 = self.initial_temperature();
        let mut phi = vec![0.0; self.layout.n_total()];
        let r = self.coupled_solve(&t0, None, &mut phi, 0)?;
        Ok(StationaryResult {
            temperature: r.temperature,
            potential: r.potential,
            picard_iterations: r.picard_iterations,
            converged: r.converged,
            wire_powers: r.wire_powers,
            field_power: r.field_power,
        })
    }

    fn coupled_solve(
        &self,
        t_prev: &[f64],
        dt: Option<f64>,
        phi_warm: &mut [f64],
        step_index: usize,
    ) -> Result<StepResult, CoreError> {
        assert_eq!(t_prev.len(), self.layout.n_total(), "state length");
        let s = &mut *self.scratch.borrow_mut();
        s.t_star.clear();
        s.t_star.extend_from_slice(t_prev);
        // Extrapolated thermal guess for the first Picard iterate when this
        // step continues the previous one with the same step size.
        let predict = match dt {
            Some(d) => s.t_hist.len() == t_prev.len() && s.last_dt == d,
            None => false,
        };
        if predict {
            s.t_guess.clear();
            s.t_guess
                .extend(t_prev.iter().zip(&s.t_hist).map(|(&a, &b)| 2.0 * a - b));
        }
        let mut linear_total = 0usize;
        let mut field_power = 0.0;
        let mut converged = false;
        let mut iterations = 0usize;
        let mut update = f64::INFINITY;

        let mut elec_solved = false;
        for k in 1..=self.options.picard_max_iter {
            iterations = k;
            if !elec_solved || self.options.resolve_electrical_every_picard {
                linear_total += self.solve_electrical(phi_warm, s)?;
                elec_solved = true;
            }
            field_power = self.heat_sources(phi_warm, s);
            linear_total += self.solve_thermal(t_prev, dt, predict && k == 1, s)?;
            update = vector::rel_diff2(&s.t_new, &s.t_star, 1e-9);
            std::mem::swap(&mut s.t_star, &mut s.t_new);
            if update <= self.options.picard_tol {
                converged = true;
                break;
            }
        }
        if !converged && self.options.strict_picard {
            return Err(CoreError::PicardNotConverged {
                step: step_index,
                update,
            });
        }
        if let Some(d) = dt {
            s.t_hist.clear();
            s.t_hist.extend_from_slice(t_prev);
            s.last_dt = d;
        }
        Ok(StepResult {
            temperature: s.t_star.clone(),
            potential: phi_warm.to_vec(),
            picard_iterations: iterations,
            linear_iterations: linear_total,
            converged,
            wire_powers: s.wire_powers.clone(),
            field_power,
        })
    }

    /// Runs the implicit-Euler transient over `[0, t_end]` with `n_steps`
    /// equal steps (the paper: 50 s, 51 time points → 50 steps), recording
    /// full-field snapshots at the requested times (matched to the nearest
    /// step).
    ///
    /// # Errors
    ///
    /// Propagates step failures.
    ///
    /// # Panics
    ///
    /// Panics if `n_steps == 0` or `t_end ≤ 0`.
    pub fn run_transient(
        &self,
        t_end: f64,
        n_steps: usize,
        snapshot_times: &[f64],
    ) -> Result<TransientSolution, CoreError> {
        assert!(n_steps > 0, "need at least one step");
        assert!(t_end > 0.0, "end time must be positive");
        let dt = t_end / n_steps as f64;
        let n_wires = self.model.wires().len();

        // Map snapshot times to step indices.
        let snap_indices: Vec<usize> = snapshot_times
            .iter()
            .map(|&t| ((t / dt).round() as usize).min(n_steps))
            .collect();

        // Invalidate the extrapolation history of any previous transient:
        // the first step of this run must not extrapolate across runs.
        {
            let mut s = self.scratch.borrow_mut();
            s.t_hist.clear();
            s.last_dt = 0.0;
        }
        let mut t_state = self.initial_temperature();
        let mut phi = vec![0.0; self.layout.n_total()];
        let mut solution = TransientSolution {
            times: Vec::with_capacity(n_steps + 1),
            wire_temperatures: vec![Vec::with_capacity(n_steps + 1); n_wires],
            wire_powers: vec![Vec::with_capacity(n_steps + 1); n_wires],
            field_power: Vec::with_capacity(n_steps + 1),
            picard_iterations: Vec::with_capacity(n_steps),
            linear_iterations: 0,
            snapshots: Vec::new(),
        };

        let record = |sol: &mut TransientSolution,
                      time: f64,
                      state: &[f64],
                      powers: &[f64],
                      fp: f64,
                      layout: &DofLayout| {
            sol.times.push(time);
            for j in 0..n_wires {
                sol.wire_temperatures[j].push(layout.topology(j).average_temperature(state));
                sol.wire_powers[j].push(powers.get(j).copied().unwrap_or(0.0));
            }
            sol.field_power.push(fp);
        };

        record(&mut solution, 0.0, &t_state, &vec![0.0; n_wires], 0.0, &self.layout);
        if snap_indices.contains(&0) {
            solution.snapshots.push((0.0, t_state.clone()));
        }

        for step in 1..=n_steps {
            let result = self.step(&t_state, dt, &mut phi, step)?;
            t_state = result.temperature;
            let time = dt * step as f64;
            record(
                &mut solution,
                time,
                &t_state,
                &result.wire_powers,
                result.field_power,
                &self.layout,
            );
            solution.picard_iterations.push(result.picard_iterations);
            solution.linear_iterations += result.linear_iterations;
            if snap_indices.contains(&step) {
                solution.snapshots.push((time, t_state.clone()));
            }
        }
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_bondwire::BondWire;
    use etherm_fit::boundary::ThermalBoundary;
    use etherm_grid::{Axis, BoxRegion, CellPaint, Grid3, MaterialId};
    use etherm_materials::{library, Material, MaterialTable, TemperatureModel};

    /// A copper bar 1 × 0.1 × 0.1 mm, 4×1×1 cells, driven by ±V on its ends.
    fn bar_model(v: f64) -> ElectrothermalModel {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1e-3, 4).unwrap(),
            Axis::uniform(0.0, 1e-4, 1).unwrap(),
            Axis::uniform(0.0, 1e-4, 1).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(Material::new(
            "linear copper",
            TemperatureModel::Constant(5.8e7),
            TemperatureModel::Constant(398.0),
            3.45e6,
        ));
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let left = model.model_nodes_at_x(0.0);
        let right = model.model_nodes_at_x(1e-3);
        model.set_electric_potential(&left, v);
        model.set_electric_potential(&right, 0.0);
        model.set_thermal_boundary(ThermalBoundary::convective(1000.0, 300.0));
        model
    }

    // Small helper on the model for tests.
    trait NodesAtX {
        fn model_nodes_at_x(&self, x: f64) -> Vec<usize>;
    }
    impl NodesAtX for ElectrothermalModel {
        fn model_nodes_at_x(&self, x: f64) -> Vec<usize> {
            (0..self.grid().n_nodes())
                .filter(|&n| (self.grid().node_position(n).0 - x).abs() < 1e-12)
                .collect()
        }
    }

    #[test]
    fn electrical_bar_resistance() {
        // R = L/(σA) = 1e-3/(5.8e7·1e-8) = 1.724 mΩ; with V = 1 mV the
        // dissipated power is V²/R ≈ 0.58 mW.
        let model = bar_model(1e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let t0 = sim.initial_temperature();
        let mut phi = vec![0.0; sim.layout().n_total()];
        let s = &mut *sim.scratch.borrow_mut();
        s.t_star.clear();
        s.t_star.extend_from_slice(&t0);
        sim.solve_electrical(&mut phi, s).unwrap();
        // Potential is linear in x.
        let grid = model.grid();
        for n in 0..grid.n_nodes() {
            let x = grid.node_position(n).0;
            let expect = 1e-3 * (1.0 - x / 1e-3);
            assert!((phi[n] - expect).abs() < 1e-9, "node {n}");
        }
        let fp = sim.heat_sources(&phi, s);
        let r = 1e-3 / (5.8e7 * 1e-8);
        let expect_p = 1e-6 / r;
        assert!((fp - expect_p).abs() < 1e-6 * expect_p, "{fp} vs {expect_p}");
    }

    #[test]
    fn stationary_energy_balance() {
        // In steady state, dissipated power equals boundary outflow.
        let model = bar_model(1e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let st = sim.solve_stationary().unwrap();
        assert!(st.converged);
        let out = model
            .thermal_boundary()
            .outgoing_power(model.grid(), &st.temperature[..model.grid().n_nodes()]);
        let total_in = st.field_power + st.wire_powers.iter().sum::<f64>();
        assert!(
            (out - total_in).abs() < 2e-2 * total_in,
            "in {total_in} vs out {out}"
        );
        // The bar is warmer than ambient everywhere.
        assert!(st.temperature.iter().all(|&t| t > 300.0 - 1e-9));
    }

    #[test]
    fn transient_approaches_stationary() {
        let model = bar_model(1e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let st = sim.solve_stationary().unwrap();
        let tr = sim.run_transient(50.0, 50, &[]).unwrap();
        // Grid temperatures at the last step vs stationary.
        let last = tr.times.len() - 1;
        assert!(tr.times[last] == 50.0);
        // Compare the mean grid temperature (bar equilibrates in ≪ 50 s).
        let n = model.grid().n_nodes();
        let mean_tr: f64 = 0.0; // placeholder replaced below
        let _ = mean_tr;
        // Use a snapshot to compare fields.
        let tr2 = sim.run_transient(50.0, 50, &[50.0]).unwrap();
        let (_, t_final) = &tr2.snapshots[0];
        let diff = vector::max_abs_diff(&t_final[..n], &st.temperature[..n]);
        assert!(diff < 0.5, "transient did not settle: {diff}");
        // Temperatures rise monotonically toward the steady state.
        assert!(tr.field_power[last] > 0.0);
    }

    #[test]
    fn wire_between_blocks_heats_up() {
        // Two copper pads in epoxy connected only by a bond wire; driving a
        // voltage across the pads forces all current through the wire.
        let grid = Grid3::new(
            Axis::from_coords(vec![0.0, 0.5e-3, 1.0e-3, 1.5e-3, 2.0e-3]).unwrap(),
            Axis::uniform(0.0, 0.5e-3, 2).unwrap(),
            Axis::uniform(0.0, 0.25e-3, 1).unwrap(),
        );
        let mut paint = CellPaint::new(&grid, MaterialId(0));
        paint.paint(
            &grid,
            &BoxRegion::new((0.0, 0.0, 0.0), (0.5e-3, 0.5e-3, 0.25e-3)),
            MaterialId(1),
        );
        paint.paint(
            &grid,
            &BoxRegion::new((1.5e-3, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3)),
            MaterialId(1),
        );
        let mut materials = MaterialTable::new();
        materials.add(library::epoxy_resin());
        materials.add(library::copper());
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let wire = BondWire::new("w1", 1.55e-3, 25.4e-6, library::copper()).unwrap();
        model
            .add_wire(wire, (0.5e-3, 0.25e-3, 0.25e-3), (1.5e-3, 0.25e-3, 0.25e-3))
            .unwrap();
        // PEC at outer pad ends.
        let left: Vec<usize> = (0..model.grid().n_nodes())
            .filter(|&n| model.grid().node_position(n).0 == 0.0)
            .collect();
        let right: Vec<usize> = (0..model.grid().n_nodes())
            .filter(|&n| (model.grid().node_position(n).0 - 2.0e-3).abs() < 1e-12)
            .collect();
        model.set_electric_potential(&left, 0.02);
        model.set_electric_potential(&right, -0.02);

        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let sol = sim.run_transient(50.0, 25, &[]).unwrap();
        let series = sol.wire_series(0);
        // Wire heats up monotonically (until near equilibrium) and ends warm.
        assert!(series[0] == 300.0);
        assert!(
            series.last().unwrap() > &320.0,
            "wire only reached {} K",
            series.last().unwrap()
        );
        // Wire power is positive and current is substantial.
        let p_wire = sol.wire_powers[0].last().unwrap();
        assert!(*p_wire > 0.0);
        // Energy: wire dominates dissipation (pads are far thicker).
        let fp = sol.field_power.last().unwrap();
        assert!(p_wire > fp, "wire {p_wire} vs field {fp}");
    }

    #[test]
    fn amg_reproduces_ic_physics() {
        // The preconditioner choice may change iteration counts, never the
        // converged temperatures.
        let model = bar_model(1e-3);
        let sim_ic = Simulator::new(&model, SolverOptions::default()).unwrap();
        let amg_options = SolverOptions {
            preconditioner: PrecondKind::amg(),
            ..SolverOptions::default()
        };
        let sim_amg = Simulator::new(&model, amg_options).unwrap();
        let sol_ic = sim_ic.run_transient(10.0, 10, &[10.0]).unwrap();
        let sol_amg = sim_amg.run_transient(10.0, 10, &[10.0]).unwrap();
        let (_, t_ic) = &sol_ic.snapshots[0];
        let (_, t_amg) = &sol_amg.snapshots[0];
        let diff = vector::max_abs_diff(t_ic, t_amg);
        assert!(diff < 1e-6, "AMG changed the physics by {diff} K");
        let c = sim_amg.counters();
        assert!(c.peak_coarse_dim > 0, "AMG coarse level not recorded");
        assert_eq!(sim_ic.counters().peak_coarse_dim, 0);
    }

    #[test]
    fn no_drive_stays_at_ambient() {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(library::epoxy_resin());
        let model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let sol = sim.run_transient(10.0, 5, &[]).unwrap();
        // Nothing drives the system: stays at 300 K, one Picard iteration.
        let t_end = sim.initial_temperature();
        let tr = sim.step(&t_end, 1.0, &mut vec![0.0; sim.layout().n_total()], 1).unwrap();
        assert!(tr.converged);
        assert!(tr.temperature.iter().all(|&t| (t - 300.0).abs() < 1e-9));
        assert!(sol.field_power.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn invalid_dirichlet_rejected() {
        let mut model = bar_model(1e-3);
        model.set_electric_potential(&[usize::MAX], 0.0);
        assert!(Simulator::new(&model, SolverOptions::default()).is_err());
    }

    #[test]
    fn stationary_without_anchor_is_rejected() {
        let mut model = bar_model(1e-3);
        model.set_thermal_boundary(ThermalBoundary::adiabatic());
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        assert!(matches!(
            sim.solve_stationary(),
            Err(CoreError::InvalidModel(_))
        ));
    }

    #[test]
    fn invalid_step_size_rejected() {
        let model = bar_model(1e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let t0 = sim.initial_temperature();
        let mut phi = vec![0.0; sim.layout().n_total()];
        assert!(sim.step(&t0, 0.0, &mut phi, 0).is_err());
        assert!(sim.step(&t0, f64::NAN, &mut phi, 0).is_err());
    }

    #[test]
    fn snapshots_are_recorded_at_requested_times() {
        let model = bar_model(1e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let sol = sim.run_transient(10.0, 10, &[0.0, 5.0, 10.0]).unwrap();
        assert_eq!(sol.snapshots.len(), 3);
        assert_eq!(sol.snapshots[0].0, 0.0);
        assert_eq!(sol.snapshots[1].0, 5.0);
        assert_eq!(sol.snapshots[2].0, 10.0);
        assert_eq!(sol.times.len(), 11);
    }
}
