//! Error type of the coupled solver.

use etherm_numerics::NumericsError;
use std::fmt;

/// Errors from model construction or the coupled solve.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying linear algebra failed (breakdown, dimension bug).
    Numerics(NumericsError),
    /// A linear solve hit its iteration cap.
    LinearSolveFailed {
        /// Which subsystem failed ("electrical" or "thermal").
        system: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
    /// The Picard iteration of a time step did not converge.
    PicardNotConverged {
        /// Time step index.
        step: usize,
        /// Final relative update.
        update: f64,
    },
    /// The model is inconsistent (bad wire attachment, missing material...).
    InvalidModel(String),
    /// A subsystem solve produced or received non-finite values (NaN/Inf)
    /// and the recovery ladder could not repair it.
    NonFinite {
        /// Which subsystem was contaminated ("electrical" or "thermal").
        system: &'static str,
        /// What quantity went non-finite (propagated from the solver guard).
        detail: &'static str,
    },
    /// The run exhausted its total linear-iteration budget
    /// ([`crate::RecoveryPolicy::linear_iteration_budget`]).
    BudgetExhausted {
        /// The configured budget.
        budget: usize,
        /// Iterations spent when the budget tripped.
        spent: usize,
    },
    /// A transient step failed after all recovery escalations; wraps the
    /// final underlying error with step/time context.
    StepFailed {
        /// Time step index (0-based).
        step: usize,
        /// Physical time at the *start* of the failed step, in seconds.
        time: f64,
        /// The error that ended the escalation ladder.
        source: Box<CoreError>,
    },
    /// An ensemble run aborted: one sample failed under
    /// [`crate::FailurePolicy::Abort`], or quarantine overflowed
    /// `max_failures`.
    EnsembleFailed {
        /// Lowest-index failed sample.
        sample: usize,
        /// Total failed samples observed before the abort.
        failures: usize,
        /// Samples never attempted because of the abort.
        abandoned: usize,
        /// The error of the lowest-index failed sample.
        source: Box<CoreError>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Numerics(e) => write!(f, "numerics error: {e}"),
            CoreError::LinearSolveFailed {
                system,
                iterations,
                residual,
            } => write!(
                f,
                "{system} solve failed after {iterations} iterations (residual {residual:.3e})"
            ),
            CoreError::PicardNotConverged { step, update } => write!(
                f,
                "picard iteration of step {step} stalled (relative update {update:.3e})"
            ),
            CoreError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            CoreError::NonFinite { system, detail } => {
                write!(f, "{system} solve produced a non-finite {detail}")
            }
            CoreError::BudgetExhausted { budget, spent } => write!(
                f,
                "linear iteration budget exhausted ({spent} of {budget} iterations spent)"
            ),
            CoreError::StepFailed { step, time, source } => write!(
                f,
                "step {step} (t = {time:.6e} s) failed after recovery: {source}"
            ),
            CoreError::EnsembleFailed {
                sample,
                failures,
                abandoned,
                source,
            } => write!(
                f,
                "ensemble aborted at sample {sample} ({failures} failed, {abandoned} abandoned): {source}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numerics(e) => Some(e),
            CoreError::StepFailed { source, .. } | CoreError::EnsembleFailed { source, .. } => {
                Some(source.as_ref())
            }
            _ => None,
        }
    }
}

impl From<NumericsError> for CoreError {
    fn from(e: NumericsError) -> Self {
        CoreError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(NumericsError::InvalidArgument("x".into()));
        assert!(e.to_string().contains("numerics"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::LinearSolveFailed {
            system: "thermal",
            iterations: 9,
            residual: 1.0,
        };
        assert!(e.to_string().contains("thermal"));
        let e = CoreError::PicardNotConverged {
            step: 3,
            update: 0.5,
        };
        assert!(e.to_string().contains('3'));
        let e = CoreError::InvalidModel("no wires".into());
        assert!(e.to_string().contains("no wires"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn resilience_variants_display_and_chain() {
        let e = CoreError::NonFinite {
            system: "thermal",
            detail: "residual",
        };
        assert!(e.to_string().contains("non-finite"));
        let e = CoreError::BudgetExhausted {
            budget: 100,
            spent: 120,
        };
        assert!(e.to_string().contains("budget"));
        let inner = CoreError::NonFinite {
            system: "electrical",
            detail: "residual",
        };
        let e = CoreError::StepFailed {
            step: 4,
            time: 2.5e-4,
            source: Box::new(inner.clone()),
        };
        assert!(e.to_string().contains("step 4"));
        assert!(e.to_string().contains("non-finite"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::EnsembleFailed {
            sample: 7,
            failures: 2,
            abandoned: 3,
            source: Box::new(inner),
        };
        assert!(e.to_string().contains("sample 7"));
        assert!(e.to_string().contains("abandoned"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
