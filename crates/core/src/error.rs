//! Error type of the coupled solver.

use etherm_numerics::NumericsError;
use std::fmt;

/// Errors from model construction or the coupled solve.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying linear algebra failed (breakdown, dimension bug).
    Numerics(NumericsError),
    /// A linear solve hit its iteration cap.
    LinearSolveFailed {
        /// Which subsystem failed ("electrical" or "thermal").
        system: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
    /// The Picard iteration of a time step did not converge.
    PicardNotConverged {
        /// Time step index.
        step: usize,
        /// Final relative update.
        update: f64,
    },
    /// The model is inconsistent (bad wire attachment, missing material...).
    InvalidModel(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Numerics(e) => write!(f, "numerics error: {e}"),
            CoreError::LinearSolveFailed {
                system,
                iterations,
                residual,
            } => write!(
                f,
                "{system} solve failed after {iterations} iterations (residual {residual:.3e})"
            ),
            CoreError::PicardNotConverged { step, update } => write!(
                f,
                "picard iteration of step {step} stalled (relative update {update:.3e})"
            ),
            CoreError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for CoreError {
    fn from(e: NumericsError) -> Self {
        CoreError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(NumericsError::InvalidArgument("x".into()));
        assert!(e.to_string().contains("numerics"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::LinearSolveFailed {
            system: "thermal",
            iterations: 9,
            residual: 1.0,
        };
        assert!(e.to_string().contains("thermal"));
        let e = CoreError::PicardNotConverged {
            step: 3,
            update: 0.5,
        };
        assert!(e.to_string().contains('3'));
        let e = CoreError::InvalidModel("no wires".into());
        assert!(e.to_string().contains("no wires"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
