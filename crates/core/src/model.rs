//! The electrothermal model: geometry, materials, wires and boundary
//! conditions.

use crate::error::CoreError;
use etherm_bondwire::BondWire;
use etherm_fit::boundary::ThermalBoundary;
use etherm_grid::{CellPaint, Grid3};
use etherm_materials::MaterialTable;

/// A bonding wire attached between two grid nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAttachment {
    /// The wire.
    pub wire: BondWire,
    /// Grid node of the first (chip-side) bond.
    pub node_a: usize,
    /// Grid node of the second (pad-side) bond.
    pub node_b: usize,
}

/// A complete electrothermal package model.
///
/// Build it from a conforming grid (see `etherm_grid::GridBuilder`), a
/// staircase material paint, a material table, lumped wires and boundary
/// conditions; hand it to [`crate::Simulator`] to solve.
///
/// # Example
///
/// ```
/// use etherm_core::ElectrothermalModel;
/// use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
/// use etherm_materials::{library, MaterialTable};
///
/// let grid = Grid3::new(
///     Axis::uniform(0.0, 1e-3, 4).unwrap(),
///     Axis::uniform(0.0, 1e-3, 4).unwrap(),
///     Axis::uniform(0.0, 0.5e-3, 2).unwrap(),
/// );
/// let paint = CellPaint::new(&grid, MaterialId(0));
/// let mut materials = MaterialTable::new();
/// materials.add(library::epoxy_resin());
/// let model = ElectrothermalModel::new(grid, paint, materials).unwrap();
/// assert_eq!(model.wires().len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ElectrothermalModel {
    grid: Grid3,
    paint: CellPaint,
    materials: MaterialTable,
    wires: Vec<WireAttachment>,
    electric_dirichlet: Vec<(usize, f64)>,
    thermal_dirichlet: Vec<(usize, f64)>,
    thermal_boundary: ThermalBoundary,
    ambient: f64,
}

impl ElectrothermalModel {
    /// Creates a model with no wires, no electric constraints and the
    /// paper's default thermal boundary.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] if the paint does not match the
    /// grid or references materials missing from the table.
    pub fn new(
        grid: Grid3,
        paint: CellPaint,
        materials: MaterialTable,
    ) -> Result<Self, CoreError> {
        if paint.n_cells() != grid.n_cells() {
            return Err(CoreError::InvalidModel(format!(
                "paint covers {} cells but grid has {}",
                paint.n_cells(),
                grid.n_cells()
            )));
        }
        for c in 0..paint.n_cells() {
            let id = paint.material(c).0 as usize;
            if materials.try_get(id).is_none() {
                return Err(CoreError::InvalidModel(format!(
                    "cell {c} painted with unknown material id {id}"
                )));
            }
        }
        Ok(ElectrothermalModel {
            grid,
            paint,
            materials,
            wires: Vec::new(),
            electric_dirichlet: Vec::new(),
            thermal_dirichlet: Vec::new(),
            thermal_boundary: ThermalBoundary::paper_default(),
            ambient: 300.0,
        })
    }

    /// Attaches a wire between the grid nodes nearest to the two physical
    /// points; returns the wire index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] if both points snap to the same
    /// node (mesh too coarse to separate the bonds).
    pub fn add_wire(
        &mut self,
        wire: BondWire,
        point_a: (f64, f64, f64),
        point_b: (f64, f64, f64),
    ) -> Result<usize, CoreError> {
        let a = self.grid.nearest_node(point_a.0, point_a.1, point_a.2);
        let b = self.grid.nearest_node(point_b.0, point_b.1, point_b.2);
        self.add_wire_between_nodes(wire, a, b)
    }

    /// Attaches a wire between two explicit grid nodes; returns the wire
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for out-of-range or coincident
    /// nodes.
    pub fn add_wire_between_nodes(
        &mut self,
        wire: BondWire,
        node_a: usize,
        node_b: usize,
    ) -> Result<usize, CoreError> {
        let n = self.grid.n_nodes();
        if node_a >= n || node_b >= n {
            return Err(CoreError::InvalidModel(format!(
                "wire attachment node out of range ({node_a}, {node_b}) vs {n} nodes"
            )));
        }
        if node_a == node_b {
            return Err(CoreError::InvalidModel(
                "wire endpoints snapped to the same grid node; refine the mesh".into(),
            ));
        }
        self.wires.push(WireAttachment {
            wire,
            node_a,
            node_b,
        });
        Ok(self.wires.len() - 1)
    }

    /// Fixes the electric potential (PEC contact) of the given nodes.
    pub fn set_electric_potential(&mut self, nodes: &[usize], potential: f64) {
        for &n in nodes {
            self.electric_dirichlet.push((n, potential));
        }
    }

    /// Fixes the temperature of the given nodes (e.g. an ideal heat sink).
    /// The paper uses none — convection/radiation only.
    pub fn set_fixed_temperature(&mut self, nodes: &[usize], temperature: f64) {
        for &n in nodes {
            self.thermal_dirichlet.push((n, temperature));
        }
    }

    /// Sets the convective/radiative thermal boundary.
    pub fn set_thermal_boundary(&mut self, boundary: ThermalBoundary) {
        self.thermal_boundary = boundary;
    }

    /// Sets the ambient/initial temperature (K).
    pub fn set_ambient(&mut self, ambient: f64) {
        self.ambient = ambient;
    }

    /// Replaces wire `j` entirely (e.g. to swap its material model) while
    /// keeping its grid attachment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for an invalid index.
    pub fn replace_wire(&mut self, j: usize, wire: BondWire) -> Result<(), CoreError> {
        let att = self
            .wires
            .get_mut(j)
            .ok_or_else(|| CoreError::InvalidModel(format!("no wire {j}")))?;
        att.wire = wire;
        Ok(())
    }

    /// Replaces the length of wire `j` (Monte Carlo sampling of uncertain
    /// elongations).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for an invalid length or index.
    pub fn set_wire_length(&mut self, j: usize, length: f64) -> Result<(), CoreError> {
        let att = self
            .wires
            .get_mut(j)
            .ok_or_else(|| CoreError::InvalidModel(format!("no wire {j}")))?;
        att.wire = att
            .wire
            .with_length(length)
            .map_err(|e| CoreError::InvalidModel(e.to_string()))?;
        Ok(())
    }

    /// The grid.
    pub fn grid(&self) -> &Grid3 {
        &self.grid
    }

    /// The cell material paint.
    pub fn paint(&self) -> &CellPaint {
        &self.paint
    }

    /// The material table.
    pub fn materials(&self) -> &MaterialTable {
        &self.materials
    }

    /// The attached wires.
    pub fn wires(&self) -> &[WireAttachment] {
        &self.wires
    }

    /// The electric Dirichlet (PEC) constraints as `(node, potential)`.
    pub fn electric_dirichlet(&self) -> &[(usize, f64)] {
        &self.electric_dirichlet
    }

    /// The thermal Dirichlet constraints as `(node, temperature)`.
    pub fn thermal_dirichlet(&self) -> &[(usize, f64)] {
        &self.thermal_dirichlet
    }

    /// The convective/radiative boundary.
    pub fn thermal_boundary(&self) -> &ThermalBoundary {
        &self.thermal_boundary
    }

    /// Ambient/initial temperature (K).
    pub fn ambient(&self) -> f64 {
        self.ambient
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_grid::{Axis, MaterialId};
    use etherm_materials::library;

    fn base() -> ElectrothermalModel {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 2).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(library::epoxy_resin());
        ElectrothermalModel::new(grid, paint, materials).unwrap()
    }

    fn wire() -> BondWire {
        BondWire::new("w", 1e-3, 2e-5, library::copper()).unwrap()
    }

    #[test]
    fn rejects_unknown_material() {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1.0, 1).unwrap(),
            Axis::uniform(0.0, 1.0, 1).unwrap(),
            Axis::uniform(0.0, 1.0, 1).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(3));
        let materials = MaterialTable::new();
        assert!(matches!(
            ElectrothermalModel::new(grid, paint, materials),
            Err(CoreError::InvalidModel(_))
        ));
    }

    #[test]
    fn wire_attachment_by_point_snaps_to_nodes() {
        let mut m = base();
        let j = m.add_wire(wire(), (0.1, 0.1, 0.9), (0.9, 0.9, 0.9)).unwrap();
        assert_eq!(j, 0);
        let att = &m.wires()[0];
        let pa = m.grid().node_position(att.node_a);
        assert_eq!(pa, (0.0, 0.0, 1.0));
        let pb = m.grid().node_position(att.node_b);
        assert_eq!(pb, (1.0, 1.0, 1.0));
    }

    #[test]
    fn coincident_attachment_is_rejected() {
        let mut m = base();
        let e = m.add_wire(wire(), (0.1, 0.1, 0.1), (0.15, 0.1, 0.1));
        assert!(matches!(e, Err(CoreError::InvalidModel(_))));
    }

    #[test]
    fn dirichlet_accumulates() {
        let mut m = base();
        m.set_electric_potential(&[0, 1], 0.02);
        m.set_electric_potential(&[2], -0.02);
        assert_eq!(m.electric_dirichlet().len(), 3);
        m.set_fixed_temperature(&[5], 350.0);
        assert_eq!(m.thermal_dirichlet(), &[(5, 350.0)]);
    }

    #[test]
    fn wire_length_update() {
        let mut m = base();
        m.add_wire(wire(), (0.0, 0.0, 1.0), (1.0, 1.0, 1.0)).unwrap();
        m.set_wire_length(0, 2e-3).unwrap();
        assert_eq!(m.wires()[0].wire.length(), 2e-3);
        assert!(m.set_wire_length(0, -1.0).is_err());
        assert!(m.set_wire_length(5, 1e-3).is_err());
    }

    #[test]
    fn wire_replacement_keeps_attachment() {
        let mut m = base();
        m.add_wire(wire(), (0.0, 0.0, 1.0), (1.0, 1.0, 1.0)).unwrap();
        let (a, b) = (m.wires()[0].node_a, m.wires()[0].node_b);
        let gold = BondWire::new("g", 1.5e-3, 2e-5, library::gold()).unwrap();
        m.replace_wire(0, gold).unwrap();
        assert_eq!(m.wires()[0].wire.material().name(), "gold");
        assert_eq!(m.wires()[0].node_a, a);
        assert_eq!(m.wires()[0].node_b, b);
        let other = BondWire::new("x", 1e-3, 2e-5, library::copper()).unwrap();
        assert!(m.replace_wire(3, other).is_err());
    }

    #[test]
    fn defaults() {
        let m = base();
        assert_eq!(m.ambient(), 300.0);
        assert!(m.thermal_boundary().is_active());
    }
}
