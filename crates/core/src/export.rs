//! Legacy-VTK export of nodal fields for visualization in ParaView/VisIt.
//!
//! The FIT primary grid is a rectilinear grid, which maps directly onto the
//! legacy `DATASET RECTILINEAR_GRID` format — the Fig. 8 temperature field
//! (and any potential field) can be inspected in 3D instead of the ASCII
//! heat map.

use etherm_grid::Grid3;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Writer collecting named nodal fields over one grid.
///
/// # Example
///
/// ```
/// use etherm_core::export::VtkExporter;
/// use etherm_grid::{Axis, Grid3};
///
/// let grid = Grid3::new(
///     Axis::uniform(0.0, 1.0, 2).unwrap(),
///     Axis::uniform(0.0, 1.0, 2).unwrap(),
///     Axis::uniform(0.0, 1.0, 1).unwrap(),
/// );
/// let temperatures = vec![300.0; grid.n_nodes()];
/// let mut vtk = VtkExporter::new(&grid, "etherm solution");
/// vtk.add_field("temperature", &temperatures).unwrap();
/// let text = vtk.to_vtk_string();
/// assert!(text.contains("RECTILINEAR_GRID"));
/// assert!(text.contains("temperature"));
/// ```
#[derive(Debug, Clone)]
pub struct VtkExporter<'g> {
    grid: &'g Grid3,
    title: String,
    fields: Vec<(String, Vec<f64>)>,
}

impl<'g> VtkExporter<'g> {
    /// Creates an exporter for the grid with a dataset title.
    pub fn new(grid: &'g Grid3, title: impl Into<String>) -> Self {
        VtkExporter {
            grid,
            title: title.into(),
            fields: Vec::new(),
        }
    }

    /// Adds a nodal scalar field. Longer vectors (e.g. full DoF states
    /// including wire-internal nodes) are truncated to the grid nodes.
    ///
    /// # Errors
    ///
    /// Returns an error string if the field is shorter than the node count
    /// or the name is empty/contains whitespace.
    pub fn add_field(&mut self, name: &str, values: &[f64]) -> Result<(), String> {
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(format!("invalid VTK field name '{name}'"));
        }
        let n = self.grid.n_nodes();
        if values.len() < n {
            return Err(format!(
                "field '{name}' has {} values but the grid has {n} nodes",
                values.len()
            ));
        }
        self.fields.push((name.to_string(), values[..n].to_vec()));
        Ok(())
    }

    /// Serializes to legacy-VTK ASCII.
    pub fn to_vtk_string(&self) -> String {
        let (nx, ny, nz) = self.grid.node_dims();
        let mut out = String::new();
        out.push_str("# vtk DataFile Version 3.0\n");
        let _ = writeln!(out, "{}", self.title);
        out.push_str("ASCII\nDATASET RECTILINEAR_GRID\n");
        let _ = writeln!(out, "DIMENSIONS {nx} {ny} {nz}");
        for (label, coords) in [
            ("X_COORDINATES", self.grid.x().coords()),
            ("Y_COORDINATES", self.grid.y().coords()),
            ("Z_COORDINATES", self.grid.z().coords()),
        ] {
            let _ = writeln!(out, "{label} {} double", coords.len());
            for (i, c) in coords.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{c}");
            }
            out.push('\n');
        }
        let _ = writeln!(out, "POINT_DATA {}", self.grid.n_nodes());
        for (name, values) in &self.fields {
            let _ = writeln!(out, "SCALARS {name} double 1");
            out.push_str("LOOKUP_TABLE default\n");
            // VTK expects x fastest, then y, then z — our node ordering.
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push(if i % 6 == 0 { '\n' } else { ' ' });
                }
                let _ = write!(out, "{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Writes the dataset to a `.vtk` file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_vtk_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_grid::Axis;

    fn grid() -> Grid3 {
        Grid3::new(
            Axis::uniform(0.0, 2.0, 2).unwrap(),
            Axis::from_coords(vec![0.0, 0.5, 2.0]).unwrap(),
            Axis::uniform(0.0, 1.0, 1).unwrap(),
        )
    }

    #[test]
    fn header_and_dimensions() {
        let g = grid();
        let vtk = VtkExporter::new(&g, "test");
        let s = vtk.to_vtk_string();
        assert!(s.starts_with("# vtk DataFile Version 3.0\n"));
        assert!(s.contains("DIMENSIONS 3 3 2"));
        assert!(s.contains("X_COORDINATES 3 double"));
        assert!(s.contains("Y_COORDINATES 3 double"));
        assert!(s.contains("0 0.5 2"));
        assert!(s.contains("POINT_DATA 18"));
    }

    #[test]
    fn fields_serialize_in_node_order() {
        let g = grid();
        let mut vtk = VtkExporter::new(&g, "test");
        let values: Vec<f64> = (0..g.n_nodes()).map(|i| i as f64).collect();
        vtk.add_field("t", &values).unwrap();
        let s = vtk.to_vtk_string();
        assert!(s.contains("SCALARS t double 1"));
        // First values appear right after the lookup table line.
        let after = s.split("LOOKUP_TABLE default\n").nth(1).unwrap();
        assert!(after.starts_with("0 1 2 3 4 5\n6 7"));
    }

    #[test]
    fn full_state_vectors_are_truncated() {
        let g = grid();
        let mut vtk = VtkExporter::new(&g, "test");
        let mut values = vec![1.0; g.n_nodes()];
        values.push(999.0); // wire-internal DoF
        vtk.add_field("t", &values).unwrap();
        assert!(!vtk.to_vtk_string().contains("999"));
    }

    #[test]
    fn validation_errors() {
        let g = grid();
        let mut vtk = VtkExporter::new(&g, "test");
        assert!(vtk.add_field("bad name", &vec![0.0; g.n_nodes()]).is_err());
        assert!(vtk.add_field("", &vec![0.0; g.n_nodes()]).is_err());
        assert!(vtk.add_field("short", &[0.0]).is_err());
    }

    #[test]
    fn writes_file() {
        let g = grid();
        let mut vtk = VtkExporter::new(&g, "test");
        vtk.add_field("t", &vec![300.0; g.n_nodes()]).unwrap();
        let path = std::env::temp_dir().join("etherm_vtk_test.vtk");
        vtk.write_to(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.contains("RECTILINEAR_GRID"));
        let _ = std::fs::remove_file(&path);
    }
}
