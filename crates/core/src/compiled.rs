//! The immutable, shareable half of the solver: everything that is
//! invariant across parameter perturbations of one model.
//!
//! A Monte Carlo campaign evaluates the *same* package thousands of times
//! with only the 12 wire elongations changing. Nothing structural changes
//! between samples: the grid, the DoF layout, the Dirichlet maps, the
//! grid part of the heat-capacity diagonal and — because the stamping
//! sequences are deterministic — the CSR sparsity patterns of all three
//! reduced systems are sample-independent. [`CompiledModel`] computes all
//! of that exactly once ("compile"), and any number of [`crate::Session`]s
//! (typically one per worker thread) then share it read-only through an
//! [`std::sync::Arc`], refilling values over the frozen patterns.
//!
//! What is frozen here vs. per-run in the session:
//!
//! | frozen in `CompiledModel`            | per-run in `Session`            |
//! |--------------------------------------|---------------------------------|
//! | model (grid, paint, materials, BCs)  | wire lengths (sampled)          |
//! | DoF layout and Dirichlet `DofMap`s   | value-filled matrices           |
//! | grid heat-capacity diagonal          | wire heat capacities            |
//! | recorded stamping patterns (CSR)     | cached preconditioners          |
//! | solver options                       | Krylov workspaces, scratch      |

use crate::assembly::{self, CoeffBufs};
use crate::error::CoreError;
use crate::layout::DofLayout;
use crate::model::ElectrothermalModel;
use crate::options::SolverOptions;
use etherm_fit::matrices::node_capacitance_diagonal;
use etherm_fit::{CachedStamper, DofMap};

/// The compile-once product shared by all sessions of one model: DoF
/// layout, Dirichlet maps, the grid heat-capacity diagonal and the recorded
/// assembly templates (frozen CSR patterns + triplet→slot maps).
///
/// Create with [`CompiledModel::compile`], then spawn cheap per-run
/// [`crate::Session`]s with [`crate::Session::new`].
#[derive(Debug)]
pub struct CompiledModel {
    model: ElectrothermalModel,
    options: SolverOptions,
    layout: DofLayout,
    elec_map: DofMap,
    therm_map: DofMap,
    /// Heat capacity of the grid DoFs (J/K), full numbering; wire-internal
    /// entries are zero — sessions add the per-run wire capacities on top.
    grid_mass_diag: Vec<f64>,
    /// Recorded electrical assembly (pattern + slots), `None` when the
    /// model has no electric drive (the potential is identically zero and
    /// the system is never assembled).
    elec_template: Option<CachedStamper>,
    /// Recorded transient thermal assembly (with mass stamps).
    therm_template: CachedStamper,
    /// Recorded stationary thermal assembly (no mass stamps — a different
    /// emission sequence, hence its own template).
    therm_stationary_template: CachedStamper,
}

impl CompiledModel {
    /// Compiles the model: validates constraints, builds the DoF layout and
    /// Dirichlet maps, and records the frozen assembly patterns of all
    /// three reduced systems with one synthetic stamping round each (at the
    /// ambient temperature, with the nominal wires).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for inconsistent constraints
    /// (e.g. out-of-range Dirichlet nodes).
    pub fn compile(
        model: ElectrothermalModel,
        options: SolverOptions,
    ) -> Result<Self, CoreError> {
        let n_grid = model.grid().n_nodes();
        let wires: Vec<_> = model
            .wires()
            .iter()
            .map(|w| (&w.wire, w.node_a, w.node_b))
            .collect();
        let layout = DofLayout::new(n_grid, &wires);
        for &(n, _) in model.electric_dirichlet() {
            if n >= n_grid {
                return Err(CoreError::InvalidModel(format!(
                    "electric Dirichlet node {n} out of range"
                )));
            }
        }
        for &(n, _) in model.thermal_dirichlet() {
            if n >= n_grid {
                return Err(CoreError::InvalidModel(format!(
                    "thermal Dirichlet node {n} out of range"
                )));
            }
        }
        let elec_map = DofMap::new(layout.n_total(), model.electric_dirichlet());
        let therm_map = DofMap::new(layout.n_total(), model.thermal_dirichlet());

        let mut grid_mass_diag = node_capacitance_diagonal(model.grid(), model.paint(), model.materials());
        grid_mass_diag.resize(layout.n_total(), 0.0);

        let mut compiled = CompiledModel {
            model,
            options,
            layout,
            elec_map: elec_map.clone(),
            therm_map: therm_map.clone(),
            grid_mass_diag,
            elec_template: None,
            therm_template: CachedStamper::new(&therm_map),
            therm_stationary_template: CachedStamper::new(&therm_map),
        };
        compiled.record_templates();
        Ok(compiled)
    }

    /// Records the three assembly patterns by running one full stamping
    /// round each with the nominal wires at the initial temperature. The
    /// emission *structure* is value-independent (zero conductances are
    /// stamped, mass entries never change sign with wire length), so the
    /// recorded patterns and slot maps are valid for every sample.
    fn record_templates(&mut self) {
        let t0 = self.initial_temperature();
        let mut bufs = CoeffBufs::default();
        let wires = self.model.wires();
        let mass_diag = self.mass_diag_for(wires);
        let q = vec![0.0; self.layout.n_total()];

        if !self.model.electric_dirichlet().is_empty() {
            assembly::fill_sigma(&self.model, &t0, &mut bufs);
            let mut st = CachedStamper::new(&self.elec_map);
            assembly::stamp_electrical(&self.model, &self.layout, wires, &t0, &bufs, &mut st);
            st.finish();
            self.elec_template = Some(st);
        }

        assembly::fill_lambda(&self.model, &t0, &mut bufs);
        assembly::stamp_thermal(
            &self.model,
            &self.layout,
            wires,
            &t0,
            &t0,
            Some(1.0),
            &mass_diag,
            &q,
            &bufs,
            &mut self.therm_template,
        );
        self.therm_template.finish();

        assembly::stamp_thermal(
            &self.model,
            &self.layout,
            wires,
            &t0,
            &t0,
            None,
            &mass_diag,
            &q,
            &bufs,
            &mut self.therm_stationary_template,
        );
        self.therm_stationary_template.finish();
    }

    /// The full heat-capacity diagonal for a given wire set: the frozen
    /// grid part plus each wire's per-segment capacity (when
    /// [`SolverOptions::wire_heat_capacity`] is on).
    pub(crate) fn mass_diag_for(&self, wires: &[crate::model::WireAttachment]) -> Vec<f64> {
        let mut mass = self.grid_mass_diag.clone();
        self.fill_wire_mass(wires, &mut mass);
        mass
    }

    /// Overwrites the wire-internal entries of `mass` with the capacities
    /// of `wires` (the grid prefix is untouched).
    pub(crate) fn fill_wire_mass(
        &self,
        wires: &[crate::model::WireAttachment],
        mass: &mut [f64],
    ) {
        if !self.options.wire_heat_capacity {
            return;
        }
        for (j, att) in wires.iter().enumerate() {
            let topo = self.layout.topology(j);
            if topo.n_internal() == 0 {
                continue;
            }
            let seg_capacity = att.wire.heat_capacity() / att.wire.segments() as f64;
            for i in 0..topo.n_internal() {
                mass[topo.internal_offset + i] = seg_capacity;
            }
        }
    }

    /// The model this was compiled from (nominal wires).
    pub fn model(&self) -> &ElectrothermalModel {
        &self.model
    }

    /// The solver options shared by all sessions.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// The DoF layout (grid + wire internal DoFs).
    pub fn layout(&self) -> &DofLayout {
        &self.layout
    }

    /// The electrical Dirichlet map.
    pub fn elec_map(&self) -> &DofMap {
        &self.elec_map
    }

    /// The thermal Dirichlet map.
    pub fn therm_map(&self) -> &DofMap {
        &self.therm_map
    }

    pub(crate) fn elec_template(&self) -> Option<&CachedStamper> {
        self.elec_template.as_ref()
    }

    pub(crate) fn therm_template(&self) -> &CachedStamper {
        &self.therm_template
    }

    pub(crate) fn therm_stationary_template(&self) -> &CachedStamper {
        &self.therm_stationary_template
    }

    /// Initial full state: everything at the ambient temperature, wire
    /// internals interpolated.
    pub fn initial_temperature(&self) -> Vec<f64> {
        let mut t = vec![self.model.ambient(); self.layout.n_total()];
        for &(n, value) in self.model.thermal_dirichlet() {
            t[n] = value;
        }
        self.layout.interpolate_wire_internals(&mut t);
        t
    }
}
