//! The per-run, mutable half of the solver: value-filled matrices, cached
//! preconditioners, workspaces and warm-start state.
//!
//! A [`Session`] is created from a shared [`CompiledModel`] and owns
//! everything that changes between (or during) runs: the sampled wire
//! parameters, the value-filled CSR matrices (over the compiled model's
//! frozen patterns), the lazily-refreshed preconditioners, the Krylov
//! workspaces and all scratch buffers. Creating a session never re-derives
//! anything structural — it clones the recorded stamping templates and
//! allocates buffers, which makes one session per worker thread cheap and
//! the per-sample cost of a campaign essentially the solve itself.
//!
//! Two reuse modes:
//!
//! * **exact** (default): call [`Session::reset`] between samples. Cached
//!   preconditioners are dropped and warm-start state cleared, so every run
//!   is *bit-identical* to a freshly constructed [`crate::Simulator`] on
//!   the same model — the mode used by the Fig. 7 reproduction, whose
//!   statistics must not move.
//! * **warm** ([`Session::set_warm_start`]): preconditioners are carried
//!   across samples (refreshed in place by the usual lazy policy) and every
//!   thermal CG solve is warm-started from the previous sample's solution
//!   at the same (step, Picard-iterate) position by transplanting its
//!   update increment. Warm starts and preconditioner state only change
//!   *iteration counts*; the converged physics agrees with the exact mode
//!   within the inner solver tolerance.

use crate::assembly::{self, CoeffBufs};
use crate::compiled::CompiledModel;
use crate::error::CoreError;
use crate::observer::{ObservedTransient, ObserverAction, StepObserver, StepRecord};
use crate::options::{JouleScheme, PrecondKind, RecoveryPolicy, SolverOptions};
use crate::solution::TransientSolution;
use etherm_bondwire::stamp::wire_joule_heat;
use etherm_fit::CachedStamper;
use etherm_numerics::solvers::{
    pcg_with, AmgOptions, AmgPrecond, AmgSmoother, CgOptions, FaultInjector, FaultPlan,
    FaultyLinOp, IdentityPrecond, IncompleteCholesky, JacobiPrecond, KrylovWorkspace,
    Preconditioner, SolveReport, Ssor,
};
use etherm_numerics::sparse::{Csr, ParSpmv};
use etherm_numerics::{vector, MultiVec, NumericsError};
use std::sync::Arc;

/// A cached preconditioner of the kind selected in
/// [`SolverOptions::preconditioner`], refreshable in place over the frozen
/// assembly pattern.
#[derive(Debug, Clone)]
pub(crate) enum CachedPrecond {
    Identity(IdentityPrecond),
    Jacobi(JacobiPrecond),
    Ic(IncompleteCholesky),
    Ssor(Ssor),
    Amg(Box<AmgPrecond>),
}

impl CachedPrecond {
    /// Builds a preconditioner of an explicit kind — the recovery ladder's
    /// downgrade rung builds a *different* kind than the configured one.
    pub(crate) fn build_kind(
        kind: PrecondKind,
        options: &SolverOptions,
        a: &Csr,
    ) -> Result<Self, NumericsError> {
        Ok(match kind {
            PrecondKind::None => CachedPrecond::Identity(IdentityPrecond::new(a.n_rows())),
            PrecondKind::Jacobi => CachedPrecond::Jacobi(JacobiPrecond::new(a)?),
            PrecondKind::Ic(level) => CachedPrecond::Ic(IncompleteCholesky::with_fill_drop(
                a,
                level,
                options.precond_droptol,
            )?),
            PrecondKind::Ssor(omega) => CachedPrecond::Ssor(Ssor::new(a, omega)?),
            PrecondKind::Amg { theta, omega } => CachedPrecond::Amg(Box::new(AmgPrecond::new(
                a,
                AmgOptions {
                    strength_theta: theta,
                    smoother: AmgSmoother::Ssor { omega, sweeps: 1 },
                    n_threads: options.n_threads,
                    ..AmgOptions::default()
                },
            )?)),
        })
    }

    pub(crate) fn refresh(&mut self, a: &Csr) -> Result<(), NumericsError> {
        match self {
            CachedPrecond::Identity(_) => Ok(()),
            CachedPrecond::Jacobi(p) => p.refresh(a),
            CachedPrecond::Ic(p) => p.refresh(a),
            CachedPrecond::Ssor(p) => p.refresh(a),
            CachedPrecond::Amg(p) => p.refresh(a),
        }
    }

    /// Coarsest-level dimension of an AMG hierarchy (`None` otherwise).
    pub(crate) fn coarse_dim(&self) -> Option<usize> {
        match self {
            CachedPrecond::Amg(p) => Some(p.coarse_dim()),
            _ => None,
        }
    }
}

impl Preconditioner for CachedPrecond {
    fn dim(&self) -> usize {
        match self {
            CachedPrecond::Identity(p) => p.dim(),
            CachedPrecond::Jacobi(p) => p.dim(),
            CachedPrecond::Ic(p) => p.dim(),
            CachedPrecond::Ssor(p) => p.dim(),
            CachedPrecond::Amg(p) => p.dim(),
        }
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            CachedPrecond::Identity(p) => p.apply(r, z),
            CachedPrecond::Jacobi(p) => p.apply(r, z),
            CachedPrecond::Ic(p) => p.apply(r, z),
            CachedPrecond::Ssor(p) => p.apply(r, z),
            CachedPrecond::Amg(p) => p.apply(r, z),
        }
    }

    // Dispatch to each kind's fused panel kernel — the default would loop
    // the scalar `apply` and lose the one-traversal-per-panel batching.
    fn apply_block(&self, r: &MultiVec, z: &mut MultiVec) {
        match self {
            CachedPrecond::Identity(p) => p.apply_block(r, z),
            CachedPrecond::Jacobi(p) => p.apply_block(r, z),
            CachedPrecond::Ic(p) => p.apply_block(r, z),
            CachedPrecond::Ssor(p) => p.apply_block(r, z),
            CachedPrecond::Amg(p) => p.apply_block(r, z),
        }
    }
}

/// Per-subsystem solver state: the cached preconditioner, the Krylov
/// workspace, and the bookkeeping driving the lazy refresh policy.
#[derive(Debug, Clone, Default)]
struct SubsystemCache {
    precond: Option<CachedPrecond>,
    ws: KrylovWorkspace,
    /// CG iterations of the first solve after the last (re)build — the
    /// reference for the degradation trigger.
    baseline_iters: Option<usize>,
    /// Solves since the last (re)build.
    reuses: usize,
    /// How many times the recovery ladder has downgraded this subsystem's
    /// preconditioner kind (`0` = the configured kind). Sticky until
    /// [`SubsystemCache::clear`].
    fallback_level: usize,
    /// The CG initial guess saved at solve entry: retry rungs restart from
    /// it so a failed attempt cannot leak NaN contamination into the next.
    guess_backup: Vec<f64>,
}

impl SubsystemCache {
    fn mark_rebuilt(&mut self) {
        self.baseline_iters = None;
        self.reuses = 0;
    }

    /// Drops the cached preconditioner (exact-mode reset): the next solve
    /// rebuilds from scratch, exactly like a fresh simulator. Also forgets
    /// any recovery downgrade of the preconditioner kind.
    fn clear(&mut self) {
        self.precond = None;
        self.fallback_level = 0;
        self.guess_backup.clear();
        self.mark_rebuilt();
    }
}

/// The downgrade ladder of the recovery policy: each kind's next cheaper,
/// more robust fallback (`None` = bottom of the ladder).
fn next_fallback(kind: PrecondKind) -> Option<PrecondKind> {
    match kind {
        PrecondKind::Amg { .. } => Some(PrecondKind::Ic(1)),
        PrecondKind::Ic(_) | PrecondKind::Ssor(_) => Some(PrecondKind::Jacobi),
        PrecondKind::Jacobi | PrecondKind::None => None,
    }
}

/// The preconditioner kind after `fallback_level` downgrades of the
/// configured kind.
fn effective_kind(options: &SolverOptions, fallback_level: usize) -> PrecondKind {
    let mut kind = options.preconditioner;
    for _ in 0..fallback_level {
        match next_fallback(kind) {
            Some(next) => kind = next,
            None => break,
        }
    }
    kind
}

/// Scratch buffers reused across Picard iterates and time steps: the
/// per-iterate material averaging, heat sources and reduced unknowns run
/// allocation-free after the first iterate.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Material-coefficient buffers (cell temperatures, σ/λ, edge diagonals).
    coeff: CoeffBufs,
    /// Heat sources, full numbering (W per DoF).
    q: Vec<f64>,
    /// Reduced unknowns of the current linear solve.
    x_red: Vec<f64>,
    /// Joule power per wire (W), refreshed every heat-source evaluation.
    wire_powers: Vec<f64>,
    /// Lagged Picard temperature (full numbering).
    t_star: Vec<f64>,
    /// Next Picard temperature (full numbering).
    t_new: Vec<f64>,
    /// Start state of the previous transient step (for the extrapolated CG
    /// initial guess of the first thermal solve of a step).
    t_hist: Vec<f64>,
    /// Extrapolated CG initial guess `2·t_prev − t_hist`.
    t_guess: Vec<f64>,
    /// Step size of the previous transient step (predictor validity check).
    last_dt: f64,
}

/// Warm-start state: the reduced thermal solutions of the previous and the
/// current run, indexed `[step − 1][picard_iterate − 1]`.
#[derive(Debug, Clone, Default)]
struct WarmState {
    enabled: bool,
    traj_prev: Vec<Vec<Vec<f64>>>,
    traj_cur: Vec<Vec<Vec<f64>>>,
}

/// The three independently cached linear subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Subsystem {
    Electrical,
    ThermalTransient,
    ThermalStationary,
}

impl Subsystem {
    fn name(self) -> &'static str {
        match self {
            Subsystem::Electrical => "electrical",
            Subsystem::ThermalTransient | Subsystem::ThermalStationary => "thermal",
        }
    }
}

/// Result of one implicit-Euler step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Full temperature vector after the step (K).
    pub temperature: Vec<f64>,
    /// Full potential vector at the end of the step (V).
    pub potential: Vec<f64>,
    /// Picard iterations used.
    pub picard_iterations: usize,
    /// Inner CG iterations used (electrical + thermal).
    pub linear_iterations: usize,
    /// Whether the Picard loop met its tolerance.
    pub converged: bool,
    /// Joule power per wire (W).
    pub wire_powers: Vec<f64>,
    /// Total field Joule power (W).
    pub field_power: f64,
}

/// Result of a stationary (steady-state) solve.
#[derive(Debug, Clone)]
pub struct StationaryResult {
    /// Full temperature vector (K).
    pub temperature: Vec<f64>,
    /// Full potential vector (V).
    pub potential: Vec<f64>,
    /// Picard iterations used.
    pub picard_iterations: usize,
    /// Whether the outer iteration converged.
    pub converged: bool,
    /// Joule power per wire (W).
    pub wire_powers: Vec<f64>,
    /// Total field Joule power (W).
    pub field_power: f64,
}

/// What the recovery ladder did during a run: every escalation is counted,
/// so a campaign can tell *degraded-but-recovered* samples from clean ones.
/// All-zero means no rung ever fired — the solve path was identical to a
/// session with recovery disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryLedger {
    /// Plain same-configuration solve retries.
    pub solve_retries: usize,
    /// Preconditioner refreshes forced by a failing solve.
    pub forced_refreshes: usize,
    /// Preconditioner-kind downgrades (`Amg` → `Ic(1)` → `Jacobi`).
    pub precond_fallbacks: usize,
    /// Transient steps redone as two half-size sub-steps.
    pub dt_halvings: usize,
    /// Solves that failed at least once but succeeded after escalation.
    pub recovered_solves: usize,
    /// Steps that failed at least once but succeeded after `dt`-halving.
    pub recovered_steps: usize,
}

impl RecoveryLedger {
    /// Accumulates `other` into `self` (sums all rung counts).
    pub fn merge(&mut self, other: &RecoveryLedger) {
        self.solve_retries += other.solve_retries;
        self.forced_refreshes += other.forced_refreshes;
        self.precond_fallbacks += other.precond_fallbacks;
        self.dt_halvings += other.dt_halvings;
        self.recovered_solves += other.recovered_solves;
        self.recovered_steps += other.recovered_steps;
    }

    /// Whether any rung fired.
    pub fn any(&self) -> bool {
        *self != RecoveryLedger::default()
    }
}

/// Cumulative iteration counters per subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveCounters {
    /// CG iterations spent in electrical solves.
    pub electrical_iterations: usize,
    /// Number of electrical solves.
    pub electrical_solves: usize,
    /// CG iterations spent in thermal solves.
    pub thermal_iterations: usize,
    /// Number of thermal solves.
    pub thermal_solves: usize,
    /// Outer Picard iterations (all steps and stationary solves).
    pub picard_iterations: usize,
    /// Preconditioner (re)builds and in-place refreshes, all subsystems.
    pub precond_rebuilds: usize,
    /// Solves that reused a cached preconditioner unchanged.
    pub precond_reuses: usize,
    /// Largest coarsest-level dimension any AMG hierarchy reached (0 when
    /// no AMG preconditioner was built).
    pub peak_coarse_dim: usize,
    /// What the recovery ladder did (all-zero on clean runs).
    pub recovery: RecoveryLedger,
}

impl SolveCounters {
    /// Accumulates `other` into `self` (sums; `peak_coarse_dim` takes the
    /// maximum). Used by the ensemble engine to merge per-worker counters.
    pub fn merge(&mut self, other: &SolveCounters) {
        self.electrical_iterations += other.electrical_iterations;
        self.electrical_solves += other.electrical_solves;
        self.thermal_iterations += other.thermal_iterations;
        self.thermal_solves += other.thermal_solves;
        self.picard_iterations += other.picard_iterations;
        self.precond_rebuilds += other.precond_rebuilds;
        self.precond_reuses += other.precond_reuses;
        self.peak_coarse_dim = self.peak_coarse_dim.max(other.peak_coarse_dim);
        self.recovery.merge(&other.recovery);
    }
}

/// Per-run solver state over a shared [`CompiledModel`].
///
/// All solve entry points take `&mut self`; a session is single-threaded by
/// construction (spawn one per worker). See the module docs for the
/// exact-vs-warm reuse contract.
#[derive(Debug, Clone)]
pub struct Session {
    compiled: Arc<CompiledModel>,
    /// Per-run wire state: starts at the compiled model's nominal wires,
    /// mutated by [`Session::set_wire_length`] between runs.
    wires: Vec<crate::model::WireAttachment>,
    /// Per-run electric drive scale (1.0 = the model's nominal Dirichlet
    /// potentials). See [`Session::set_drive_scale`].
    drive_scale: f64,
    /// Full heat-capacity diagonal: frozen grid part + current wire
    /// capacities.
    mass_diag: Vec<f64>,
    /// Value-filled assemblies over the compiled frozen patterns.
    elec_stamper: Option<CachedStamper>,
    therm_stamper: CachedStamper,
    therm_stationary_stamper: CachedStamper,
    /// Per-subsystem cached preconditioner + Krylov workspace.
    elec_solver: SubsystemCache,
    therm_solver: SubsystemCache,
    therm_stationary_solver: SubsystemCache,
    scratch: Scratch,
    counters: SolveCounters,
    warm: WarmState,
    /// Deterministic fault injection for resilience testing
    /// ([`Session::set_fault_plan`]); `None` on the production path.
    fault: Option<FaultInjector>,
    /// Krylov iterations spent in the current run, charged against
    /// [`RecoveryPolicy::linear_iteration_budget`].
    budget_spent: usize,
    /// Per-session override of the compiled options'
    /// [`RecoveryPolicy::linear_iteration_budget`]
    /// ([`Session::set_iteration_budget`]): a serving front end assigns
    /// budgets per request class without recompiling the shared model.
    /// `None` defers to the compiled options; `Some(0)` means unlimited.
    budget_override: Option<usize>,
}

impl Session {
    /// Creates a session over the compiled model: clones the recorded
    /// stamping templates and the nominal wires; no structural work.
    pub fn new(compiled: Arc<CompiledModel>) -> Self {
        let wires = compiled.model().wires().to_vec();
        let mass_diag = compiled.mass_diag_for(&wires);
        let elec_stamper = compiled.elec_template().cloned();
        let therm_stamper = compiled.therm_template().clone();
        let therm_stationary_stamper = compiled.therm_stationary_template().clone();
        Session {
            compiled,
            wires,
            drive_scale: 1.0,
            mass_diag,
            elec_stamper,
            therm_stamper,
            therm_stationary_stamper,
            elec_solver: SubsystemCache::default(),
            therm_solver: SubsystemCache::default(),
            therm_stationary_solver: SubsystemCache::default(),
            scratch: Scratch::default(),
            counters: SolveCounters::default(),
            warm: WarmState::default(),
            fault: None,
            budget_spent: 0,
            budget_override: None,
        }
    }

    /// The shared compiled model.
    pub fn compiled(&self) -> &Arc<CompiledModel> {
        &self.compiled
    }

    /// The solver options in use.
    pub fn options(&self) -> &SolverOptions {
        self.compiled.options()
    }

    /// The current per-run wires (sampled lengths).
    pub fn wires(&self) -> &[crate::model::WireAttachment] {
        &self.wires
    }

    /// Snapshot of the cumulative per-system iteration counters.
    pub fn counters(&self) -> SolveCounters {
        self.counters
    }

    /// Clears the cumulative counters (e.g. between benchmark configs).
    pub fn reset_counters(&mut self) {
        self.counters = SolveCounters::default();
    }

    /// Snapshot of the cumulative recovery-ladder ledger — the health
    /// signal a serving front end sheds load on. Equivalent to
    /// `counters().recovery`, published directly so monitoring code does
    /// not depend on the full counter layout.
    pub fn recovery_ledger(&self) -> RecoveryLedger {
        self.counters.recovery
    }

    /// Overrides the compiled options'
    /// [`RecoveryPolicy::linear_iteration_budget`] for this session only:
    /// subsequent runs abort with [`CoreError::BudgetExhausted`] once their
    /// spent Krylov iterations reach `budget`. `Some(0)` disables the cap;
    /// `None` restores the compiled options' budget. The override is a
    /// session *parameter* like the wire lengths — it survives
    /// [`Session::reset`] — so a pool can assign budgets per request class
    /// over one shared [`CompiledModel`].
    pub fn set_iteration_budget(&mut self, budget: Option<usize>) {
        self.budget_override = budget;
    }

    /// The effective per-run Krylov iteration budget (`0` = unlimited):
    /// the [`Session::set_iteration_budget`] override when set, otherwise
    /// the compiled options' budget.
    pub fn iteration_budget(&self) -> usize {
        self.budget_override
            .unwrap_or(self.compiled.options().recovery.linear_iteration_budget)
    }

    /// Enables or disables warm-starting across runs (default: off). See
    /// the module docs: warm mode trades bit-reproducibility against a
    /// rebuild-per-sample reference for fewer CG iterations; the physics
    /// stays within the inner solver tolerance.
    ///
    /// Memory: warm mode records the reduced thermal solution of every
    /// transient solve and keeps the previous *and* current run's
    /// trajectories — `2 · n_steps · Picard-iterates · n_reduced` doubles
    /// per session (≈ 2 × 21 MB on the paper package at 50 steps × 6
    /// iterates), multiplied by the worker count in an ensemble. Disabling
    /// warm start frees both trajectories.
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.warm.enabled = enabled;
        if !enabled {
            self.warm.traj_prev.clear();
            self.warm.traj_cur.clear();
        }
    }

    /// Installs (or removes, with `None`) a deterministic fault plan: the
    /// selected solves of subsequent runs see a [`FaultyLinOp`]-wrapped
    /// operator that injects the planned breakdowns, NaN/Inf contamination
    /// or iteration-cap stalls. The plan is a *parameter* like the wire
    /// lengths — it survives [`Session::reset`] — and an empty plan is
    /// normalized to `None`, keeping the production path zero-cost.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan
            .filter(|p| !p.is_empty())
            .map(FaultInjector::new);
    }

    /// The number of planned faults injected so far (0 without a plan).
    pub fn faults_fired(&self) -> usize {
        self.fault.as_ref().map_or(0, |f| f.fired())
    }

    /// Resets all per-run solver state so the next run is bit-identical to
    /// a freshly built [`crate::Simulator`] on the same model: drops the
    /// cached preconditioners (patterns and workspaces are kept — they do
    /// not influence results, only allocations) and clears the warm-start
    /// trajectories and step-extrapolation history. Cumulative counters and
    /// the current wire lengths are kept.
    pub fn reset(&mut self) {
        self.elec_solver.clear();
        self.therm_solver.clear();
        self.therm_stationary_solver.clear();
        self.scratch.t_hist.clear();
        self.scratch.last_dt = 0.0;
        self.warm.traj_prev.clear();
        self.warm.traj_cur.clear();
    }

    /// Forks the session: an independent session sharing the same compiled
    /// model, with the current solver state (preconditioners, warm
    /// trajectories, wire lengths) *cloned*. Spawning warm workers from a
    /// burned-in session skips their cold start.
    pub fn fork(&self) -> Session {
        self.clone()
    }

    /// Replaces the length of wire `j` — the Monte Carlo parameter of the
    /// paper's campaign. Only the wire's stamped values and its segment
    /// heat capacities change; all patterns stay frozen.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for an invalid length or index.
    pub fn set_wire_length(&mut self, j: usize, length: f64) -> Result<(), CoreError> {
        let att = self
            .wires
            .get_mut(j)
            .ok_or_else(|| CoreError::InvalidModel(format!("no wire {j}")))?;
        att.wire = att
            .wire
            .with_length(length)
            .map_err(|e| CoreError::InvalidModel(e.to_string()))?;
        self.compiled.fill_wire_mass(&self.wires, &mut self.mass_diag);
        Ok(())
    }

    /// Scales the electric drive: every Dirichlet potential of the
    /// electrical subsystem becomes `scale ×` its model value. At a frozen
    /// temperature field the electrical system is linear in Φ, so the
    /// injected current scales proportionally — this is the load parameter
    /// of the reliability engine's fusing-current search (the σ(T) feedback
    /// then moves the operating point like any physical overload would).
    /// Like [`Session::set_wire_length`] this is a *parameter*, kept across
    /// [`Session::reset`]; `scale = 1` restores the nominal drive
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for a negative or non-finite
    /// scale.
    pub fn set_drive_scale(&mut self, scale: f64) -> Result<(), CoreError> {
        if !(scale.is_finite() && scale >= 0.0) {
            return Err(CoreError::InvalidModel(format!(
                "drive scale must be finite and non-negative, got {scale}"
            )));
        }
        if let Some(stamper) = self.elec_stamper.as_mut() {
            stamper.set_dirichlet_scale(scale);
        }
        self.drive_scale = scale;
        Ok(())
    }

    /// The current electric drive scale.
    pub fn drive_scale(&self) -> f64 {
        self.drive_scale
    }

    /// Initial full state: everything at the ambient temperature, wire
    /// internals interpolated.
    pub fn initial_temperature(&self) -> Vec<f64> {
        self.compiled.initial_temperature()
    }

    /// Performs one implicit-Euler step of size `dt` from the full state
    /// `t_prev`, warm-starting the electrical solve from `phi_warm`.
    ///
    /// # Errors
    ///
    /// Returns solver failures; a stalled Picard loop is an error only with
    /// [`SolverOptions::strict_picard`].
    pub fn step(
        &mut self,
        t_prev: &[f64],
        dt: f64,
        phi_warm: &mut [f64],
        step_index: usize,
    ) -> Result<StepResult, CoreError> {
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(CoreError::InvalidModel(format!("invalid time step {dt}")));
        }
        self.coupled_solve(t_prev, Some(dt), phi_warm, step_index)
    }

    /// Solves the stationary coupled problem (steady state).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] if neither a thermal boundary nor
    /// thermal Dirichlet nodes anchor the temperature (singular system).
    pub fn solve_stationary(&mut self) -> Result<StationaryResult, CoreError> {
        let model = self.compiled.model();
        if !model.thermal_boundary().is_active() && model.thermal_dirichlet().is_empty() {
            return Err(CoreError::InvalidModel(
                "stationary solve needs an active thermal boundary or fixed temperatures".into(),
            ));
        }
        let t0 = self.initial_temperature();
        let mut phi = vec![0.0; self.compiled.layout().n_total()];
        self.begin_recovery_run();
        let r = self.coupled_solve(&t0, None, &mut phi, 0)?;
        Ok(StationaryResult {
            temperature: r.temperature,
            potential: r.potential,
            picard_iterations: r.picard_iterations,
            converged: r.converged,
            wire_powers: r.wire_powers,
            field_power: r.field_power,
        })
    }

    /// Runs the implicit-Euler transient over `[0, t_end]` with `n_steps`
    /// equal steps (the paper: 50 s, 51 time points → 50 steps), recording
    /// full-field snapshots at the requested times (matched to the nearest
    /// step).
    ///
    /// # Errors
    ///
    /// Propagates step failures.
    ///
    /// # Panics
    ///
    /// Panics if `n_steps == 0` or `t_end ≤ 0`.
    pub fn run_transient(
        &mut self,
        t_end: f64,
        n_steps: usize,
        snapshot_times: &[f64],
    ) -> Result<TransientSolution, CoreError> {
        self.run_transient_impl(t_end, n_steps, snapshot_times, None)
            .map(|observed| observed.solution)
    }

    /// [`Session::run_transient`] with an in-run [`StepObserver`]: the
    /// observer is evaluated on the initial state and after every accepted
    /// step, and may terminate the run ([`ObserverAction::Stop`]) or
    /// terminate *and* refine the threshold-crossing time by time-bisection
    /// inside the violating step ([`ObserverAction::StopAndBisect`]). An
    /// observer that always continues leaves the run bit-identical to
    /// [`Session::run_transient`] — observation never influences the
    /// solver.
    ///
    /// # Errors
    ///
    /// Propagates step failures (including bisection sub-steps).
    ///
    /// # Panics
    ///
    /// Panics if `n_steps == 0` or `t_end ≤ 0`.
    pub fn run_transient_observed(
        &mut self,
        t_end: f64,
        n_steps: usize,
        snapshot_times: &[f64],
        observer: &mut dyn StepObserver,
    ) -> Result<ObservedTransient, CoreError> {
        self.run_transient_impl(t_end, n_steps, snapshot_times, Some(observer))
    }

    fn run_transient_impl(
        &mut self,
        t_end: f64,
        n_steps: usize,
        snapshot_times: &[f64],
        mut observer: Option<&mut dyn StepObserver>,
    ) -> Result<ObservedTransient, CoreError> {
        assert!(n_steps > 0, "need at least one step");
        assert!(t_end > 0.0, "end time must be positive");
        let dt = t_end / n_steps as f64;
        let compiled = Arc::clone(&self.compiled);
        let layout = compiled.layout();
        let n_wires = self.wires.len();
        let n_total = layout.n_total();

        // Map snapshot times to step indices.
        let snap_indices: Vec<usize> = snapshot_times
            .iter()
            .map(|&t| ((t / dt).round() as usize).min(n_steps))
            .collect();

        self.begin_transient_run();

        let mut t_state = self.initial_temperature();
        let mut phi = vec![0.0; n_total];
        let mut solution = TransientSolution {
            times: Vec::with_capacity(n_steps + 1),
            wire_temperatures: vec![Vec::with_capacity(n_steps + 1); n_wires],
            wire_powers: vec![Vec::with_capacity(n_steps + 1); n_wires],
            field_power: Vec::with_capacity(n_steps + 1),
            picard_iterations: Vec::with_capacity(n_steps),
            linear_iterations: 0,
            snapshots: Vec::new(),
        };

        let record = |sol: &mut TransientSolution,
                      time: f64,
                      state: &[f64],
                      powers: &[f64],
                      fp: f64| {
            sol.times.push(time);
            for j in 0..n_wires {
                sol.wire_temperatures[j]
                    .push(layout.topology(j).average_temperature(state));
                sol.wire_powers[j].push(powers.get(j).copied().unwrap_or(0.0));
            }
            sol.field_power.push(fp);
        };

        record(&mut solution, 0.0, &t_state, &vec![0.0; n_wires], 0.0);
        if snap_indices.contains(&0) {
            solution.snapshots.push((0.0, t_state.clone()));
        }

        // Observer bookkeeping (allocated only when observing — the
        // unobserved path stays byte-for-byte the historical loop).
        let mut stopped_early = false;
        let mut crossing_time = None;
        let mut bisection_steps = 0usize;
        let mut wire_buf: Vec<f64> = Vec::new();
        let mut stop = false;
        if let Some(obs) = observer.as_deref_mut() {
            wire_buf.clear();
            for j in 0..n_wires {
                wire_buf.push(solution.wire_temperatures[j][0]);
            }
            let action = obs.observe(&StepRecord {
                step: 0,
                time: 0.0,
                dt: 0.0,
                wire_temperatures: &wire_buf,
                temperature: &t_state,
            });
            match action {
                ObserverAction::Continue => {}
                ObserverAction::Stop => stop = true,
                ObserverAction::StopAndBisect { .. } => {
                    // The initial state already violates the limit: the
                    // crossing is at t = 0, nothing to bisect.
                    crossing_time = Some(0.0);
                    stop = true;
                }
            }
            stopped_early = stop;
        }

        let mut steps_executed = 0usize;
        let max_halvings = self.compiled.options().recovery.max_dt_halvings;
        for step in 1..=n_steps {
            if stop {
                break;
            }
            let result = self
                .step_recovering(&t_state, dt, &mut phi, step, max_halvings)
                .map_err(|e| CoreError::StepFailed {
                    step,
                    time: dt * (step - 1) as f64,
                    source: Box::new(e),
                })?;
            steps_executed = step;
            let time = dt * step as f64;
            record(
                &mut solution,
                time,
                &result.temperature,
                &result.wire_powers,
                result.field_power,
            );
            solution.picard_iterations.push(result.picard_iterations);
            solution.linear_iterations += result.linear_iterations;
            if snap_indices.contains(&step) {
                solution.snapshots.push((time, result.temperature.clone()));
            }
            if let Some(obs) = observer.as_deref_mut() {
                wire_buf.clear();
                for j in 0..n_wires {
                    wire_buf.push(solution.wire_temperatures[j][step]);
                }
                let action = obs.observe(&StepRecord {
                    step,
                    time,
                    dt,
                    wire_temperatures: &wire_buf,
                    temperature: &result.temperature,
                });
                match action {
                    ObserverAction::Continue => {}
                    ObserverAction::Stop => {
                        stopped_early = true;
                        stop = true;
                    }
                    ObserverAction::StopAndBisect {
                        threshold,
                        bisections,
                    } => {
                        stopped_early = true;
                        stop = true;
                        let y_hi = wire_buf
                            .iter()
                            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
                        let y_lo = (0..n_wires)
                            .map(|j| solution.wire_temperatures[j][step - 1])
                            .fold(f64::NEG_INFINITY, f64::max);
                        // `t_state` still holds the step-start state here —
                        // the bracket the bisection re-steps from.
                        let (t_cross, substeps) = self.bisect_crossing(
                            &t_state,
                            time - dt,
                            dt,
                            y_lo,
                            y_hi,
                            threshold,
                            bisections,
                            &mut phi,
                            step,
                        )?;
                        crossing_time = Some(t_cross);
                        bisection_steps = substeps;
                    }
                }
            }
            t_state = result.temperature;
        }
        Ok(ObservedTransient {
            solution,
            steps_executed,
            bisection_steps,
            stopped_early,
            crossing_time,
        })
    }

    /// Invalidates the extrapolation history of any previous transient (the
    /// first step of a run must not extrapolate across runs) and rotates
    /// the warm-start trajectory: the previous run becomes this run's guess
    /// source. Every transient entry point calls this first.
    pub(crate) fn begin_transient_run(&mut self) {
        self.scratch.t_hist.clear();
        self.scratch.last_dt = 0.0;
        if self.warm.enabled {
            self.warm.traj_prev = std::mem::take(&mut self.warm.traj_cur);
        }
        self.begin_recovery_run();
    }

    /// Resets the per-run recovery state: the iteration budget restarts and
    /// the fault plan rewinds to its first solve.
    fn begin_recovery_run(&mut self) {
        self.budget_spent = 0;
        if let Some(f) = &self.fault {
            f.begin_run();
        }
    }

    /// [`Session::step`] behind the `dt`-halving rung of the recovery
    /// ladder: a retryable step failure (the solve-level rungs are already
    /// exhausted at this point) is redone as two implicit-Euler sub-steps of
    /// `dt/2` from the saved step-start state, recursively up to
    /// `halvings_left` levels. The electrical warm-start vector is restored
    /// before re-stepping so NaN contamination from the failed attempt
    /// cannot leak into the recovery path; the step-extrapolation predictor
    /// self-disables on the next full step because the recorded `last_dt` no
    /// longer matches.
    fn step_recovering(
        &mut self,
        t_prev: &[f64],
        dt: f64,
        phi_warm: &mut [f64],
        step_index: usize,
        halvings_left: usize,
    ) -> Result<StepResult, CoreError> {
        let phi_backup = if halvings_left > 0 {
            Some(phi_warm.to_vec())
        } else {
            None
        };
        match self.step(t_prev, dt, phi_warm, step_index) {
            Ok(r) => Ok(r),
            Err(e) if phi_backup.is_some() && step_error_is_retryable(&e) => {
                if let Some(phi0) = &phi_backup {
                    phi_warm.copy_from_slice(phi0);
                }
                self.counters.recovery.dt_halvings += 1;
                let half = 0.5 * dt;
                let first =
                    self.step_recovering(t_prev, half, phi_warm, step_index, halvings_left - 1)?;
                let second = self.step_recovering(
                    &first.temperature,
                    half,
                    phi_warm,
                    step_index,
                    halvings_left - 1,
                )?;
                self.counters.recovery.recovered_steps += 1;
                Ok(StepResult {
                    temperature: second.temperature,
                    potential: second.potential,
                    picard_iterations: first.picard_iterations + second.picard_iterations,
                    linear_iterations: first.linear_iterations + second.linear_iterations,
                    converged: first.converged && second.converged,
                    wire_powers: second.wire_powers,
                    field_power: second.field_power,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// `maxⱼ T_bw,j` of a full state vector (`-∞` without wires).
    fn max_wire_temperature_of(&self, state: &[f64]) -> f64 {
        let layout = self.compiled.layout();
        (0..self.wires.len())
            .map(|j| layout.topology(j).average_temperature(state))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Refines the first crossing of `maxⱼ T_bw,j = threshold` inside the
    /// step `[t_start, t_start + dt]` whose start state is `state_prev`
    /// (below the threshold) and whose end state reached `y_hi ≥ threshold`:
    /// time-bisection with one implicit-Euler sub-step per probe, then
    /// linear interpolation on the final bracket. Returns the crossing time
    /// and the number of sub-step solves spent.
    #[allow(clippy::too_many_arguments)]
    fn bisect_crossing(
        &mut self,
        state_prev: &[f64],
        t_start: f64,
        dt: f64,
        mut y_lo: f64,
        mut y_hi: f64,
        threshold: f64,
        bisections: usize,
        phi: &mut [f64],
        step_index: usize,
    ) -> Result<(f64, usize), CoreError> {
        let mut lo = 0.0f64;
        let mut hi = dt;
        let mut substeps = 0usize;
        for _ in 0..bisections {
            let mid = 0.5 * (lo + hi);
            if !(mid > lo && mid < hi) {
                break; // bracket exhausted floating-point resolution
            }
            let probe = self.step(state_prev, mid, phi, step_index)?;
            substeps += 1;
            let y_mid = self.max_wire_temperature_of(&probe.temperature);
            if y_mid >= threshold {
                hi = mid;
                y_hi = y_mid;
            } else {
                lo = mid;
                y_lo = y_mid;
            }
        }
        let fraction = if y_hi > y_lo {
            ((threshold - y_lo) / (y_hi - y_lo)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Ok((t_start + lo + fraction * (hi - lo), substeps))
    }

    /// The coupled Picard loop shared by [`Session::step`] (`dt = Some`)
    /// and [`Session::solve_stationary`] (`dt = None`).
    fn coupled_solve(
        &mut self,
        t_prev: &[f64],
        dt: Option<f64>,
        phi_warm: &mut [f64],
        step_index: usize,
    ) -> Result<StepResult, CoreError> {
        let n_total = self.compiled.layout().n_total();
        assert_eq!(t_prev.len(), n_total, "state length");
        let options = self.compiled.options().clone();
        let predict = self.begin_coupled(t_prev, dt);
        let mut linear_total = 0usize;
        let mut field_power = 0.0;
        let mut converged = false;
        let mut iterations = 0usize;
        let mut update = f64::INFINITY;

        let mut elec_solved = false;
        for k in 1..=options.picard_max_iter {
            iterations = k;
            if !elec_solved || options.resolve_electrical_every_picard {
                linear_total += self.solve_electrical(phi_warm)?;
                elec_solved = true;
            }
            field_power = self.heat_sources(phi_warm);
            linear_total += self.solve_thermal(t_prev, dt, predict && k == 1, step_index, k)?;
            update = self.picard_update_and_swap();
            if update <= options.picard_tol {
                converged = true;
                break;
            }
        }
        self.note_picard(iterations);
        if !converged && options.strict_picard {
            return Err(CoreError::PicardNotConverged {
                step: step_index,
                update,
            });
        }
        self.record_step_history(t_prev, dt);
        Ok(StepResult {
            temperature: self.scratch.t_star.clone(),
            potential: phi_warm.to_vec(),
            picard_iterations: iterations,
            linear_iterations: linear_total,
            converged,
            wire_powers: self.scratch.wire_powers.clone(),
            field_power,
        })
    }

    /// Solves the electrical subsystem at the lagged temperature
    /// `scratch.t_star`. `phi_warm` (full numbering) is used as the initial
    /// guess and updated in place with the solution. The lagged
    /// conductivities stay behind in the coefficient buffers for the
    /// heat-source evaluation.
    pub(crate) fn solve_electrical(&mut self, phi_warm: &mut [f64]) -> Result<usize, CoreError> {
        let Session {
            compiled,
            wires,
            drive_scale,
            elec_stamper,
            elec_solver,
            scratch,
            counters,
            fault,
            budget_spent,
            budget_override,
            ..
        } = self;
        let model = compiled.model();
        assembly::fill_sigma(model, &scratch.t_star, &mut scratch.coeff);

        if model.electric_dirichlet().is_empty() {
            // No drive: the potential is identically zero.
            phi_warm.fill(0.0);
            return Ok(0);
        }
        let Some(stamper) = elec_stamper.as_mut() else {
            // CompiledModel records the template whenever Dirichlet drives
            // exist, so this indicates a corrupted model.
            return Err(CoreError::InvalidModel(
                "electrical template missing for a driven model".into(),
            ));
        };
        assembly::stamp_electrical(
            model,
            compiled.layout(),
            wires,
            &scratch.t_star,
            &scratch.coeff,
            stamper,
        );
        let (a, b) = stamper.finish();
        compiled.elec_map().restrict_into(phi_warm, &mut scratch.x_red);
        let iterations = solve_reduced(
            compiled.options(),
            counters,
            elec_solver,
            Subsystem::Electrical,
            a,
            b,
            &mut scratch.x_red,
            fault.as_ref(),
            budget_spent,
            *budget_override,
        )?;
        // Expansion must insert the *scaled* Dirichlet potentials so the
        // heat-source evaluation sees the same drive the assembly condensed
        // against. `1.0 × v` is bitwise `v`, so the unscaled path stays
        // bit-identical.
        if *drive_scale == 1.0 {
            compiled.elec_map().expand_into(&scratch.x_red, phi_warm);
        } else {
            compiled
                .elec_map()
                .expand_scaled_into(&scratch.x_red, phi_warm, *drive_scale);
        }
        Ok(iterations)
    }

    /// Heat sources (W per DoF) from field Joule heating and wire
    /// self-heating into `scratch.q` / `scratch.wire_powers`; returns the
    /// total field Joule power. Uses the conductivities left in the
    /// coefficient buffers by the last electrical solve and the potential
    /// in `phi`.
    pub(crate) fn heat_sources(&mut self, phi: &[f64]) -> f64 {
        let Session {
            compiled,
            wires,
            scratch,
            ..
        } = self;
        let model = compiled.model();
        let grid = model.grid();
        let phi_grid = &phi[..grid.n_nodes()];
        // Nodal field heat into the grid prefix of q, then extend with zeros
        // for the wire-internal DoFs.
        match compiled.options().joule {
            JouleScheme::CellBased => etherm_fit::joule::joule_heat_cell_based_into(
                grid,
                &scratch.coeff.cell_sigma,
                phi_grid,
                &mut scratch.q,
            ),
            JouleScheme::EdgeBased => etherm_fit::joule::joule_heat_edge_based_into(
                grid,
                &scratch.coeff.m_sigma,
                phi_grid,
                &mut scratch.q,
            ),
        }
        let field_power: f64 = vector::sum(&scratch.q);
        scratch.q.resize(compiled.layout().n_total(), 0.0);
        scratch.wire_powers.clear();
        for (j, att) in wires.iter().enumerate() {
            let p = wire_joule_heat(
                &att.wire,
                compiled.layout().topology(j),
                &scratch.t_star,
                phi,
                &mut scratch.q,
            );
            scratch.wire_powers.push(p);
        }
        field_power
    }

    /// Assembles and solves the thermal system for one Picard iterate at
    /// the lagged temperature `scratch.t_star`, writing the new temperature
    /// to `scratch.t_new`.
    ///
    /// `dt = None` means stationary (no mass term); `t_prev` is the
    /// previous time level (ignored when stationary). In warm mode the CG
    /// initial guess is improved by transplanting the previous run's
    /// solution increment at the same `(step_index, picard_k)` position.
    fn solve_thermal(
        &mut self,
        t_prev: &[f64],
        dt: Option<f64>,
        use_predictor: bool,
        step_index: usize,
        picard_k: usize,
    ) -> Result<usize, CoreError> {
        self.assemble_thermal(t_prev, dt, use_predictor, step_index, picard_k)?;
        let Session {
            compiled,
            therm_stamper,
            therm_stationary_stamper,
            therm_solver,
            therm_stationary_solver,
            scratch,
            counters,
            fault,
            budget_spent,
            budget_override,
            ..
        } = self;
        let (stamper, cache, system) = if dt.is_some() {
            (&*therm_stamper, therm_solver, Subsystem::ThermalTransient)
        } else {
            (
                &*therm_stationary_stamper,
                therm_stationary_solver,
                Subsystem::ThermalStationary,
            )
        };
        let Some((a, b)) = stamper.assembled() else {
            return Err(CoreError::InvalidModel(
                "thermal system not assembled".into(),
            ));
        };
        let iterations = solve_reduced(
            compiled.options(),
            counters,
            cache,
            system,
            a,
            b,
            &mut scratch.x_red,
            fault.as_ref(),
            budget_spent,
            *budget_override,
        )?;
        self.accept_thermal(dt, step_index);
        Ok(iterations)
    }

    /// The assembly-and-guess half of [`Session::solve_thermal`]: stamps the
    /// thermal system for one Picard iterate at the lagged temperature
    /// `scratch.t_star` and leaves the CG initial guess in `scratch.x_red`.
    /// The assembled system is readable afterwards through
    /// [`Session::thermal_assembled`]; the batched ensemble path gathers one
    /// such system per panel column before a single block solve.
    pub(crate) fn assemble_thermal(
        &mut self,
        t_prev: &[f64],
        dt: Option<f64>,
        use_predictor: bool,
        step_index: usize,
        picard_k: usize,
    ) -> Result<(), CoreError> {
        let Session {
            compiled,
            wires,
            mass_diag,
            therm_stamper,
            therm_stationary_stamper,
            scratch,
            warm,
            ..
        } = self;
        let model = compiled.model();
        let layout = compiled.layout();
        let therm_map = compiled.therm_map();
        assembly::fill_lambda(model, &scratch.t_star, &mut scratch.coeff);

        let stamper = if dt.is_some() {
            therm_stamper
        } else {
            therm_stationary_stamper
        };
        assembly::stamp_thermal(
            model,
            layout,
            wires,
            &scratch.t_star,
            t_prev,
            dt,
            mass_diag,
            &scratch.q,
            &scratch.coeff,
            stamper,
        );
        // Compile the pattern on the first round and validate the stamping
        // sequence; the returned borrows are re-read via `assembled()`.
        let _ = stamper.finish();
        // CG initial guess: the lagged temperature, or — for the first
        // Picard iterate of a continuation step — the linear extrapolation
        // from the previous step. Warm mode improves on both with the
        // previous run's increment at the same position. A guess only
        // affects iteration counts, never the converged solution.
        if use_predictor {
            therm_map.restrict_into(&scratch.t_guess, &mut scratch.x_red);
        } else {
            therm_map.restrict_into(&scratch.t_star, &mut scratch.x_red);
        }
        let transient = dt.is_some();
        if transient && warm.enabled && step_index >= 1 {
            let prev_sk = warm
                .traj_prev
                .get(step_index - 1)
                .and_then(|v| v.get(picard_k - 1))
                .filter(|v| v.len() == scratch.x_red.len());
            if let Some(prev_sk) = prev_sk {
                if picard_k == 1 {
                    // x₀ = restrict(t_prev) + (ξ[s][1] − ξ[s−1][last]):
                    // the previous run's change over the same step, applied
                    // to this run's state. For step 1 both runs start from
                    // the identical initial state, so x₀ = ξ[1][1].
                    let prev_base = if step_index >= 2 {
                        warm.traj_prev.get(step_index - 2).and_then(|v| v.last())
                    } else {
                        None
                    };
                    therm_map.restrict_into(t_prev, &mut scratch.x_red);
                    match prev_base {
                        Some(pb) if pb.len() == scratch.x_red.len() => {
                            for i in 0..scratch.x_red.len() {
                                scratch.x_red[i] += prev_sk[i] - pb[i];
                            }
                        }
                        _ => scratch.x_red.copy_from_slice(prev_sk),
                    }
                } else {
                    // x₀ = x[s][k−1] + (ξ[s][k] − ξ[s][k−1]): transplant the
                    // previous run's Picard increment onto this iterate.
                    let prev_base = warm
                        .traj_prev
                        .get(step_index - 1)
                        .and_then(|v| v.get(picard_k - 2))
                        .filter(|v| v.len() == scratch.x_red.len());
                    if let Some(pb) = prev_base {
                        for i in 0..scratch.x_red.len() {
                            scratch.x_red[i] += prev_sk[i] - pb[i];
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The acceptance half of [`Session::solve_thermal`]: records the warm
    /// trajectory entry for the reduced solution in `scratch.x_red` and
    /// expands it to the full-numbering `scratch.t_new`.
    pub(crate) fn accept_thermal(&mut self, dt: Option<f64>, step_index: usize) {
        let Session {
            compiled,
            scratch,
            warm,
            ..
        } = self;
        if dt.is_some() && warm.enabled && step_index >= 1 {
            if warm.traj_cur.len() < step_index {
                warm.traj_cur.resize(step_index, Vec::new());
            }
            warm.traj_cur[step_index - 1].push(scratch.x_red.clone());
        }
        scratch.t_new.resize(compiled.layout().n_total(), 0.0);
        compiled.therm_map().expand_into(&scratch.x_red, &mut scratch.t_new);
    }

    /// Seeds the Picard state for one coupled solve: `t_star ← t_prev` and,
    /// for a continuation step with an unchanged `dt`, the extrapolated
    /// first-iterate thermal guess `t_guess ← 2·t_prev − t_hist`. Returns
    /// whether the predictor is valid.
    pub(crate) fn begin_coupled(&mut self, t_prev: &[f64], dt: Option<f64>) -> bool {
        {
            let s = &mut self.scratch;
            s.t_star.clear();
            s.t_star.extend_from_slice(t_prev);
        }
        let predict = match dt {
            Some(d) => self.scratch.t_hist.len() == t_prev.len() && self.scratch.last_dt == d,
            None => false,
        };
        if predict {
            let s = &mut self.scratch;
            s.t_guess.clear();
            s.t_guess
                .extend(t_prev.iter().zip(&s.t_hist).map(|(&a, &b)| 2.0 * a - b));
        }
        predict
    }

    /// Completes one Picard iterate: the relative update between the new
    /// and lagged temperature, then `t_star ↔ t_new` so `t_star` holds the
    /// accepted iterate.
    pub(crate) fn picard_update_and_swap(&mut self) -> f64 {
        let update = vector::rel_diff2(&self.scratch.t_new, &self.scratch.t_star, 1e-9);
        std::mem::swap(&mut self.scratch.t_star, &mut self.scratch.t_new);
        update
    }

    /// Charges `iterations` outer Picard iterations to the counters.
    pub(crate) fn note_picard(&mut self, iterations: usize) {
        self.counters.picard_iterations += iterations;
    }

    /// Records the step-start state and step size that validate the next
    /// step's extrapolated thermal guess (transient only).
    pub(crate) fn record_step_history(&mut self, t_prev: &[f64], dt: Option<f64>) {
        if let Some(d) = dt {
            let s = &mut self.scratch;
            s.t_hist.clear();
            s.t_hist.extend_from_slice(t_prev);
            s.last_dt = d;
        }
    }

    /// The transient thermal system assembled by the last
    /// [`Session::assemble_thermal`] round (`None` before the first).
    pub(crate) fn thermal_assembled(&self) -> Option<(&Csr, &[f64])> {
        self.therm_stamper.assembled()
    }

    /// The assembly half of [`Session::solve_electrical`]: conductivity
    /// averaging, stamping over the cached template, and the reduced CG
    /// initial guess (the restriction of `phi_warm` into `scratch.x_red`).
    /// Returns `false` when the model is undriven — the potential is then
    /// identically zero, `phi_warm` has been zeroed, and no solve is needed.
    pub(crate) fn assemble_electrical(
        &mut self,
        phi_warm: &mut [f64],
    ) -> Result<bool, CoreError> {
        let Session {
            compiled,
            wires,
            elec_stamper,
            scratch,
            ..
        } = self;
        let model = compiled.model();
        assembly::fill_sigma(model, &scratch.t_star, &mut scratch.coeff);
        if model.electric_dirichlet().is_empty() {
            phi_warm.fill(0.0);
            return Ok(false);
        }
        let Some(stamper) = elec_stamper.as_mut() else {
            return Err(CoreError::InvalidModel(
                "electrical template missing for a driven model".into(),
            ));
        };
        assembly::stamp_electrical(
            model,
            compiled.layout(),
            wires,
            &scratch.t_star,
            &scratch.coeff,
            stamper,
        );
        let _ = stamper.finish();
        compiled.elec_map().restrict_into(phi_warm, &mut scratch.x_red);
        Ok(true)
    }

    /// The electrical system assembled by the last
    /// [`Session::assemble_electrical`] round (`None` before the first, or
    /// for an undriven model).
    pub(crate) fn electrical_assembled(&self) -> Option<(&Csr, &[f64])> {
        self.elec_stamper.as_ref().and_then(|s| s.assembled())
    }

    /// The expansion half of [`Session::solve_electrical`]: scatters the
    /// block-solved reduced potential in `scratch.x_red` back into the full
    /// `phi_warm` (with the scaled Dirichlet drive) and charges the column's
    /// iterations to the counters and the recovery budget, mirroring what
    /// `solve_reduced` records on the scalar path.
    pub(crate) fn finish_electrical(&mut self, phi_warm: &mut [f64], iterations: usize) {
        let Session {
            compiled,
            drive_scale,
            scratch,
            counters,
            budget_spent,
            ..
        } = self;
        if *drive_scale == 1.0 {
            compiled.elec_map().expand_into(&scratch.x_red, phi_warm);
        } else {
            compiled
                .elec_map()
                .expand_scaled_into(&scratch.x_red, phi_warm, *drive_scale);
        }
        counters.electrical_iterations += iterations;
        counters.electrical_solves += 1;
        *budget_spent += iterations;
    }

    /// The reduced unknown vector of the current linear solve (the thermal
    /// CG initial guess after [`Session::assemble_thermal`]).
    pub(crate) fn x_red(&self) -> &[f64] {
        &self.scratch.x_red
    }

    /// Mutable access to the reduced unknowns: the batched path scatters
    /// its panel column back here before [`Session::accept_thermal`].
    pub(crate) fn x_red_mut(&mut self) -> &mut [f64] {
        &mut self.scratch.x_red
    }

    /// The lagged Picard temperature (after the final swap of a step this
    /// is the accepted step temperature).
    pub(crate) fn t_star(&self) -> &[f64] {
        &self.scratch.t_star
    }

    /// Joule power per wire from the last [`Session::heat_sources`] call.
    pub(crate) fn wire_powers_scratch(&self) -> &[f64] {
        &self.scratch.wire_powers
    }

    /// Charges one block-solved thermal column to the counters and the
    /// recovery iteration budget, mirroring what `solve_reduced` records on
    /// the scalar path.
    pub(crate) fn note_block_thermal_solve(&mut self, iterations: usize) {
        self.counters.thermal_iterations += iterations;
        self.counters.thermal_solves += 1;
        self.budget_spent += iterations;
    }

    /// Records one (re)build or reuse of the group-shared batched
    /// preconditioner (charged to the group's first session).
    pub(crate) fn note_shared_precond(&mut self, rebuilt: bool, coarse_dim: Option<usize>) {
        if rebuilt {
            self.counters.precond_rebuilds += 1;
        } else {
            self.counters.precond_reuses += 1;
        }
        if let Some(cd) = coarse_dim {
            self.counters.peak_coarse_dim = self.counters.peak_coarse_dim.max(cd);
        }
    }
}

/// Whether a step-level error may be repaired by redoing the step with a
/// smaller `dt`. Structural errors and the budget backstop are final.
fn step_error_is_retryable(e: &CoreError) -> bool {
    match e {
        CoreError::LinearSolveFailed { .. }
        | CoreError::NonFinite { .. }
        | CoreError::PicardNotConverged { .. } => true,
        CoreError::Numerics(ne) => numerics_error_is_retryable(ne),
        _ => false,
    }
}

/// Whether a solver error is transient enough for the solve-level rungs
/// (retry / refresh / downgrade) to be worth attempting.
fn numerics_error_is_retryable(e: &NumericsError) -> bool {
    matches!(
        e,
        NumericsError::Breakdown { .. }
            | NumericsError::NonFinite { .. }
            | NumericsError::NotConverged { .. }
    )
}

/// Errors [`CoreError::BudgetExhausted`] once the run's spent Krylov
/// iterations reach the policy's budget (`0` = unlimited).
fn check_budget(recovery: &RecoveryPolicy, spent: usize) -> Result<(), CoreError> {
    if recovery.linear_iteration_budget > 0 && spent >= recovery.linear_iteration_budget {
        return Err(CoreError::BudgetExhausted {
            budget: recovery.linear_iteration_budget,
            spent,
        });
    }
    Ok(())
}

/// Refreshes `cache`'s preconditioner in place from `a` — or (re)builds it
/// at the cache's current fallback kind when it is missing, when the
/// in-place refresh fails (pattern change or numeric breakdown with every
/// shift), or when a planned `RefreshFail` fault vetoes the refresh.
fn refresh_or_rebuild(
    options: &SolverOptions,
    counters: &mut SolveCounters,
    cache: &mut SubsystemCache,
    a: &Csr,
    fault: Option<&FaultInjector>,
) -> Result<(), NumericsError> {
    let kind = effective_kind(options, cache.fallback_level);
    match cache.precond.as_mut() {
        Some(p) => {
            let refresh_vetoed = fault.is_some_and(|f| f.refresh_fault());
            if refresh_vetoed || p.refresh(a).is_err() {
                *p = CachedPrecond::build_kind(kind, options, a)?;
            }
        }
        None => cache.precond = Some(CachedPrecond::build_kind(kind, options, a)?),
    }
    let coarse_dim = cache.precond.as_ref().and_then(|p| p.coarse_dim());
    cache.mark_rebuilt();
    counters.precond_rebuilds += 1;
    if let Some(nc) = coarse_dim {
        counters.peak_coarse_dim = counters.peak_coarse_dim.max(nc);
    }
    Ok(())
}

/// One escalation rung of the solve-level recovery ladder.
#[derive(Debug, Clone, Copy)]
enum Rung {
    /// Retry from the saved guess with the same configuration — repairs
    /// one-shot contamination bit-identically (nothing but the transient
    /// corruption differed).
    Retry,
    /// Force an in-place preconditioner refresh (or rebuild) first.
    Refresh,
    /// Downgrade the preconditioner kind one ladder level first.
    Fallback,
}

/// Solves one reduced SPD system with the subsystem's cached preconditioner
/// and workspace.
///
/// Lazy-refresh policy: the factorization is reused until either (a) it has
/// served [`SolverOptions::precond_max_reuses`] solves, or (b) a converged
/// solve needs more than [`SolverOptions::precond_refresh_factor`] times
/// the iterations of the first solve after the last (re)build — then it is
/// refreshed in place over the frozen pattern.
///
/// Failure handling follows [`RecoveryPolicy`]: retryable failures
/// (iteration cap, SPD breakdown, non-finite contamination) walk the
/// escalation ladder — plain retries, a forced refresh (always granted when
/// the factorization was stale, the historical safety net), then sticky
/// preconditioner downgrades — each restarting from the saved initial
/// guess. Every rung is recorded in the counters'
/// [`RecoveryLedger`]; structural errors and the iteration budget abort
/// immediately.
#[allow(clippy::too_many_arguments)]
fn solve_reduced(
    options: &SolverOptions,
    counters: &mut SolveCounters,
    cache: &mut SubsystemCache,
    system: Subsystem,
    a: &Csr,
    b: &[f64],
    x: &mut [f64],
    fault: Option<&FaultInjector>,
    budget_spent: &mut usize,
    budget_override: Option<usize>,
) -> Result<usize, CoreError> {
    let opts: CgOptions = options.linear;
    let mut recovery = options.recovery;
    if let Some(budget) = budget_override {
        recovery.linear_iteration_budget = budget;
    }
    check_budget(&recovery, *budget_spent)?;

    let mut fresh = if cache.precond.is_none() || cache.reuses >= options.precond_max_reuses {
        refresh_or_rebuild(options, counters, cache, a, fault)?;
        true
    } else {
        false
    };
    if !fresh {
        cache.reuses += 1;
        counters.precond_reuses += 1;
    }

    // Failed attempts may leave `x` contaminated (NaN poison); every rung
    // restarts from the guess saved here.
    cache.guess_backup.clear();
    cache.guess_backup.extend_from_slice(x);

    // Zero-cost clean path: the operator is wrapped only when the plan
    // targets this very solve.
    let faulty = fault.filter(|f| f.begin_solve());

    let run = |cache: &mut SubsystemCache, x: &mut [f64]| -> Result<SolveReport, CoreError> {
        let Some(p) = cache.precond.as_ref() else {
            // Unreachable: built or refreshed above and never cleared here.
            return Err(CoreError::InvalidModel(
                "preconditioner missing after build".into(),
            ));
        };
        let report = if let Some(inj) = faulty {
            inj.begin_attempt();
            if options.n_threads > 1 {
                let op = ParSpmv::new(a, options.n_threads);
                let fop = FaultyLinOp::new(&op, inj);
                pcg_with(&fop, b, x, p, &opts, &mut cache.ws)
            } else {
                let fop = FaultyLinOp::new(a, inj);
                pcg_with(&fop, b, x, p, &opts, &mut cache.ws)
            }
        } else if options.n_threads > 1 {
            let op = ParSpmv::new(a, options.n_threads);
            pcg_with(&op, b, x, p, &opts, &mut cache.ws)
        } else {
            pcg_with(a, b, x, p, &opts, &mut cache.ws)
        };
        report.map_err(CoreError::from)
    };

    // Static escalation plan: retries, then a refresh (always granted when
    // the factorization was stale — the historical stale-retry safety net),
    // then one rung per remaining downgrade level.
    let mut rungs: Vec<Rung> = Vec::new();
    for _ in 0..recovery.max_retries {
        rungs.push(Rung::Retry);
    }
    if recovery.forced_refresh || !fresh {
        rungs.push(Rung::Refresh);
    }
    if recovery.precond_fallback {
        let mut kind = effective_kind(options, cache.fallback_level);
        while let Some(next) = next_fallback(kind) {
            rungs.push(Rung::Fallback);
            kind = next;
        }
    }

    let mut rungs = rungs.into_iter();
    let mut escalated = false;
    let mut outcome = run(cache, x);
    let report = loop {
        let failure = match outcome {
            Ok(r) if r.converged => break r,
            Ok(r) => {
                *budget_spent += r.iterations;
                CoreError::LinearSolveFailed {
                    system: system.name(),
                    iterations: r.iterations,
                    residual: r.residual,
                }
            }
            Err(CoreError::Numerics(e)) if numerics_error_is_retryable(&e) => {
                CoreError::Numerics(e)
            }
            Err(e) => return Err(e),
        };
        let Some(rung) = rungs.next() else {
            // Ladder exhausted: enrich the final error with subsystem
            // context.
            return Err(match failure {
                CoreError::Numerics(NumericsError::NonFinite { detail, .. }) => {
                    CoreError::NonFinite {
                        system: system.name(),
                        detail,
                    }
                }
                e => e,
            });
        };
        check_budget(&recovery, *budget_spent)?;
        x.copy_from_slice(&cache.guess_backup);
        escalated = true;
        match rung {
            Rung::Retry => counters.recovery.solve_retries += 1,
            Rung::Refresh => {
                refresh_or_rebuild(options, counters, cache, a, fault)?;
                fresh = true;
                counters.recovery.forced_refreshes += 1;
            }
            Rung::Fallback => {
                cache.fallback_level += 1;
                cache.precond = None;
                refresh_or_rebuild(options, counters, cache, a, fault)?;
                fresh = true;
                counters.recovery.precond_fallbacks += 1;
            }
        }
        outcome = run(cache, x);
    };

    *budget_spent += report.iterations;
    if escalated {
        counters.recovery.recovered_solves += 1;
    }
    if system == Subsystem::Electrical {
        counters.electrical_iterations += report.iterations;
        counters.electrical_solves += 1;
    } else {
        counters.thermal_iterations += report.iterations;
        counters.thermal_solves += 1;
    }

    match cache.baseline_iters {
        None => cache.baseline_iters = Some(report.iterations.max(1)),
        Some(base) => {
            let degraded =
                report.iterations as f64 > options.precond_refresh_factor * base as f64;
            if degraded && !fresh {
                // Refresh eagerly so the *next* solve starts from current
                // values.
                refresh_or_rebuild(options, counters, cache, a, fault)?;
            }
        }
    }
    Ok(report.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ElectrothermalModel;
    use etherm_fit::boundary::ThermalBoundary;
    use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
    use etherm_materials::{Material, MaterialTable, TemperatureModel};

    /// A copper bar 1 × 0.1 × 0.1 mm, 4×1×1 cells, driven by ±V on its ends.
    fn bar_model(v: f64) -> ElectrothermalModel {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1e-3, 4).unwrap(),
            Axis::uniform(0.0, 1e-4, 1).unwrap(),
            Axis::uniform(0.0, 1e-4, 1).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(Material::new(
            "linear copper",
            TemperatureModel::Constant(5.8e7),
            TemperatureModel::Constant(398.0),
            3.45e6,
        ));
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let nodes_at = |model: &ElectrothermalModel, x: f64| -> Vec<usize> {
            (0..model.grid().n_nodes())
                .filter(|&n| (model.grid().node_position(n).0 - x).abs() < 1e-12)
                .collect()
        };
        let left = nodes_at(&model, 0.0);
        let right = nodes_at(&model, 1e-3);
        model.set_electric_potential(&left, v);
        model.set_electric_potential(&right, 0.0);
        model.set_thermal_boundary(ThermalBoundary::convective(1000.0, 300.0));
        model
    }

    fn session(v: f64) -> Session {
        let compiled = CompiledModel::compile(bar_model(v), SolverOptions::default()).unwrap();
        Session::new(Arc::new(compiled))
    }

    #[test]
    fn electrical_bar_solution_is_linear() {
        // R = L/(σA) = 1e-3/(5.8e7·1e-8) = 1.724 mΩ; with V = 1 mV the
        // dissipated power is V²/R ≈ 0.58 mW.
        let mut s = session(1e-3);
        let t0 = s.initial_temperature();
        let mut phi = vec![0.0; s.compiled().layout().n_total()];
        s.scratch.t_star.clear();
        s.scratch.t_star.extend_from_slice(&t0);
        s.solve_electrical(&mut phi).unwrap();
        let grid_n = s.compiled().model().grid().n_nodes();
        for n in 0..grid_n {
            let x = s.compiled().model().grid().node_position(n).0;
            let expect = 1e-3 * (1.0 - x / 1e-3);
            assert!((phi[n] - expect).abs() < 1e-9, "node {n}");
        }
        let fp = s.heat_sources(&phi);
        let r = 1e-3 / (5.8e7 * 1e-8);
        let expect_p = 1e-6 / r;
        assert!((fp - expect_p).abs() < 1e-6 * expect_p, "{fp} vs {expect_p}");
    }

    #[test]
    fn drive_scale_scales_linear_electrical_solution() {
        // Constant-σ bar: the electrical system is exactly linear, so a
        // half-scale drive halves the potential everywhere; restoring the
        // scale to 1 reproduces the original solve bit-for-bit.
        let mut s = session(1e-3);
        let t0 = s.initial_temperature();
        s.scratch.t_star.clear();
        s.scratch.t_star.extend_from_slice(&t0);
        let n_total = s.compiled().layout().n_total();
        let solve = |s: &mut Session| {
            let mut phi = vec![0.0; n_total];
            s.solve_electrical(&mut phi).unwrap();
            phi
        };
        let phi_full = solve(&mut s);
        s.set_drive_scale(0.5).unwrap();
        assert_eq!(s.drive_scale(), 0.5);
        let phi_half = solve(&mut s);
        let grid_n = s.compiled().model().grid().n_nodes();
        for n in 0..grid_n {
            assert!(
                (phi_half[n] - 0.5 * phi_full[n]).abs() < 1e-12,
                "node {n}: {} vs {}",
                phi_half[n],
                0.5 * phi_full[n]
            );
        }
        // Quarter power at half drive (P = V²/R).
        let p_full = {
            s.set_drive_scale(1.0).unwrap();
            let phi = solve(&mut s);
            s.heat_sources(&phi)
        };
        s.set_drive_scale(0.5).unwrap();
        let phi = solve(&mut s);
        let p_half = s.heat_sources(&phi);
        assert!((p_half - 0.25 * p_full).abs() < 1e-9 * p_full);
        // Scale 1 restores the nominal solve bit-for-bit.
        s.set_drive_scale(1.0).unwrap();
        assert_eq!(solve(&mut s), phi_full);
    }

    #[test]
    fn invalid_drive_scale_rejected() {
        let mut s = session(1e-3);
        assert!(s.set_drive_scale(f64::NAN).is_err());
        assert!(s.set_drive_scale(-1.0).is_err());
        assert!(s.set_drive_scale(f64::INFINITY).is_err());
        assert_eq!(s.drive_scale(), 1.0);
        assert!(s.set_drive_scale(0.0).is_ok());
    }

    #[test]
    fn drive_scale_survives_reset() {
        // Like wire lengths, the drive scale is a parameter, not solver
        // state: reset() must keep it.
        let mut s = session(1e-3);
        s.set_drive_scale(2.0).unwrap();
        let a = s.run_transient(5.0, 5, &[5.0]).unwrap();
        s.reset();
        assert_eq!(s.drive_scale(), 2.0);
        let b = s.run_transient(5.0, 5, &[5.0]).unwrap();
        assert_eq!(a.snapshots[0].1, b.snapshots[0].1);
        // Double drive heats more than nominal.
        let mut nominal = session(1e-3);
        let c = nominal.run_transient(5.0, 5, &[5.0]).unwrap();
        let hot: f64 = a.snapshots[0].1.iter().sum();
        let cold: f64 = c.snapshots[0].1.iter().sum();
        assert!(hot > cold + 1.0, "scaled {hot} vs nominal {cold}");
    }

    #[test]
    fn session_transient_matches_fresh_session_bitwise() {
        // Two runs on one session (exact mode, reset between) must equal a
        // fresh session's runs bit-for-bit.
        let mut a = session(1e-3);
        let r1 = a.run_transient(10.0, 10, &[10.0]).unwrap();
        a.reset();
        let r2 = a.run_transient(10.0, 10, &[10.0]).unwrap();
        let mut b = session(1e-3);
        let r3 = b.run_transient(10.0, 10, &[10.0]).unwrap();
        assert_eq!(r1.snapshots[0].1, r2.snapshots[0].1);
        assert_eq!(r1.snapshots[0].1, r3.snapshots[0].1);
        assert_eq!(r1.wire_temperatures, r3.wire_temperatures);
    }

    #[test]
    fn warm_start_stays_within_solver_tolerance() {
        let mut s = session(1e-3);
        let exact = s.run_transient(10.0, 10, &[10.0]).unwrap();
        s.reset();
        s.set_warm_start(true);
        let w1 = s.run_transient(10.0, 10, &[10.0]).unwrap();
        // First warm run has no trajectory yet: identical to exact.
        assert_eq!(exact.snapshots[0].1, w1.snapshots[0].1);
        // Second warm run uses the recorded trajectory; within tolerance.
        let w2 = s.run_transient(10.0, 10, &[10.0]).unwrap();
        let diff = vector::max_abs_diff(&exact.snapshots[0].1, &w2.snapshots[0].1);
        assert!(diff < 1e-6, "warm start moved the physics by {diff} K");
    }

    #[test]
    fn fork_reproduces_parent_behavior() {
        let mut s = session(1e-3);
        let _ = s.run_transient(5.0, 5, &[]).unwrap();
        let mut f = s.fork();
        let a = s.run_transient(5.0, 5, &[5.0]).unwrap();
        let b = f.run_transient(5.0, 5, &[5.0]).unwrap();
        assert_eq!(a.snapshots[0].1, b.snapshots[0].1);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut s = session(1e-3);
        let _ = s.run_transient(5.0, 5, &[]).unwrap();
        let c = s.counters();
        assert!(c.thermal_solves > 0 && c.picard_iterations > 0);
        let mut merged = SolveCounters::default();
        merged.merge(&c);
        merged.merge(&c);
        assert_eq!(merged.thermal_solves, 2 * c.thermal_solves);
        assert_eq!(merged.picard_iterations, 2 * c.picard_iterations);
        assert_eq!(merged.peak_coarse_dim, c.peak_coarse_dim);
        s.reset_counters();
        assert_eq!(s.counters(), SolveCounters::default());
    }
}
