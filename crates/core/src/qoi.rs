//! Quantities of interest extracted from solutions.
//!
//! The paper's QoI is the wire temperature `T_bw,j = Xⱼᵀ T` (Eq. 5); across
//! Monte Carlo samples the expectation `E_j(t)` is formed per wire and the
//! envelope `E_max(t) = maxⱼ E_j(t)` (Eq. 7) is reported in Fig. 7. The
//! expectation lives in the UQ layer; this module provides the
//! deterministic extractors plus the spatial-field slicing used by Fig. 8.

use etherm_grid::Grid3;

/// A 2D temperature slice through the grid at fixed `z = z(k)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSlice {
    /// Number of samples in x.
    pub nx: usize,
    /// Number of samples in y.
    pub ny: usize,
    /// x coordinates (length `nx`).
    pub xs: Vec<f64>,
    /// y coordinates (length `ny`).
    pub ys: Vec<f64>,
    /// Values in row-major order (`iy * nx + ix`).
    pub values: Vec<f64>,
}

impl FieldSlice {
    /// Value at `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny, "FieldSlice::at out of range");
        self.values[iy * self.nx + ix]
    }

    /// Minimum and maximum value.
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Index `(ix, iy)` and value of the maximum entry.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn argmax(&self) -> (usize, usize, f64) {
        let (mut bi, mut bv) = (0usize, f64::NEG_INFINITY);
        for (i, &v) in self.values.iter().enumerate() {
            if v > bv {
                bi = i;
                bv = v;
            }
        }
        (bi % self.nx, bi / self.nx, bv)
    }
}

/// Extracts the nodal-field slice at z-layer `k` from a full state vector
/// (grid part only; wire-internal DoFs are ignored).
///
/// # Panics
///
/// Panics if `k` exceeds the z node count or the state is shorter than the
/// grid.
pub fn field_slice_z(grid: &Grid3, state: &[f64], k: usize) -> FieldSlice {
    let (nx, ny, nz) = grid.node_dims();
    assert!(k < nz, "slice layer {k} out of range ({nz} layers)");
    assert!(state.len() >= grid.n_nodes(), "state shorter than grid");
    let mut values = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            values.push(state[grid.node_index(i, j, k)]);
        }
    }
    FieldSlice {
        nx,
        ny,
        xs: grid.x().coords().to_vec(),
        ys: grid.y().coords().to_vec(),
        values,
    }
}

/// Slice at the z coordinate nearest to `z`.
pub fn field_slice_at_z(grid: &Grid3, state: &[f64], z: f64) -> FieldSlice {
    field_slice_z(grid, state, grid.z().nearest_node(z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_grid::Axis;

    fn grid() -> Grid3 {
        Grid3::new(
            Axis::uniform(0.0, 2.0, 2).unwrap(),
            Axis::uniform(0.0, 3.0, 3).unwrap(),
            Axis::uniform(0.0, 1.0, 1).unwrap(),
        )
    }

    #[test]
    fn slice_extracts_layer() {
        let g = grid();
        // State = node z value + node x value.
        let state: Vec<f64> = (0..g.n_nodes())
            .map(|n| {
                let (x, _, z) = g.node_position(n);
                x + 100.0 * z
            })
            .collect();
        let s0 = field_slice_z(&g, &state, 0);
        assert_eq!((s0.nx, s0.ny), (3, 4));
        assert_eq!(s0.at(0, 0), 0.0);
        assert_eq!(s0.at(2, 0), 2.0);
        let s1 = field_slice_z(&g, &state, 1);
        assert_eq!(s1.at(0, 0), 100.0);
        assert_eq!(s1.range(), (100.0, 102.0));
        assert_eq!(s1.argmax().2, 102.0);
    }

    #[test]
    fn slice_by_coordinate() {
        let g = grid();
        let state: Vec<f64> = (0..g.n_nodes())
            .map(|n| g.node_position(n).2)
            .collect();
        let s = field_slice_at_z(&g, &state, 0.9);
        assert!(s.values.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn slice_ignores_wire_dofs() {
        let g = grid();
        let mut state: Vec<f64> = vec![1.0; g.n_nodes()];
        state.push(999.0); // wire internal DoF appended
        let s = field_slice_z(&g, &state, 0);
        assert!(s.values.iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_layer_panics() {
        let g = grid();
        let state = vec![0.0; g.n_nodes()];
        let _ = field_slice_z(&g, &state, 5);
    }
}
