//! Shared assembly routines.
//!
//! The exact stamping sequences of the three reduced systems live here and
//! are used twice: once by [`crate::CompiledModel`] to *record* the frozen
//! CSR patterns at compile time, and on every Picard iterate by
//! [`crate::Session`] to *refill* values over those patterns. Keeping both
//! callers on one code path guarantees the structural contract of
//! `CachedStamper` (identical call sequence every round) can never drift.

use crate::layout::DofLayout;
use crate::model::{ElectrothermalModel, WireAttachment};
use etherm_bondwire::stamp::{stamp_wire, WirePhysics};
use etherm_fit::matrices::{
    cell_property_into, cell_temperatures_into, edge_material_diagonal_into, Property,
};
use etherm_fit::CachedStamper;

/// Buffers for the per-iterate material-coefficient evaluation (cell
/// temperatures, conductivities and edge diagonals), allocation-free after
/// the first fill.
#[derive(Debug, Clone, Default)]
pub(crate) struct CoeffBufs {
    /// Per-cell mean temperature.
    pub cell_t: Vec<f64>,
    /// Per-cell electrical conductivity at the lagged temperature.
    pub cell_sigma: Vec<f64>,
    /// Edge conductance diagonal `Mσ`.
    pub m_sigma: Vec<f64>,
    /// Per-cell thermal conductivity at the lagged temperature.
    pub cell_lambda: Vec<f64>,
    /// Edge conductance diagonal `Mλ`.
    pub m_lambda: Vec<f64>,
}

/// Evaluates σ(T★) per cell and the edge conductance diagonal `Mσ` into
/// `bufs` (`cell_t`, `cell_sigma`, `m_sigma`).
pub(crate) fn fill_sigma(model: &ElectrothermalModel, t_star: &[f64], bufs: &mut CoeffBufs) {
    let grid = model.grid();
    let t_grid = &t_star[..grid.n_nodes()];
    cell_temperatures_into(grid, t_grid, &mut bufs.cell_t);
    cell_property_into(
        grid,
        model.paint(),
        model.materials(),
        &bufs.cell_t,
        Property::Electrical,
        &mut bufs.cell_sigma,
    );
    edge_material_diagonal_into(grid, &bufs.cell_sigma, &mut bufs.m_sigma);
}

/// Evaluates λ(T★) per cell and the edge conductance diagonal `Mλ` into
/// `bufs` (`cell_t`, `cell_lambda`, `m_lambda`).
pub(crate) fn fill_lambda(model: &ElectrothermalModel, t_star: &[f64], bufs: &mut CoeffBufs) {
    let grid = model.grid();
    let t_grid = &t_star[..grid.n_nodes()];
    cell_temperatures_into(grid, t_grid, &mut bufs.cell_t);
    cell_property_into(
        grid,
        model.paint(),
        model.materials(),
        &bufs.cell_t,
        Property::Thermal,
        &mut bufs.cell_lambda,
    );
    edge_material_diagonal_into(grid, &bufs.cell_lambda, &mut bufs.m_lambda);
}

/// Stamps the electrical system (grid edges + wire chains) for one Picard
/// iterate at the lagged temperature `t_star`. `bufs.m_sigma` must already
/// hold the edge conductances (see [`fill_sigma`]). Begins a new round on
/// `stamper`; the caller finishes it.
pub(crate) fn stamp_electrical(
    model: &ElectrothermalModel,
    layout: &DofLayout,
    wires: &[WireAttachment],
    t_star: &[f64],
    bufs: &CoeffBufs,
    stamper: &mut CachedStamper,
) {
    let grid = model.grid();
    stamper.begin();
    for e in 0..grid.n_edges() {
        let (a, b) = grid.edge_endpoints(e);
        stamper.add_conductance(a, b, bufs.m_sigma[e]);
    }
    for (j, att) in wires.iter().enumerate() {
        stamp_wire(
            &att.wire,
            layout.topology(j),
            t_star,
            WirePhysics::Electrical,
            &mut *stamper,
        );
    }
}

/// Stamps the thermal system (grid edges, wire chains, boundary, mass term
/// and heat-source right-hand side) for one Picard iterate at the lagged
/// temperature `t_star`. `dt = None` omits the mass stamps (stationary
/// pattern). `bufs.m_lambda` must already hold the edge conductances (see
/// [`fill_lambda`]). Begins a new round on `stamper`; the caller finishes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stamp_thermal(
    model: &ElectrothermalModel,
    layout: &DofLayout,
    wires: &[WireAttachment],
    t_star: &[f64],
    t_prev: &[f64],
    dt: Option<f64>,
    mass_diag: &[f64],
    q: &[f64],
    bufs: &CoeffBufs,
    stamper: &mut CachedStamper,
) {
    let grid = model.grid();
    stamper.begin();
    for e in 0..grid.n_edges() {
        let (a, b) = grid.edge_endpoints(e);
        stamper.add_conductance(a, b, bufs.m_lambda[e]);
    }
    for (j, att) in wires.iter().enumerate() {
        stamp_wire(
            &att.wire,
            layout.topology(j),
            t_star,
            WirePhysics::Thermal,
            &mut *stamper,
        );
    }
    model
        .thermal_boundary()
        .stamp(grid, &t_star[..grid.n_nodes()], &mut *stamper);
    if let Some(dt) = dt {
        for i in 0..layout.n_total() {
            let m = mass_diag[i] / dt;
            if m != 0.0 {
                stamper.add_diag(i, m);
                stamper.add_rhs(i, m * t_prev[i]);
            }
        }
    }
    for (i, &qi) in q.iter().enumerate() {
        if qi != 0.0 {
            stamper.add_rhs(i, qi);
        }
    }
}
