//! The ensemble engine: evaluate one compiled model for many parameter
//! samples across worker threads, each with a long-lived [`Session`].
//!
//! This is the execution layer of a UQ campaign (paper §IV): the model is
//! compiled once, every worker thread owns one session, and the samples are
//! split into contiguous index chunks — the same deterministic scheme as
//! `etherm_uq::run_monte_carlo_parallel`, so outputs are merged in sample
//! order and the result is independent of scheduling. In the default exact
//! mode each sample starts from a [`Session::reset`], making the outputs
//! *bit-identical* to a fresh simulator per sample (and therefore identical
//! for any `n_threads`). Warm mode keeps sessions hot across the samples of
//! a chunk: preconditioners are refreshed instead of rebuilt and the
//! thermal CG solves warm-start from the previous sample's trajectory —
//! faster, with QoIs equal within the inner solver tolerance.

use crate::batch::BatchSession;
use crate::compiled::CompiledModel;
use crate::error::CoreError;
use crate::session::{Session, SolveCounters};
use crate::solution::TransientSolution;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// One evaluation recipe of a UQ campaign: how a parameter sample is
/// applied to a session and which quantities of interest come back.
///
/// Implementations must be [`Sync`]: one instance is shared by all worker
/// threads.
pub trait Scenario: Sync {
    /// Applies one parameter sample to the session (e.g. sets the sampled
    /// wire lengths). Called before every [`Scenario::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid parameters; the error aborts the
    /// ensemble run (first error by sample index wins).
    fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError>;

    /// Runs the simulation on the prepared session and extracts the QoI
    /// vector. The output length must be identical across samples.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError>;

    /// [`Scenario::apply`] with the sample's global index — override to
    /// make per-sample-index decisions (e.g. a fault campaign installing a
    /// different [`etherm_numerics::solvers::FaultPlan`] per sample). The
    /// default forwards to [`Scenario::apply`].
    ///
    /// # Errors
    ///
    /// See [`Scenario::apply`].
    fn apply_indexed(
        &self,
        session: &mut Session,
        sample: &[f64],
        index: usize,
    ) -> Result<(), CoreError> {
        let _ = index;
        self.apply(session, sample)
    }
}

/// A [`Scenario`] whose evaluation is the standard transient run — the
/// shape the batched fast path can drive in lock-step across a panel of
/// samples.
///
/// [`run_ensemble_batched`] cannot treat [`Scenario::evaluate`] as a black
/// box (it must own the time loop to fuse the per-step thermal solves), so
/// batchable scenarios expose the transient parameters and the QoI
/// extraction separately. [`Scenario::apply`] is inherited unchanged.
pub trait BatchScenario: Scenario {
    /// End time of the transient (s).
    fn t_end(&self) -> f64;

    /// Number of implicit-Euler steps.
    fn n_steps(&self) -> usize;

    /// Extracts the QoI vector from one sample's solution. Must match what
    /// [`Scenario::evaluate`] returns for the same run.
    fn qoi(&self, solution: &TransientSolution) -> Vec<f64>;
}

/// What [`run_ensemble`] does when a sample fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Abort the run on the first failure: the lowest-index error is
    /// reported (wrapped in [`CoreError::EnsembleFailed`]) and the other
    /// workers stop at their next sample boundary.
    #[default]
    Abort,
    /// Quarantine failed samples and keep going: their errors are collected
    /// in [`EnsembleResult::failures`], their output slot stays empty, and
    /// the remaining samples are evaluated normally (bit-identical to a run
    /// without the bad samples, for any thread count). More than
    /// `max_failures` failures abort the run like [`FailurePolicy::Abort`]
    /// — the backstop against a systematically broken campaign.
    Quarantine {
        /// Failure tolerance: exceeding it aborts the run.
        max_failures: usize,
    },
}

/// Options of [`run_ensemble`].
#[derive(Debug, Clone, Copy)]
pub struct EnsembleOptions {
    /// Worker threads (each owns one [`Session`]); samples are split into
    /// contiguous chunks of `ceil(n / n_threads)`.
    pub n_threads: usize,
    /// Keep sessions warm across the samples of a chunk (see the module
    /// docs). Off by default: every sample is bit-identical to a fresh
    /// simulator. Warm workers each hold two guess trajectories (see
    /// [`Session::set_warm_start`] for the memory cost — roughly
    /// `2 · steps · Picard-iterates · n_reduced` doubles per worker).
    pub warm_start: bool,
    /// Serialized progress callback `(samples_done, total)`: called on the
    /// coordinating thread as results are merged in sample order, so
    /// output never interleaves regardless of `n_threads`.
    pub progress: Option<fn(usize, usize)>,
    /// What to do when a sample fails (default: abort the run).
    pub failure_policy: FailurePolicy,
}

impl Default for EnsembleOptions {
    fn default() -> Self {
        EnsembleOptions {
            n_threads: 1,
            warm_start: false,
            progress: None,
            failure_policy: FailurePolicy::default(),
        }
    }
}

/// One quarantined sample of an ensemble run.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleFailure {
    /// Global sample index.
    pub sample: usize,
    /// The error that quarantined it.
    pub error: CoreError,
}

/// Results of an ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    /// QoI vector per sample, in sample order. Quarantined samples hold an
    /// empty vector (see [`EnsembleResult::failures`]).
    pub outputs: Vec<Vec<f64>>,
    /// Solve counters merged over all worker sessions (sample-order
    /// independent: sums and maxima).
    pub counters: SolveCounters,
    /// Quarantined samples in sample order (empty under
    /// [`FailurePolicy::Abort`], which errors instead).
    pub failures: Vec<SampleFailure>,
}

/// Evaluates `scenario` for every sample in `samples` and returns the QoIs
/// in sample order plus the merged solve counters.
///
/// # Errors
///
/// Under [`FailurePolicy::Abort`] (the default), any sample failure aborts
/// the run with [`CoreError::EnsembleFailed`] wrapping the error of the
/// failing sample with the smallest index; other workers stop at their next
/// sample boundary and the abandoned count is reported in the error. Under
/// [`FailurePolicy::Quarantine`] failures up to `max_failures` are
/// collected in [`EnsembleResult::failures`] instead — the failing worker
/// resets its session (clearing any NaN contamination) and continues with
/// its next sample, so the surviving outputs are bit-identical to a run
/// without the bad samples, for any thread count.
///
/// # Panics
///
/// Panics if `options.n_threads == 0` or a worker thread panics.
pub fn run_ensemble<S: Scenario>(
    compiled: &Arc<CompiledModel>,
    scenario: &S,
    samples: &[Vec<f64>],
    options: &EnsembleOptions,
) -> Result<EnsembleResult, CoreError> {
    assert!(options.n_threads > 0, "run_ensemble: need ≥ 1 thread");
    let n = samples.len();
    if n == 0 {
        return Ok(EnsembleResult {
            outputs: Vec::new(),
            counters: SolveCounters::default(),
            failures: Vec::new(),
        });
    }
    let chunk = n.div_ceil(options.n_threads).max(1);
    let max_failures = match options.failure_policy {
        FailurePolicy::Abort => 0,
        FailurePolicy::Quarantine { max_failures } => max_failures,
    };
    // Cooperative cancellation: raised by a failing worker (abort policy)
    // or by the coordinator (quarantine overflow); workers check it at each
    // sample boundary. Never raised while a quarantine run stays within its
    // failure tolerance, so such runs attempt every sample — the property
    // that makes their outcome independent of the thread count.
    let cancel = AtomicBool::new(false);

    type Message = (usize, Result<Vec<f64>, CoreError>);
    let (tx, rx) = mpsc::channel::<Message>();
    let (slots, failures, counters) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, block) in samples.chunks(chunk).enumerate() {
            let tx = tx.clone();
            let cancel = &cancel;
            handles.push(scope.spawn(move || {
                let mut session = Session::new(Arc::clone(compiled));
                session.set_warm_start(options.warm_start);
                for (k, sample) in block.iter().enumerate() {
                    if cancel.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = c * chunk + k;
                    if !options.warm_start {
                        session.reset();
                    }
                    let result = scenario
                        .apply_indexed(&mut session, sample, i)
                        .and_then(|()| scenario.evaluate(&mut session));
                    let failed = result.is_err();
                    if failed {
                        if max_failures == 0 {
                            cancel.store(true, Ordering::Relaxed);
                        } else {
                            // Quarantine: scrub any solver-state
                            // contamination (NaN-poisoned guesses, degraded
                            // preconditioners) before the next sample.
                            session.reset();
                        }
                    }
                    if tx.send((i, result)).is_err() || (failed && max_failures == 0) {
                        break;
                    }
                }
                session.counters()
            }));
        }
        drop(tx);

        // Merge in sample order *while the workers run*: results stream in
        // as they complete and the serialized progress callback fires as
        // the ordered frontier advances. Failed samples count as processed
        // (their slot is an empty vector) so the frontier never stalls.
        let mut slots: Vec<Option<Vec<f64>>> = (0..n).map(|_| None).collect();
        let mut failures: Vec<SampleFailure> = Vec::new();
        let mut done = 0usize;
        for (i, result) in rx {
            let y = match result {
                Ok(y) => y,
                Err(e) => {
                    failures.push(SampleFailure {
                        sample: i,
                        error: e,
                    });
                    if failures.len() > max_failures {
                        cancel.store(true, Ordering::Relaxed);
                    }
                    Vec::new()
                }
            };
            slots[i] = Some(y);
            while done < n && slots[done].is_some() {
                done += 1;
                if let Some(progress) = options.progress {
                    progress(done, n);
                }
            }
        }
        let counters: Vec<SolveCounters> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(c) => c,
                // Re-raise the worker's own panic payload, not a new one.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        (slots, failures, counters)
    });

    let mut failures = failures;
    failures.sort_by_key(|f| f.sample);
    if failures.len() > max_failures {
        let abandoned = slots.iter().filter(|s| s.is_none()).count();
        let n_failures = failures.len();
        // Sorted: the lowest-index failure leads.
        let Some(first) = failures.into_iter().next() else {
            return Err(CoreError::InvalidModel(
                "ensemble failure accounting out of sync".into(),
            ));
        };
        return Err(CoreError::EnsembleFailed {
            sample: first.sample,
            failures: n_failures,
            abandoned,
            source: Box::new(first.error),
        });
    }

    let outputs: Vec<Vec<f64>> = slots
        .into_iter()
        .map(Option::unwrap_or_default)
        .collect();
    let mut merged = SolveCounters::default();
    for c in &counters {
        merged.merge(c);
    }
    Ok(EnsembleResult {
        outputs,
        counters: merged,
        failures,
    })
}

/// [`run_ensemble`] through the batched fast path: samples are grouped
/// into panels of [`crate::SolverOptions::batch_width`] **globally in
/// sample order**, each worker drives whole groups through a
/// [`BatchSession`], and every group advances all its members per matrix
/// traversal (see [`crate::BatchSession`]).
///
/// Grouping is independent of `options.n_threads` and nothing crosses
/// group boundaries, so the outputs are bit-identical for any worker
/// count. `options.warm_start` is ignored: every group starts from reset
/// sessions (cross-sample reuse inside a group happens through the shared
/// preconditioner instead). A `batch_width` of 0 or 1 falls back to the
/// scalar [`run_ensemble`] in exact mode.
///
/// # Errors
///
/// Like [`run_ensemble`], with group granularity: a failing sample fails
/// its whole group, and under [`FailurePolicy::Quarantine`] all members of
/// the failing group are quarantined together.
///
/// # Panics
///
/// Panics if `options.n_threads == 0` or a worker thread panics.
pub fn run_ensemble_batched<S: BatchScenario>(
    compiled: &Arc<CompiledModel>,
    scenario: &S,
    samples: &[Vec<f64>],
    options: &EnsembleOptions,
) -> Result<EnsembleResult, CoreError> {
    assert!(options.n_threads > 0, "run_ensemble_batched: need ≥ 1 thread");
    let width = compiled.options().batch_width;
    if width <= 1 {
        return run_ensemble(compiled, scenario, samples, options);
    }
    let n = samples.len();
    if n == 0 {
        return Ok(EnsembleResult {
            outputs: Vec::new(),
            counters: SolveCounters::default(),
            failures: Vec::new(),
        });
    }
    // Global group formation: group g holds samples [g·width, ...), for any
    // thread count. Workers take contiguous runs of whole groups.
    let groups: Vec<&[Vec<f64>]> = samples.chunks(width).collect();
    let n_groups = groups.len();
    let gchunk = n_groups.div_ceil(options.n_threads).max(1);
    let max_failures = match options.failure_policy {
        FailurePolicy::Abort => 0,
        FailurePolicy::Quarantine { max_failures } => max_failures,
    };
    let cancel = AtomicBool::new(false);

    type Message = (usize, Result<Vec<Vec<f64>>, CoreError>);
    let (tx, rx) = mpsc::channel::<Message>();
    let (slots, failures, counters) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, block) in groups.chunks(gchunk).enumerate() {
            let tx = tx.clone();
            let cancel = &cancel;
            handles.push(scope.spawn(move || {
                let mut batch = BatchSession::new(compiled, width);
                for (gk, group) in block.iter().enumerate() {
                    if cancel.load(Ordering::Relaxed) {
                        break;
                    }
                    let g = c * gchunk + gk;
                    batch.reset();
                    let k = group.len();
                    let result: Result<Vec<Vec<f64>>, CoreError> = (|| {
                        for (j, sample) in group.iter().enumerate() {
                            scenario.apply_indexed(
                                &mut batch.sessions_mut()[j],
                                sample,
                                g * width + j,
                            )?;
                        }
                        let sols =
                            batch.run_transient(k, scenario.t_end(), scenario.n_steps())?;
                        Ok(sols.iter().map(|s| scenario.qoi(s)).collect())
                    })();
                    let failed = result.is_err();
                    if failed {
                        if max_failures == 0 {
                            cancel.store(true, Ordering::Relaxed);
                        } else {
                            // Quarantine: scrub the whole group's state.
                            batch.reset();
                        }
                    }
                    if tx.send((g, result)).is_err() || (failed && max_failures == 0) {
                        break;
                    }
                }
                batch.counters()
            }));
        }
        drop(tx);

        let mut slots: Vec<Option<Vec<f64>>> = (0..n).map(|_| None).collect();
        let mut failures: Vec<SampleFailure> = Vec::new();
        let mut done = 0usize;
        for (g, result) in rx {
            let base = g * width;
            let k = groups[g].len();
            match result {
                Ok(ys) => {
                    for (j, y) in ys.into_iter().enumerate() {
                        slots[base + j] = Some(y);
                    }
                }
                Err(e) => {
                    for j in 0..k {
                        failures.push(SampleFailure {
                            sample: base + j,
                            error: e.clone(),
                        });
                        slots[base + j] = Some(Vec::new());
                    }
                    if failures.len() > max_failures {
                        cancel.store(true, Ordering::Relaxed);
                    }
                }
            }
            while done < n && slots[done].is_some() {
                done += 1;
                if let Some(progress) = options.progress {
                    progress(done, n);
                }
            }
        }
        let counters: Vec<SolveCounters> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(c) => c,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        (slots, failures, counters)
    });

    let mut failures = failures;
    failures.sort_by_key(|f| f.sample);
    if failures.len() > max_failures {
        let abandoned = slots.iter().filter(|s| s.is_none()).count();
        let n_failures = failures.len();
        let Some(first) = failures.into_iter().next() else {
            return Err(CoreError::InvalidModel(
                "ensemble failure accounting out of sync".into(),
            ));
        };
        return Err(CoreError::EnsembleFailed {
            sample: first.sample,
            failures: n_failures,
            abandoned,
            source: Box::new(first.error),
        });
    }

    let outputs: Vec<Vec<f64>> = slots
        .into_iter()
        .map(Option::unwrap_or_default)
        .collect();
    let mut merged = SolveCounters::default();
    for c in &counters {
        merged.merge(c);
    }
    Ok(EnsembleResult {
        outputs,
        counters: merged,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ElectrothermalModel;
    use crate::options::SolverOptions;
    use etherm_fit::boundary::ThermalBoundary;
    use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
    use etherm_materials::{library, MaterialTable};

    /// A driven epoxy block with one wire across it.
    fn wire_model() -> ElectrothermalModel {
        let grid = Grid3::new(
            Axis::uniform(0.0, 2e-3, 4).unwrap(),
            Axis::uniform(0.0, 1e-3, 2).unwrap(),
            Axis::uniform(0.0, 0.5e-3, 1).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(library::epoxy_resin());
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let wire =
            etherm_bondwire::BondWire::new("w", 1.5e-3, 25.4e-6, library::copper()).unwrap();
        model
            .add_wire(wire, (0.0, 0.5e-3, 0.5e-3), (2e-3, 0.5e-3, 0.5e-3))
            .unwrap();
        let a = model.wires()[0].node_a;
        let b = model.wires()[0].node_b;
        model.set_electric_potential(&[a], 0.02);
        model.set_electric_potential(&[b], -0.02);
        model.set_thermal_boundary(ThermalBoundary::convective(25.0, 300.0));
        model
    }

    struct LengthScenario;
    impl Scenario for LengthScenario {
        fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
            session.set_wire_length(0, sample[0])
        }
        fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
            let sol = session.run_transient(2.0, 4, &[])?;
            Ok(vec![*sol.wire_series(0).last().unwrap()])
        }
    }
    impl BatchScenario for LengthScenario {
        fn t_end(&self) -> f64 {
            2.0
        }
        fn n_steps(&self) -> usize {
            4
        }
        fn qoi(&self, solution: &TransientSolution) -> Vec<f64> {
            vec![*solution.wire_series(0).last().unwrap()]
        }
    }

    fn samples() -> Vec<Vec<f64>> {
        (0..7).map(|i| vec![1.2e-3 + 1e-4 * i as f64]).collect()
    }

    #[test]
    fn deterministic_for_any_thread_count() {
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap(),
        );
        let samples = samples();
        let serial = run_ensemble(
            &compiled,
            &LengthScenario,
            &samples,
            &EnsembleOptions::default(),
        )
        .unwrap();
        for threads in [2, 3, 5] {
            let par = run_ensemble(
                &compiled,
                &LengthScenario,
                &samples,
                &EnsembleOptions {
                    n_threads: threads,
                    ..EnsembleOptions::default()
                },
            )
            .unwrap();
            assert_eq!(par.outputs, serial.outputs, "threads = {threads}");
            // Exact mode: every sample is independent, so the merged
            // counters are identical for any chunking.
            assert_eq!(par.counters, serial.counters, "threads = {threads}");
        }
    }

    #[test]
    fn warm_mode_agrees_within_tolerance() {
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap(),
        );
        let samples = samples();
        let exact = run_ensemble(
            &compiled,
            &LengthScenario,
            &samples,
            &EnsembleOptions::default(),
        )
        .unwrap();
        let warm = run_ensemble(
            &compiled,
            &LengthScenario,
            &samples,
            &EnsembleOptions {
                warm_start: true,
                ..EnsembleOptions::default()
            },
        )
        .unwrap();
        for (a, b) in exact.outputs.iter().zip(&warm.outputs) {
            assert!((a[0] - b[0]).abs() < 1e-6, "{} vs {}", a[0], b[0]);
        }
        // Warm mode reuses preconditioners across samples.
        assert!(warm.counters.precond_rebuilds <= exact.counters.precond_rebuilds);
    }

    #[test]
    fn progress_streams_in_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static LAST: AtomicUsize = AtomicUsize::new(0);
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        fn progress(done: usize, total: usize) {
            assert_eq!(total, 7);
            let prev = LAST.swap(done, Ordering::SeqCst);
            assert!(done >= prev, "progress went backwards: {prev} -> {done}");
            CALLS.fetch_add(1, Ordering::SeqCst);
        }
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap(),
        );
        run_ensemble(
            &compiled,
            &LengthScenario,
            &samples(),
            &EnsembleOptions {
                n_threads: 3,
                warm_start: false,
                progress: Some(progress),
                failure_policy: FailurePolicy::Abort,
            },
        )
        .unwrap();
        assert_eq!(LAST.load(Ordering::SeqCst), 7);
        assert_eq!(CALLS.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn first_error_by_sample_index_wins() {
        struct Failing;
        impl Scenario for Failing {
            fn apply(&self, _: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
                if sample[0] > 1.45e-3 {
                    return Err(CoreError::InvalidModel(format!("bad {}", sample[0])));
                }
                Ok(())
            }
            fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
                let sol = session.run_transient(1.0, 2, &[])?;
                Ok(vec![*sol.wire_series(0).last().unwrap()])
            }
        }
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap(),
        );
        // Samples 3.. all fail; the reported error must be sample 3's.
        let err = run_ensemble(
            &compiled,
            &Failing,
            &samples(),
            &EnsembleOptions {
                n_threads: 3,
                ..EnsembleOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("0.0015"), "{err}");
    }

    /// Fails on a fixed set of sample indices via `apply_indexed`.
    struct FailAt(&'static [usize]);
    impl Scenario for FailAt {
        fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
            session.set_wire_length(0, sample[0])
        }
        fn apply_indexed(
            &self,
            session: &mut Session,
            sample: &[f64],
            index: usize,
        ) -> Result<(), CoreError> {
            if self.0.contains(&index) {
                return Err(CoreError::InvalidModel(format!("planned failure {index}")));
            }
            self.apply(session, sample)
        }
        fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
            let sol = session.run_transient(2.0, 4, &[])?;
            Ok(vec![*sol.wire_series(0).last().unwrap()])
        }
    }
    impl BatchScenario for FailAt {
        fn t_end(&self) -> f64 {
            2.0
        }
        fn n_steps(&self) -> usize {
            4
        }
        fn qoi(&self, solution: &TransientSolution) -> Vec<f64> {
            vec![*solution.wire_series(0).last().unwrap()]
        }
    }

    #[test]
    fn quarantine_keeps_surviving_samples_bit_identical() {
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap(),
        );
        let samples = samples();
        let clean = run_ensemble(
            &compiled,
            &LengthScenario,
            &samples,
            &EnsembleOptions::default(),
        )
        .unwrap();
        let failing = FailAt(&[1, 4]);
        let mut reference: Option<EnsembleResult> = None;
        for threads in [1, 2, 4] {
            let r = run_ensemble(
                &compiled,
                &failing,
                &samples,
                &EnsembleOptions {
                    n_threads: threads,
                    failure_policy: FailurePolicy::Quarantine { max_failures: 2 },
                    ..EnsembleOptions::default()
                },
            )
            .unwrap();
            assert_eq!(r.failures.len(), 2);
            assert_eq!(
                r.failures.iter().map(|f| f.sample).collect::<Vec<_>>(),
                vec![1, 4]
            );
            for (i, out) in r.outputs.iter().enumerate() {
                if i == 1 || i == 4 {
                    assert!(out.is_empty(), "quarantined sample {i} has output");
                } else {
                    assert_eq!(out, &clean.outputs[i], "sample {i} moved");
                }
            }
            if let Some(reference) = &reference {
                assert_eq!(r.outputs, reference.outputs, "threads = {threads}");
                assert_eq!(r.counters, reference.counters, "threads = {threads}");
            } else {
                reference = Some(r);
            }
        }
    }

    #[test]
    fn quarantine_overflow_aborts_with_context() {
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap(),
        );
        let err = run_ensemble(
            &compiled,
            &FailAt(&[1, 3, 5]),
            &samples(),
            &EnsembleOptions {
                failure_policy: FailurePolicy::Quarantine { max_failures: 1 },
                ..EnsembleOptions::default()
            },
        )
        .unwrap_err();
        match err {
            CoreError::EnsembleFailed {
                sample, failures, ..
            } => {
                assert_eq!(sample, 1);
                assert!(failures >= 2);
            }
            other => panic!("expected EnsembleFailed, got {other}"),
        }
    }

    #[test]
    fn abort_reports_abandoned_samples() {
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap(),
        );
        // Serial run failing at sample 2: samples 3.. are never attempted.
        let err = run_ensemble(
            &compiled,
            &FailAt(&[2]),
            &samples(),
            &EnsembleOptions::default(),
        )
        .unwrap_err();
        match err {
            CoreError::EnsembleFailed {
                sample,
                failures,
                abandoned,
                ..
            } => {
                assert_eq!(sample, 2);
                assert_eq!(failures, 1);
                assert_eq!(abandoned, 4);
            }
            other => panic!("expected EnsembleFailed, got {other}"),
        }
    }

    /// The campaign-style options used by the batched tests: pinned outer
    /// iteration structure so scalar and lock-step Picard loops do the same
    /// number of iterates per step.
    fn pinned_options(batch_width: usize) -> SolverOptions {
        SolverOptions {
            picard_tol: 0.0,
            picard_max_iter: 4,
            batch_width,
            ..SolverOptions::default()
        }
    }

    #[test]
    fn batched_matches_scalar_exact_within_tolerance() {
        let exact_compiled = Arc::new(
            CompiledModel::compile(wire_model(), pinned_options(0)).unwrap(),
        );
        let samples = samples();
        let exact = run_ensemble(
            &exact_compiled,
            &LengthScenario,
            &samples,
            &EnsembleOptions::default(),
        )
        .unwrap();
        let batched_compiled = Arc::new(
            CompiledModel::compile(wire_model(), pinned_options(3)).unwrap(),
        );
        let batched = run_ensemble_batched(
            &batched_compiled,
            &LengthScenario,
            &samples,
            &EnsembleOptions::default(),
        )
        .unwrap();
        assert_eq!(batched.outputs.len(), exact.outputs.len());
        for (i, (a, b)) in exact.outputs.iter().zip(&batched.outputs).enumerate() {
            assert!(
                (a[0] - b[0]).abs() < 1e-6,
                "sample {i}: scalar {} vs batched {}",
                a[0],
                b[0]
            );
        }
        // The fused path solves all k thermal systems of a group per block
        // solve, so it performs the same number of thermal solves.
        assert_eq!(
            batched.counters.thermal_solves,
            exact.counters.thermal_solves
        );
    }

    #[test]
    fn batched_is_bit_identical_for_any_thread_count() {
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), pinned_options(2)).unwrap(),
        );
        let samples = samples();
        let serial = run_ensemble_batched(
            &compiled,
            &LengthScenario,
            &samples,
            &EnsembleOptions::default(),
        )
        .unwrap();
        for threads in [2, 3, 4] {
            let par = run_ensemble_batched(
                &compiled,
                &LengthScenario,
                &samples,
                &EnsembleOptions {
                    n_threads: threads,
                    ..EnsembleOptions::default()
                },
            )
            .unwrap();
            assert_eq!(par.outputs, serial.outputs, "threads = {threads}");
            assert_eq!(par.counters, serial.counters, "threads = {threads}");
        }
    }

    #[test]
    fn batched_width_one_falls_back_to_scalar_exact() {
        let scalar = Arc::new(
            CompiledModel::compile(wire_model(), pinned_options(0)).unwrap(),
        );
        let batched = Arc::new(
            CompiledModel::compile(wire_model(), pinned_options(1)).unwrap(),
        );
        let samples = samples();
        let a = run_ensemble(&scalar, &LengthScenario, &samples, &EnsembleOptions::default())
            .unwrap();
        let b = run_ensemble_batched(
            &batched,
            &LengthScenario,
            &samples,
            &EnsembleOptions::default(),
        )
        .unwrap();
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn batched_quarantines_whole_groups() {
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), pinned_options(2)).unwrap(),
        );
        // Sample 2 fails at apply: its group {2, 3} is quarantined.
        let failing = FailAt(&[2]);
        let r = run_ensemble_batched(
            &compiled,
            &failing,
            &samples(),
            &EnsembleOptions {
                failure_policy: FailurePolicy::Quarantine { max_failures: 2 },
                ..EnsembleOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            r.failures.iter().map(|f| f.sample).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(r.outputs[2].is_empty() && r.outputs[3].is_empty());
        assert!(!r.outputs[0].is_empty() && !r.outputs[4].is_empty());
    }

    #[test]
    fn empty_sample_set_is_ok() {
        let compiled = Arc::new(
            CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap(),
        );
        let r = run_ensemble(
            &compiled,
            &LengthScenario,
            &[],
            &EnsembleOptions::default(),
        )
        .unwrap();
        assert!(r.outputs.is_empty());
        assert_eq!(r.counters, SolveCounters::default());
    }
}
