//! The batched multi-sample fast path: one matrix traversal advances a
//! whole panel of ensemble samples.
//!
//! A [`BatchSession`] owns `k` sibling [`Session`]s over one shared
//! [`CompiledModel`] and drives them through the transient **in lock-step**:
//! every time step runs the same Picard iterates for all samples, assemblies
//! stay per-sample, and **both** linear solves of an iterate are fused into
//! block solves — the `k` value-filled matrices over the shared frozen
//! pattern become a [`CsrBatch`], the `k` right-hand sides and guesses a
//! [`MultiVec`] panel, and [`block_pcg_with`] advances all columns per
//! traversal with per-column convergence masks. The thermal and electrical
//! systems each keep their own group-shared preconditioner (built from the
//! first sample's matrix, refreshed by the usual lazy policy):
//! preconditioning only shapes the Krylov trajectory, so each sample still
//! converges to its own solution within the inner tolerance. Across steps,
//! a *step-increment transplant* warms iterate `pk`'s thermal guess with the
//! increment the previous step's Picard took at the same position — state
//! that never leaves the group, so worker-count bit-identity is preserved.
//!
//! Contracts and limitations:
//!
//! * The scalar per-sample path stays the default;
//!   [`crate::SolverOptions::batch_width`] ≥ 2 opts a campaign in
//!   ([`crate::ensemble::run_ensemble_batched`]).
//! * Results are bit-identical for any worker-thread count: groups are
//!   formed globally in sample order, the in-solver thread partition is
//!   deterministic, and nothing crosses group boundaries.
//! * The recovery ladder and the linear-iteration budget do **not** guard
//!   the block thermal solves (the electrical solves keep them): a failing
//!   thermal solve fails the whole group. Batched campaigns trade the
//!   resilience layer for throughput; quarantine at the group level is
//!   provided by the ensemble driver.

use crate::compiled::CompiledModel;
use crate::error::CoreError;
use crate::session::{CachedPrecond, Session, SolveCounters};
use crate::solution::TransientSolution;
use etherm_numerics::solvers::{block_pcg_with, BlockKrylovWorkspace, SolveReport};
use etherm_numerics::sparse::Csr;
use etherm_numerics::{CsrBatch, MultiVec};
use std::sync::Arc;

use crate::options::SolverOptions;

/// A panel of `k` lock-step sessions sharing one compiled model and one
/// fused thermal block solver. See the module docs for the contract.
#[derive(Debug)]
pub struct BatchSession {
    sessions: Vec<Session>,
    /// Group-shared thermal preconditioner (built from the first member's
    /// matrix) and its lazy-refresh reuse counter.
    precond: Option<CachedPrecond>,
    precond_reuses: usize,
    /// Group-shared electrical preconditioner, same policy.
    precond_elec: Option<CachedPrecond>,
    precond_elec_reuses: usize,
    ws: BlockKrylovWorkspace,
    b_panel: MultiVec,
    x_panel: MultiVec,
    /// Cached interleaved value pack for the group's matrices
    /// (`packed[t·k + c]` = nonzero `t` of member `c`), re-filled per solve
    /// so the borrowing [`CsrBatch::from_packed`] operator is
    /// allocation-free on the warm path.
    packed: Vec<f64>,
    reports: Vec<SolveReport>,
    /// Per-member warm potential (full numbering), carried across the steps
    /// of one run exactly like the scalar driver's `phi`.
    phis: Vec<Vec<f64>>,
    /// Per-member reduced thermal solutions of the previous step, one entry
    /// per Picard iterate: `traj[j][pk-1]`. The step-increment transplant
    /// reads them to warm the next step's iterate guesses; group-local
    /// state, so worker-count bit-identity is preserved.
    traj: Vec<Vec<Vec<f64>>>,
    traj_next: Vec<Vec<Vec<f64>>>,
}

impl BatchSession {
    /// Creates `width` sibling sessions over `compiled`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(compiled: &Arc<CompiledModel>, width: usize) -> Self {
        assert!(width >= 1, "BatchSession: need width >= 1");
        BatchSession {
            sessions: (0..width).map(|_| Session::new(Arc::clone(compiled))).collect(),
            precond: None,
            precond_reuses: 0,
            precond_elec: None,
            precond_elec_reuses: 0,
            ws: BlockKrylovWorkspace::new(),
            b_panel: MultiVec::new(),
            x_panel: MultiVec::new(),
            packed: Vec::new(),
            reports: Vec::new(),
            phis: vec![Vec::new(); width],
            traj: vec![Vec::new(); width],
            traj_next: vec![Vec::new(); width],
        }
    }

    /// The panel width (number of member sessions).
    pub fn width(&self) -> usize {
        self.sessions.len()
    }

    /// The member sessions, for applying per-sample parameters before a run.
    pub fn sessions_mut(&mut self) -> &mut [Session] {
        &mut self.sessions
    }

    /// Resets every member session and drops the shared preconditioner:
    /// the next run is independent of everything solved before — the
    /// property that makes globally-formed groups bit-identical for any
    /// worker count.
    pub fn reset(&mut self) {
        for s in &mut self.sessions {
            s.reset();
        }
        self.precond = None;
        self.precond_reuses = 0;
        self.precond_elec = None;
        self.precond_elec_reuses = 0;
        for t in self.traj.iter_mut().chain(self.traj_next.iter_mut()) {
            t.clear();
        }
    }

    /// Solve counters merged over the member sessions.
    pub fn counters(&self) -> SolveCounters {
        let mut merged = SolveCounters::default();
        for s in &self.sessions {
            let c = s.counters();
            merged.merge(&c);
        }
        merged
    }

    /// The recovery-ladder ledger merged over the member sessions — the
    /// panel-level health signal (equivalent to `counters().recovery`).
    pub fn recovery_ledger(&self) -> crate::session::RecoveryLedger {
        self.counters().recovery
    }

    /// Applies one per-request-class Krylov iteration budget to every
    /// member session (see [`Session::set_iteration_budget`]). The block
    /// thermal solves stay unguarded (module docs); the per-member
    /// electrical solves enforce it.
    pub fn set_iteration_budget(&mut self, budget: Option<usize>) {
        for s in &mut self.sessions {
            s.set_iteration_budget(budget);
        }
    }

    /// Runs the coupled transient for the first `k` members in lock-step
    /// and returns one [`TransientSolution`] per member (no snapshots).
    ///
    /// # Errors
    ///
    /// Propagates per-sample electrical failures and block thermal solve
    /// failures; any error fails the whole group.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > self.width()`, `n_steps == 0` or
    /// `t_end <= 0`.
    pub fn run_transient(
        &mut self,
        k: usize,
        t_end: f64,
        n_steps: usize,
    ) -> Result<Vec<TransientSolution>, CoreError> {
        assert!(k >= 1 && k <= self.sessions.len(), "BatchSession: panel size");
        assert!(n_steps > 0, "need at least one step");
        assert!(t_end > 0.0, "end time must be positive");
        let dt = t_end / n_steps as f64;
        let compiled = Arc::clone(self.sessions[0].compiled());
        let options = compiled.options().clone();
        let layout = compiled.layout();
        let n_wires = self.sessions[0].wires().len();
        let n_total = layout.n_total();

        for s in &mut self.sessions[..k] {
            s.begin_transient_run();
        }
        let mut t_states: Vec<Vec<f64>> = self.sessions[..k]
            .iter()
            .map(Session::initial_temperature)
            .collect();
        for phi in &mut self.phis[..k] {
            phi.clear();
            phi.resize(n_total, 0.0);
        }

        let mut solutions: Vec<TransientSolution> = (0..k)
            .map(|_| TransientSolution {
                times: Vec::with_capacity(n_steps + 1),
                wire_temperatures: vec![Vec::with_capacity(n_steps + 1); n_wires],
                wire_powers: vec![Vec::with_capacity(n_steps + 1); n_wires],
                field_power: Vec::with_capacity(n_steps + 1),
                picard_iterations: Vec::with_capacity(n_steps),
                linear_iterations: 0,
                snapshots: Vec::new(),
            })
            .collect();
        let record = |sol: &mut TransientSolution,
                      time: f64,
                      state: &[f64],
                      powers: &[f64],
                      fp: f64| {
            sol.times.push(time);
            for w in 0..n_wires {
                sol.wire_temperatures[w]
                    .push(layout.topology(w).average_temperature(state));
                sol.wire_powers[w].push(powers.get(w).copied().unwrap_or(0.0));
            }
            sol.field_power.push(fp);
        };
        let zero_powers = vec![0.0; n_wires];
        for (sol, state) in solutions.iter_mut().zip(&t_states) {
            record(sol, 0.0, state, &zero_powers, 0.0);
        }

        let mut predict = vec![false; k];
        let mut field_powers = vec![0.0; k];
        let mut step_linear = vec![0usize; k];

        for step in 1..=n_steps {
            for j in 0..k {
                predict[j] = self.sessions[j].begin_coupled(&t_states[j], Some(dt));
                step_linear[j] = 0;
            }
            let mut elec_done = false;
            let mut iterations = 0usize;
            let mut converged = false;
            let mut max_update = f64::INFINITY;
            for pk in 1..=options.picard_max_iter {
                iterations = pk;
                // Per-sample electrical assembly, then one fused block solve
                // over the k driven systems (the same multi-RHS machinery as
                // the thermal solve, with its own group-shared
                // preconditioner).
                if !elec_done || options.resolve_electrical_every_picard {
                    let mut driven = false;
                    for j in 0..k {
                        driven = self.sessions[j]
                            .assemble_electrical(&mut self.phis[j])
                            .map_err(|e| step_failed(step, dt, e))?;
                    }
                    elec_done = true;
                    if driven {
                        let n_e = self.sessions[0].x_red().len();
                        self.b_panel.ensure(n_e, k);
                        self.x_panel.ensure(n_e, k);
                        for j in 0..k {
                            let Some((_, b)) = self.sessions[j].electrical_assembled() else {
                                return Err(CoreError::InvalidModel(
                                    "batched electrical system not assembled".into(),
                                ));
                            };
                            self.b_panel.copy_col_from(j, b);
                            self.x_panel.copy_col_from(j, self.sessions[j].x_red());
                        }
                        {
                            let mut mats: Vec<&Csr> = Vec::with_capacity(k);
                            for sess in &self.sessions[..k] {
                                let Some((a, _)) = sess.electrical_assembled() else {
                                    return Err(CoreError::InvalidModel(
                                        "batched electrical system not assembled".into(),
                                    ));
                                };
                                mats.push(a);
                            }
                            let rebuilt = refresh_shared_precond(
                                &mut self.precond_elec,
                                &mut self.precond_elec_reuses,
                                &options,
                                mats[0],
                            )
                            .map_err(|e| step_failed(step, dt, e))?;
                            let Some(precond) = self.precond_elec.as_ref() else {
                                return Err(CoreError::InvalidModel(
                                    "batched electrical preconditioner missing after refresh"
                                        .into(),
                                ));
                            };
                            Csr::pack_batch_values(&mats, &mut self.packed);
                            let nnz = mats[0].values().len();
                            let op = CsrBatch::from_packed(
                                mats[0],
                                &self.packed[..nnz * k],
                                options.n_threads,
                            );
                            block_pcg_with(
                                &op,
                                &self.b_panel,
                                &mut self.x_panel,
                                precond,
                                &options.linear,
                                &mut self.ws,
                                &mut self.reports,
                            )
                            .map_err(|e| step_failed(step, dt, CoreError::Numerics(e)))?;
                            let coarse =
                                self.precond_elec.as_ref().and_then(CachedPrecond::coarse_dim);
                            self.sessions[0].note_shared_precond(rebuilt, coarse);
                        }
                        for j in 0..k {
                            let report = self.reports[j];
                            if !report.converged {
                                return Err(step_failed(
                                    step,
                                    dt,
                                    CoreError::LinearSolveFailed {
                                        system: "electrical",
                                        iterations: report.iterations,
                                        residual: report.residual,
                                    },
                                ));
                            }
                            self.x_panel.copy_col_into(j, self.sessions[j].x_red_mut());
                            self.sessions[j].finish_electrical(&mut self.phis[j], report.iterations);
                            step_linear[j] += report.iterations;
                        }
                    }
                }
                // Per-sample scalar phase: heat sources and thermal assembly
                // + CG guess (left in the session's reduced-unknown scratch).
                for j in 0..k {
                    let sess = &mut self.sessions[j];
                    field_powers[j] = sess.heat_sources(&self.phis[j]);
                    sess.assemble_thermal(&t_states[j], Some(dt), predict[j] && pk == 1, step, pk)
                        .map_err(|e| step_failed(step, dt, e))?;
                }
                // Gather the panel: per-member RHS and initial guess.
                let n_red = self.sessions[0].x_red().len();
                self.b_panel.ensure(n_red, k);
                self.x_panel.ensure(n_red, k);
                for j in 0..k {
                    let Some((_, b)) = self.sessions[j].thermal_assembled() else {
                        return Err(CoreError::InvalidModel(
                            "batched thermal system not assembled".into(),
                        ));
                    };
                    self.b_panel.copy_col_from(j, b);
                    self.x_panel.copy_col_from(j, self.sessions[j].x_red());
                }
                // Step-increment transplant: iterate pk's guess gains the
                // increment the previous step's Picard took at the same
                // position. Group-local (worker-count independence holds),
                // and a guess never changes a converged answer.
                if step > 1 && pk > 1 {
                    let xs = self.x_panel.as_mut_slice();
                    for j in 0..k {
                        let (Some(cur), Some(prev)) =
                            (self.traj[j].get(pk - 1), self.traj[j].get(pk - 2))
                        else {
                            continue;
                        };
                        if cur.len() != n_red || prev.len() != n_red {
                            continue;
                        }
                        for i in 0..n_red {
                            xs[i * k + j] += cur[i] - prev[i];
                        }
                    }
                }
                // Fused block solve over the k same-pattern matrices.
                let rebuilt = {
                    let mut mats: Vec<&Csr> = Vec::with_capacity(k);
                    for s in &self.sessions[..k] {
                        let Some((a, _)) = s.thermal_assembled() else {
                            return Err(CoreError::InvalidModel(
                                "batched thermal system not assembled".into(),
                            ));
                        };
                        mats.push(a);
                    }
                    let rebuilt = refresh_shared_precond(
                        &mut self.precond,
                        &mut self.precond_reuses,
                        &options,
                        mats[0],
                    )
                    .map_err(|e| step_failed(step, dt, e))?;
                    let Some(precond) = self.precond.as_ref() else {
                        return Err(CoreError::InvalidModel(
                            "batched preconditioner missing after refresh".into(),
                        ));
                    };
                    Csr::pack_batch_values(&mats, &mut self.packed);
                    let nnz = mats[0].values().len();
                    let op =
                        CsrBatch::from_packed(mats[0], &self.packed[..nnz * k], options.n_threads);
                    block_pcg_with(
                        &op,
                        &self.b_panel,
                        &mut self.x_panel,
                        precond,
                        &options.linear,
                        &mut self.ws,
                        &mut self.reports,
                    )
                    .map_err(|e| step_failed(step, dt, CoreError::Numerics(e)))?;
                    rebuilt
                };
                let coarse = self.precond.as_ref().and_then(CachedPrecond::coarse_dim);
                self.sessions[0].note_shared_precond(rebuilt, coarse);
                // Scatter, accept, and advance the Picard state per member.
                max_update = 0.0;
                for j in 0..k {
                    let report = self.reports[j];
                    if !report.converged {
                        return Err(step_failed(
                            step,
                            dt,
                            CoreError::LinearSolveFailed {
                                system: "thermal",
                                iterations: report.iterations,
                                residual: report.residual,
                            },
                        ));
                    }
                    let sess = &mut self.sessions[j];
                    self.x_panel.copy_col_into(j, sess.x_red_mut());
                    sess.note_block_thermal_solve(report.iterations);
                    step_linear[j] += report.iterations;
                    sess.accept_thermal(Some(dt), step);
                    max_update = max_update.max(sess.picard_update_and_swap());
                    // Record this iterate's reduced solution for the next
                    // step's transplant.
                    let t = &mut self.traj_next[j];
                    if t.len() < pk {
                        t.resize(pk, Vec::new());
                    }
                    let buf = &mut t[pk - 1];
                    buf.clear();
                    buf.resize(n_red, 0.0);
                    self.x_panel.copy_col_into(j, buf);
                }
                if max_update <= options.picard_tol {
                    converged = true;
                    break;
                }
            }
            for s in &mut self.sessions[..k] {
                s.note_picard(iterations);
            }
            if !converged && options.strict_picard {
                return Err(step_failed(
                    step,
                    dt,
                    CoreError::PicardNotConverged {
                        step,
                        update: max_update,
                    },
                ));
            }
            let time = dt * step as f64;
            for j in 0..k {
                self.sessions[j].record_step_history(&t_states[j], Some(dt));
                let state = self.sessions[j].t_star();
                record(
                    &mut solutions[j],
                    time,
                    state,
                    self.sessions[j].wire_powers_scratch(),
                    field_powers[j],
                );
                solutions[j].picard_iterations.push(iterations);
                solutions[j].linear_iterations += step_linear[j];
                t_states[j].clear();
                t_states[j].extend_from_slice(state);
            }
            std::mem::swap(&mut self.traj, &mut self.traj_next);
        }
        Ok(solutions)
    }
}

/// Wraps a solve error with step/time context like the scalar driver.
fn step_failed(step: usize, dt: f64, source: CoreError) -> CoreError {
    CoreError::StepFailed {
        step,
        time: dt * (step - 1) as f64,
        source: Box::new(source),
    }
}

/// The lazy refresh policy of the group-shared preconditioner: build on
/// first use, reuse up to `precond_max_reuses` solves, then refresh in
/// place over the frozen pattern. Returns whether a (re)build happened.
fn refresh_shared_precond(
    precond: &mut Option<CachedPrecond>,
    reuses: &mut usize,
    options: &SolverOptions,
    a0: &Csr,
) -> Result<bool, CoreError> {
    match precond {
        Some(_) if *reuses < options.precond_max_reuses => {
            *reuses += 1;
            Ok(false)
        }
        Some(p) => {
            p.refresh(a0).map_err(CoreError::Numerics)?;
            *reuses = 0;
            Ok(true)
        }
        None => {
            *precond = Some(
                CachedPrecond::build_kind(options.preconditioner, options, a0)
                    .map_err(CoreError::Numerics)?,
            );
            *reuses = 0;
            Ok(true)
        }
    }
}
