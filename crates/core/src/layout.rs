//! Global DoF layout: grid nodes followed by wire-internal nodes.
//!
//! Both the electrical and the thermal system share one numbering: DoFs
//! `0 .. n_grid` are the primary grid nodes, followed by one block of
//! `segments − 1` internal DoFs per multi-segment wire, in wire order. The
//! shared layout keeps the wire incidence (`P_j` of the paper) identical on
//! both sides of the coupling.

use etherm_bondwire::{BondWire, WireTopology};

/// DoF layout of a model with `n_grid` grid nodes and the given wires.
#[derive(Debug, Clone, PartialEq)]
pub struct DofLayout {
    n_grid: usize,
    /// `(end_a, end_b, internal_offset, n_segments)` per wire.
    topologies: Vec<WireTopology>,
    n_total: usize,
}

impl DofLayout {
    /// Builds the layout from wire attachments `(wire, grid_node_a,
    /// grid_node_b)`.
    ///
    /// # Panics
    ///
    /// Panics if an attachment node is out of grid range or a wire attaches
    /// a node to itself.
    pub fn new(n_grid: usize, wires: &[(&BondWire, usize, usize)]) -> Self {
        let mut topologies = Vec::with_capacity(wires.len());
        let mut offset = n_grid;
        for (wire, a, b) in wires {
            assert!(*a < n_grid && *b < n_grid, "wire attachment out of range");
            assert_ne!(a, b, "wire cannot attach a node to itself");
            let topo = WireTopology {
                end_a: *a,
                end_b: *b,
                internal_offset: offset,
                n_segments: wire.segments(),
            };
            offset += topo.n_internal();
            topologies.push(topo);
        }
        DofLayout {
            n_grid,
            topologies,
            n_total: offset,
        }
    }

    /// Number of grid-node DoFs.
    pub fn n_grid(&self) -> usize {
        self.n_grid
    }

    /// Total number of DoFs (grid + wire internal).
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Number of wires.
    pub fn n_wires(&self) -> usize {
        self.topologies.len()
    }

    /// Topology of wire `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn topology(&self, j: usize) -> &WireTopology {
        &self.topologies[j]
    }

    /// All wire topologies.
    pub fn topologies(&self) -> &[WireTopology] {
        &self.topologies
    }

    /// Extends a grid-sized vector to the full layout, filling wire-internal
    /// DoFs with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `grid_values.len() != n_grid`.
    pub fn extend_grid_vector(&self, grid_values: &[f64], fill: f64) -> Vec<f64> {
        let mut v = Vec::new();
        self.extend_grid_vector_into(grid_values, fill, &mut v);
        v
    }

    /// In-place variant of [`DofLayout::extend_grid_vector`]; `out` is
    /// resized (reusing its capacity) and overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `grid_values.len() != n_grid`.
    pub fn extend_grid_vector_into(&self, grid_values: &[f64], fill: f64, out: &mut Vec<f64>) {
        assert_eq!(grid_values.len(), self.n_grid, "extend_grid_vector: length");
        out.clear();
        out.extend_from_slice(grid_values);
        out.resize(self.n_total, fill);
    }

    /// Initializes wire-internal temperatures by linear interpolation
    /// between the attachment-node values (in place on a full vector).
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != n_total`.
    pub fn interpolate_wire_internals(&self, full: &mut [f64]) {
        assert_eq!(full.len(), self.n_total, "interpolate_wire_internals: length");
        for topo in &self.topologies {
            let ta = full[topo.end_a];
            let tb = full[topo.end_b];
            let n = topo.n_segments as f64;
            for i in 1..topo.n_segments {
                full[topo.internal_offset + i - 1] = ta + (tb - ta) * i as f64 / n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_materials::library;

    fn wire(n: usize) -> BondWire {
        BondWire::new("w", 1e-3, 2e-5, library::copper())
            .unwrap()
            .with_segments(n)
            .unwrap()
    }

    #[test]
    fn layout_offsets() {
        let w1 = wire(1);
        let w3 = wire(3);
        let w2 = wire(2);
        let layout = DofLayout::new(100, &[(&w1, 0, 1), (&w3, 2, 3), (&w2, 4, 5)]);
        assert_eq!(layout.n_grid(), 100);
        assert_eq!(layout.n_wires(), 3);
        // w1: no internal; w3: 2 internal at 100, 101; w2: 1 internal at 102.
        assert_eq!(layout.n_total(), 103);
        assert_eq!(layout.topology(0).n_internal(), 0);
        assert_eq!(layout.topology(1).internal_offset, 100);
        assert_eq!(layout.topology(1).local_dof(1), 100);
        assert_eq!(layout.topology(1).local_dof(2), 101);
        assert_eq!(layout.topology(2).internal_offset, 102);
    }

    #[test]
    fn extend_and_interpolate() {
        let w = wire(4);
        let layout = DofLayout::new(2, &[(&w, 0, 1)]);
        assert_eq!(layout.n_total(), 5);
        let mut full = layout.extend_grid_vector(&[300.0, 340.0], 0.0);
        assert_eq!(full.len(), 5);
        layout.interpolate_wire_internals(&mut full);
        // Internal nodes at 1/4, 2/4, 3/4 between 300 and 340.
        assert_eq!(&full[2..], &[310.0, 320.0, 330.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_attachment() {
        let w = wire(1);
        let _ = DofLayout::new(3, &[(&w, 0, 5)]);
    }

    #[test]
    #[should_panic(expected = "attach a node to itself")]
    fn rejects_self_loop() {
        let w = wire(1);
        let _ = DofLayout::new(3, &[(&w, 1, 1)]);
    }
}
