//! Property-based tests for the grid crate.

use etherm_grid::{axis::AxisError, Axis, BoxRegion, CellPaint, Grid3, MaterialId};
use proptest::prelude::*;

/// Strategy for a small valid axis with 2..=8 nodes and positive spacings.
fn axis_strategy() -> impl Strategy<Value = Axis> {
    (
        -10.0f64..10.0,
        proptest::collection::vec(0.05f64..3.0, 1..8),
    )
        .prop_map(|(start, steps)| {
            let mut coords = vec![start];
            for s in steps {
                coords.push(coords.last().unwrap() + s);
            }
            Axis::from_coords(coords).expect("strictly increasing by construction")
        })
}

fn grid_strategy() -> impl Strategy<Value = Grid3> {
    (axis_strategy(), axis_strategy(), axis_strategy()).prop_map(|(x, y, z)| Grid3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dual_spacings_partition_extent(ax in axis_strategy()) {
        let total: f64 = (0..ax.n_nodes()).map(|i| ax.dual_spacing(i)).sum();
        prop_assert!((total - ax.extent()).abs() < 1e-10 * ax.extent().max(1.0));
    }

    #[test]
    fn cell_containing_is_consistent(ax in axis_strategy(), t in 0.0f64..1.0) {
        let x = ax.coord(0) + t * ax.extent();
        let c = ax.cell_containing(x);
        prop_assert!(c < ax.n_cells());
        prop_assert!(ax.coord(c) <= x + 1e-12);
        prop_assert!(x <= ax.coord(c + 1) + 1e-12);
    }

    #[test]
    fn nearest_node_minimizes_distance(ax in axis_strategy(), t in -0.2f64..1.2) {
        let x = ax.coord(0) + t * ax.extent();
        let n = ax.nearest_node(x);
        let dn = (ax.coord(n) - x).abs();
        for i in 0..ax.n_nodes() {
            prop_assert!(dn <= (ax.coord(i) - x).abs() + 1e-12);
        }
    }

    #[test]
    fn refine_preserves_extent_and_nodes(ax in axis_strategy(), factor in 1usize..5) {
        let r = ax.refine(factor);
        prop_assert_eq!(r.n_cells(), ax.n_cells() * factor);
        prop_assert!((r.extent() - ax.extent()).abs() < 1e-12);
        for &c in ax.coords() {
            prop_assert!(r.coords().iter().any(|&rc| (rc - c).abs() < 1e-12));
        }
    }

    #[test]
    fn node_index_bijection(g in grid_strategy()) {
        let mut seen = vec![false; g.n_nodes()];
        let (nx, ny, nz) = g.node_dims();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let n = g.node_index(i, j, k);
                    prop_assert!(!seen[n]);
                    seen[n] = true;
                    prop_assert_eq!(g.node_coords_of(n), (i, j, k));
                }
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn edge_index_bijection(g in grid_strategy()) {
        let mut seen = vec![false; g.n_edges()];
        for e in 0..g.n_edges() {
            prop_assert!(!seen[e]);
            seen[e] = true;
            let (a, b) = g.edge_endpoints(e);
            prop_assert!(a < b, "edges point in positive direction");
        }
    }

    #[test]
    fn dual_volumes_tile(g in grid_strategy()) {
        let total: f64 = (0..g.n_nodes()).map(|n| g.dual_volume(n)).sum();
        let domain = g.x().extent() * g.y().extent() * g.z().extent();
        prop_assert!((total - domain).abs() < 1e-9 * domain.max(1.0));
    }

    #[test]
    fn edge_weights_consistent(g in grid_strategy()) {
        for e in 0..g.n_edges() {
            let parts = g.cells_touching_edge(e);
            let s: f64 = parts.iter().map(|&(_, w)| w).sum();
            prop_assert!((s - g.dual_area(e)).abs() < 1e-10 * s.max(1e-10));
            for &(c, w) in &parts {
                prop_assert!(c < g.n_cells());
                prop_assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn painted_volume_never_exceeds_box(g in grid_strategy()) {
        let bg = MaterialId(0);
        let m = MaterialId(7);
        let mut paint = CellPaint::new(&g, bg);
        // Paint the lower octant of the domain bounding box.
        let (x0, y0, z0) = (g.x().coord(0), g.y().coord(0), g.z().coord(0));
        let b = BoxRegion::new(
            (x0, y0, z0),
            (
                x0 + 0.5 * g.x().extent(),
                y0 + 0.5 * g.y().extent(),
                z0 + 0.5 * g.z().extent(),
            ),
        );
        paint.paint(&g, &b, m);
        // Cell-center rule: a painted cell's center is inside the box, hence
        // at least half of each painted cell's extent overlaps the box per
        // axis — total painted volume is bounded by the box volume × 8.
        let painted = paint.material_volume(&g, m);
        prop_assert!(painted <= b.volume() * 8.0 + 1e-9);
    }

    #[test]
    fn axis_rejects_non_monotone(perm in proptest::collection::vec(-5.0f64..5.0, 2..6)) {
        let mut v = perm.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.reverse();
        if v.windows(2).all(|w| w[0] > w[1]) {
            // strictly decreasing must fail
            prop_assert!(matches!(
                Axis::from_coords(v),
                Err(AxisError::NotIncreasing(_))
            ));
        }
    }
}
