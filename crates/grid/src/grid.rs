//! The 3D tensor-product grid with primal/dual geometry and entity indexing.

use crate::axis::Axis;

/// Coordinate direction of an edge or axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// x direction.
    X,
    /// y direction.
    Y,
    /// z direction.
    Z,
}

impl Direction {
    /// All three directions in order.
    pub const ALL: [Direction; 3] = [Direction::X, Direction::Y, Direction::Z];
}

/// One of the six outer boundary faces of the grid box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Face {
    /// `x = x_min` face.
    XMin,
    /// `x = x_max` face.
    XMax,
    /// `y = y_min` face.
    YMin,
    /// `y = y_max` face.
    YMax,
    /// `z = z_min` face.
    ZMin,
    /// `z = z_max` face.
    ZMax,
}

impl Face {
    /// All six faces in order.
    pub const ALL: [Face; 6] = [
        Face::XMin,
        Face::XMax,
        Face::YMin,
        Face::YMax,
        Face::ZMin,
        Face::ZMax,
    ];
}

/// A 3D tensor-product hexahedral grid (the FIT primary grid) together with
/// its implied dual grid geometry.
///
/// Linear index conventions (all row-major in `(i, j, k)` with `i` fastest):
///
/// * **nodes** `(i, j, k)`, `i < nx`, `j < ny`, `k < nz` — potentials `Φ` and
///   temperatures `T` live here;
/// * **edges** stored as three consecutive blocks: x-edges (count
///   `(nx−1)·ny·nz`), then y-edges, then z-edges — voltages and temperature
///   drops live here;
/// * **cells** `(i, j, k)` with `i < nx−1`, ... — homogeneous (staircase)
///   material regions.
///
/// # Example
///
/// ```
/// use etherm_grid::{Axis, Grid3};
///
/// let g = Grid3::new(
///     Axis::uniform(0.0, 1.0, 2).unwrap(),
///     Axis::uniform(0.0, 1.0, 2).unwrap(),
///     Axis::uniform(0.0, 1.0, 1).unwrap(),
/// );
/// assert_eq!(g.n_nodes(), 3 * 3 * 2);
/// assert_eq!(g.n_cells(), 2 * 2 * 1);
/// // Total dual volume tiles the domain exactly.
/// let v: f64 = (0..g.n_nodes()).map(|n| g.dual_volume(n)).sum();
/// assert!((v - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    x: Axis,
    y: Axis,
    z: Axis,
    tables: EntityTables,
}

/// Precomputed per-entity lookup tables.
///
/// The assembly loops visit every edge on every Picard iterate; deriving the
/// lattice coordinates from the linear index each time ([`Grid3::edge_decompose`]
/// is three divide/modulo chains) dominates those loops. The tables are filled
/// once at construction with exactly the decompose-based expressions, so the
/// table-backed accessors return bit-identical values.
#[derive(Debug, Clone, PartialEq, Default)]
struct EntityTables {
    /// `(tail, head)` node pair per edge.
    endpoints: Vec<(u32, u32)>,
    /// `(dual area Ã, primal length ℓ)` per edge.
    geom: Vec<(f64, f64)>,
    /// CSR-style offsets into `touch_cell` / `touch_w` per edge.
    touch_off: Vec<u32>,
    /// Cells touching each edge, concatenated.
    touch_cell: Vec<u32>,
    /// Quarter cross-section weight of each touching cell.
    touch_w: Vec<f64>,
    /// The eight corner nodes per cell.
    cell_nodes: Vec<[u32; 8]>,
}

impl Grid3 {
    /// Creates a grid from three axes.
    pub fn new(x: Axis, y: Axis, z: Axis) -> Self {
        let mut g = Grid3 {
            x,
            y,
            z,
            tables: EntityTables::default(),
        };
        g.tables = g.build_tables();
        g
    }

    /// Fills the per-entity lookup tables from the decompose-based
    /// definitions (same expressions, evaluated once).
    fn build_tables(&self) -> EntityTables {
        let n_edges = self.n_edges();
        let n_cells = self.n_cells();
        let mut t = EntityTables {
            endpoints: Vec::with_capacity(n_edges),
            geom: Vec::with_capacity(n_edges),
            touch_off: Vec::with_capacity(n_edges + 1),
            touch_cell: Vec::with_capacity(4 * n_edges),
            touch_w: Vec::with_capacity(4 * n_edges),
            cell_nodes: Vec::with_capacity(n_cells),
        };
        t.touch_off.push(0);
        for e in 0..n_edges {
            t.endpoints.push({
                let (a, b) = self.edge_endpoints_computed(e);
                (a as u32, b as u32)
            });
            t.geom
                .push((self.dual_area_computed(e), self.edge_length_computed(e)));
            self.for_each_cell_touching_edge_computed(e, |c, w| {
                t.touch_cell.push(c as u32);
                t.touch_w.push(w);
            });
            t.touch_off.push(t.touch_cell.len() as u32);
        }
        for c in 0..n_cells {
            let nodes = self.cell_nodes_computed(c);
            t.cell_nodes.push(nodes.map(|n| n as u32));
        }
        t
    }

    /// The x axis.
    pub fn x(&self) -> &Axis {
        &self.x
    }

    /// The y axis.
    pub fn y(&self) -> &Axis {
        &self.y
    }

    /// The z axis.
    pub fn z(&self) -> &Axis {
        &self.z
    }

    /// Node counts `(nx, ny, nz)`.
    pub fn node_dims(&self) -> (usize, usize, usize) {
        (self.x.n_nodes(), self.y.n_nodes(), self.z.n_nodes())
    }

    /// Cell counts `(nx−1, ny−1, nz−1)`.
    pub fn cell_dims(&self) -> (usize, usize, usize) {
        (self.x.n_cells(), self.y.n_cells(), self.z.n_cells())
    }

    /// Total number of primary nodes.
    pub fn n_nodes(&self) -> usize {
        let (nx, ny, nz) = self.node_dims();
        nx * ny * nz
    }

    /// Total number of primary cells.
    pub fn n_cells(&self) -> usize {
        let (cx, cy, cz) = self.cell_dims();
        cx * cy * cz
    }

    /// Number of edges in the given direction.
    pub fn n_edges_dir(&self, dir: Direction) -> usize {
        let (nx, ny, nz) = self.node_dims();
        match dir {
            Direction::X => (nx - 1) * ny * nz,
            Direction::Y => nx * (ny - 1) * nz,
            Direction::Z => nx * ny * (nz - 1),
        }
    }

    /// Total number of primary edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges_dir(Direction::X)
            + self.n_edges_dir(Direction::Y)
            + self.n_edges_dir(Direction::Z)
    }

    // ----- node indexing ---------------------------------------------------

    /// Linear node index of `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Debug-panics on out-of-range indices.
    #[inline]
    pub fn node_index(&self, i: usize, j: usize, k: usize) -> usize {
        let (nx, ny, _nz) = self.node_dims();
        debug_assert!(i < nx && j < self.y.n_nodes() && k < self.z.n_nodes());
        i + nx * (j + ny * k)
    }

    /// Inverse of [`Grid3::node_index`].
    #[inline]
    pub fn node_coords_of(&self, n: usize) -> (usize, usize, usize) {
        let (nx, ny, _) = self.node_dims();
        let i = n % nx;
        let j = (n / nx) % ny;
        let k = n / (nx * ny);
        (i, j, k)
    }

    /// Physical position `(x, y, z)` of node `n`.
    pub fn node_position(&self, n: usize) -> (f64, f64, f64) {
        let (i, j, k) = self.node_coords_of(n);
        (self.x.coord(i), self.y.coord(j), self.z.coord(k))
    }

    /// Node nearest to the physical point `(px, py, pz)`.
    pub fn nearest_node(&self, px: f64, py: f64, pz: f64) -> usize {
        self.node_index(
            self.x.nearest_node(px),
            self.y.nearest_node(py),
            self.z.nearest_node(pz),
        )
    }

    /// Whether node `n` lies on the outer boundary, and on which faces.
    pub fn boundary_faces(&self, n: usize) -> Vec<Face> {
        let (nx, ny, nz) = self.node_dims();
        let (i, j, k) = self.node_coords_of(n);
        let mut faces = Vec::new();
        if i == 0 {
            faces.push(Face::XMin);
        }
        if i == nx - 1 {
            faces.push(Face::XMax);
        }
        if j == 0 {
            faces.push(Face::YMin);
        }
        if j == ny - 1 {
            faces.push(Face::YMax);
        }
        if k == 0 {
            faces.push(Face::ZMin);
        }
        if k == nz - 1 {
            faces.push(Face::ZMax);
        }
        faces
    }

    /// Whether node `n` lies on the outer boundary.
    pub fn is_boundary_node(&self, n: usize) -> bool {
        let (nx, ny, nz) = self.node_dims();
        let (i, j, k) = self.node_coords_of(n);
        i == 0 || i == nx - 1 || j == 0 || j == ny - 1 || k == 0 || k == nz - 1
    }

    // ----- edge indexing ---------------------------------------------------

    /// Linear edge index of the x-directed edge starting at node `(i, j, k)`.
    #[inline]
    pub fn x_edge_index(&self, i: usize, j: usize, k: usize) -> usize {
        let (nx, ny, _) = self.node_dims();
        debug_assert!(i < nx - 1);
        i + (nx - 1) * (j + ny * k)
    }

    /// Linear edge index of the y-directed edge starting at node `(i, j, k)`.
    #[inline]
    pub fn y_edge_index(&self, i: usize, j: usize, k: usize) -> usize {
        let (nx, ny, _) = self.node_dims();
        debug_assert!(j < ny - 1);
        self.n_edges_dir(Direction::X) + i + nx * (j + (ny - 1) * k)
    }

    /// Linear edge index of the z-directed edge starting at node `(i, j, k)`.
    #[inline]
    pub fn z_edge_index(&self, i: usize, j: usize, k: usize) -> usize {
        let (nx, ny, nz) = self.node_dims();
        debug_assert!(k < nz - 1, "z edge k={k} out of range nz={nz}");
        self.n_edges_dir(Direction::X) + self.n_edges_dir(Direction::Y) + i + nx * (j + ny * k)
    }

    /// Direction and lattice coordinates `(i, j, k)` of edge `e`.
    pub fn edge_decompose(&self, e: usize) -> (Direction, usize, usize, usize) {
        let nex = self.n_edges_dir(Direction::X);
        let ney = self.n_edges_dir(Direction::Y);
        let (nx, ny, _) = self.node_dims();
        if e < nex {
            let i = e % (nx - 1);
            let j = (e / (nx - 1)) % ny;
            let k = e / ((nx - 1) * ny);
            (Direction::X, i, j, k)
        } else if e < nex + ney {
            let r = e - nex;
            let i = r % nx;
            let j = (r / nx) % (ny - 1);
            let k = r / (nx * (ny - 1));
            (Direction::Y, i, j, k)
        } else {
            let r = e - nex - ney;
            let i = r % nx;
            let j = (r / nx) % ny;
            let k = r / (nx * ny);
            (Direction::Z, i, j, k)
        }
    }

    /// The two endpoint nodes `(tail, head)` of edge `e`; the edge points
    /// from `tail` to `head` in the positive axis direction.
    #[inline]
    pub fn edge_endpoints(&self, e: usize) -> (usize, usize) {
        let (a, b) = self.tables.endpoints[e];
        (a as usize, b as usize)
    }

    /// Decompose-based definition of [`Grid3::edge_endpoints`] (table fill).
    fn edge_endpoints_computed(&self, e: usize) -> (usize, usize) {
        let (dir, i, j, k) = self.edge_decompose(e);
        let a = self.node_index(i, j, k);
        let b = match dir {
            Direction::X => self.node_index(i + 1, j, k),
            Direction::Y => self.node_index(i, j + 1, k),
            Direction::Z => self.node_index(i, j, k + 1),
        };
        (a, b)
    }

    /// Length `ℓ` of primary edge `e`.
    #[inline]
    pub fn edge_length(&self, e: usize) -> f64 {
        self.tables.geom[e].1
    }

    /// Decompose-based definition of [`Grid3::edge_length`] (table fill).
    fn edge_length_computed(&self, e: usize) -> f64 {
        let (dir, i, j, k) = self.edge_decompose(e);
        match dir {
            Direction::X => self.x.spacing(i),
            Direction::Y => self.y.spacing(j),
            Direction::Z => self.z.spacing(k),
        }
    }

    /// Area `Ã` of the dual facet crossed by primary edge `e`.
    #[inline]
    pub fn dual_area(&self, e: usize) -> f64 {
        self.tables.geom[e].0
    }

    /// Decompose-based definition of [`Grid3::dual_area`] (table fill).
    fn dual_area_computed(&self, e: usize) -> f64 {
        let (dir, i, j, k) = self.edge_decompose(e);
        match dir {
            Direction::X => self.y.dual_spacing(j) * self.z.dual_spacing(k),
            Direction::Y => self.x.dual_spacing(i) * self.z.dual_spacing(k),
            Direction::Z => self.x.dual_spacing(i) * self.y.dual_spacing(j),
        }
    }

    // ----- cell indexing ---------------------------------------------------

    /// Linear cell index of `(i, j, k)`.
    #[inline]
    pub fn cell_index(&self, i: usize, j: usize, k: usize) -> usize {
        let (cx, cy, _) = self.cell_dims();
        debug_assert!(i < cx && j < cy && k < self.z.n_cells());
        i + cx * (j + cy * k)
    }

    /// Inverse of [`Grid3::cell_index`].
    #[inline]
    pub fn cell_coords_of(&self, c: usize) -> (usize, usize, usize) {
        let (cx, cy, _) = self.cell_dims();
        let i = c % cx;
        let j = (c / cx) % cy;
        let k = c / (cx * cy);
        (i, j, k)
    }

    /// Volume of primary cell `c`.
    pub fn cell_volume(&self, c: usize) -> f64 {
        let (i, j, k) = self.cell_coords_of(c);
        self.x.spacing(i) * self.y.spacing(j) * self.z.spacing(k)
    }

    /// Center point of primary cell `c`.
    pub fn cell_center(&self, c: usize) -> (f64, f64, f64) {
        let (i, j, k) = self.cell_coords_of(c);
        (
            0.5 * (self.x.coord(i) + self.x.coord(i + 1)),
            0.5 * (self.y.coord(j) + self.y.coord(j + 1)),
            0.5 * (self.z.coord(k) + self.z.coord(k + 1)),
        )
    }

    /// The eight corner nodes of cell `c`, ordered `(i,j,k)`-lexicographic.
    #[inline]
    pub fn cell_nodes(&self, c: usize) -> [usize; 8] {
        self.tables.cell_nodes[c].map(|n| n as usize)
    }

    /// Decompose-based definition of [`Grid3::cell_nodes`] (table fill).
    fn cell_nodes_computed(&self, c: usize) -> [usize; 8] {
        let (i, j, k) = self.cell_coords_of(c);
        [
            self.node_index(i, j, k),
            self.node_index(i + 1, j, k),
            self.node_index(i, j + 1, k),
            self.node_index(i + 1, j + 1, k),
            self.node_index(i, j, k + 1),
            self.node_index(i + 1, j, k + 1),
            self.node_index(i, j + 1, k + 1),
            self.node_index(i + 1, j + 1, k + 1),
        ]
    }

    /// The twelve edges of cell `c`, grouped as `[x-edges; 4]`, `[y; 4]`,
    /// `[z; 4]`.
    pub fn cell_edges(&self, c: usize) -> [usize; 12] {
        let (i, j, k) = self.cell_coords_of(c);
        [
            self.x_edge_index(i, j, k),
            self.x_edge_index(i, j + 1, k),
            self.x_edge_index(i, j, k + 1),
            self.x_edge_index(i, j + 1, k + 1),
            self.y_edge_index(i, j, k),
            self.y_edge_index(i + 1, j, k),
            self.y_edge_index(i, j, k + 1),
            self.y_edge_index(i + 1, j, k + 1),
            self.z_edge_index(i, j, k),
            self.z_edge_index(i + 1, j, k),
            self.z_edge_index(i, j + 1, k),
            self.z_edge_index(i + 1, j + 1, k),
        ]
    }

    // ----- dual geometry ---------------------------------------------------

    /// Volume `Ṽ` of the dual cell around node `n`.
    pub fn dual_volume(&self, n: usize) -> f64 {
        let (i, j, k) = self.node_coords_of(n);
        self.x.dual_spacing(i) * self.y.dual_spacing(j) * self.z.dual_spacing(k)
    }

    /// Cells touching node `n` with their overlap volumes
    /// (up to 8 quadrant volumes; used for `ρc` volumetric averaging).
    pub fn cells_touching_node(&self, n: usize) -> Vec<(usize, f64)> {
        let (i, j, k) = self.node_coords_of(n);
        let (cx, cy, cz) = self.cell_dims();
        let mut out = Vec::with_capacity(8);
        for dk in 0..2usize {
            let kk = match k.checked_sub(dk) {
                Some(v) if v < cz => v,
                _ => continue,
            };
            for dj in 0..2usize {
                let jj = match j.checked_sub(dj) {
                    Some(v) if v < cy => v,
                    _ => continue,
                };
                for di in 0..2usize {
                    let ii = match i.checked_sub(di) {
                        Some(v) if v < cx => v,
                        _ => continue,
                    };
                    // Octant volume (dx/2)(dy/2)(dz/2) of the touching cell.
                    let w = 0.125 * self.x.spacing(ii) * self.y.spacing(jj) * self.z.spacing(kk);
                    out.push((self.cell_index(ii, jj, kk), w));
                }
            }
        }
        out
    }

    /// Cells touching edge `e` with their overlap cross-section weights
    /// (up to 4; used for `σ`/`λ` volumetric averaging onto edges).
    ///
    /// The weight of each touching cell is the quarter cross-section area it
    /// contributes to the dual facet of the edge. Allocates; the assembly
    /// hot path uses the visitor variant
    /// [`Grid3::for_each_cell_touching_edge`] instead.
    pub fn cells_touching_edge(&self, e: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(4);
        self.for_each_cell_touching_edge(e, |c, w| out.push((c, w)));
        out
    }

    /// Calls `visit(cell, weight)` for every cell touching edge `e` —
    /// allocation-free variant of [`Grid3::cells_touching_edge`] for the
    /// per-Picard-iterate material averaging.
    #[inline]
    pub fn for_each_cell_touching_edge(&self, e: usize, mut visit: impl FnMut(usize, f64)) {
        let lo = self.tables.touch_off[e] as usize;
        let hi = self.tables.touch_off[e + 1] as usize;
        for (c, w) in self.tables.touch_cell[lo..hi]
            .iter()
            .zip(&self.tables.touch_w[lo..hi])
        {
            visit(*c as usize, *w);
        }
    }

    /// Decompose-based definition of [`Grid3::for_each_cell_touching_edge`]
    /// (table fill).
    fn for_each_cell_touching_edge_computed(&self, e: usize, mut visit: impl FnMut(usize, f64)) {
        let (dir, i, j, k) = self.edge_decompose(e);
        let (cx, cy, cz) = self.cell_dims();
        match dir {
            Direction::X => {
                for dk in 0..2usize {
                    let kk = match k.checked_sub(dk) {
                        Some(v) if v < cz => v,
                        _ => continue,
                    };
                    for dj in 0..2usize {
                        let jj = match j.checked_sub(dj) {
                            Some(v) if v < cy => v,
                            _ => continue,
                        };
                        let w = 0.25 * self.y.spacing(jj) * self.z.spacing(kk);
                        visit(self.cell_index(i, jj, kk), w);
                    }
                }
            }
            Direction::Y => {
                for dk in 0..2usize {
                    let kk = match k.checked_sub(dk) {
                        Some(v) if v < cz => v,
                        _ => continue,
                    };
                    for di in 0..2usize {
                        let ii = match i.checked_sub(di) {
                            Some(v) if v < cx => v,
                            _ => continue,
                        };
                        let w = 0.25 * self.x.spacing(ii) * self.z.spacing(kk);
                        visit(self.cell_index(ii, j, kk), w);
                    }
                }
            }
            Direction::Z => {
                for dj in 0..2usize {
                    let jj = match j.checked_sub(dj) {
                        Some(v) if v < cy => v,
                        _ => continue,
                    };
                    for di in 0..2usize {
                        let ii = match i.checked_sub(di) {
                            Some(v) if v < cx => v,
                            _ => continue,
                        };
                        let w = 0.25 * self.x.spacing(ii) * self.y.spacing(jj);
                        visit(self.cell_index(ii, jj, k), w);
                    }
                }
            }
        }
    }

    /// Outer-boundary facet area assigned to node `n` on face `face`
    /// (zero if the node does not lie on that face).
    ///
    /// This is the portion of the boundary surface covered by the node's
    /// dual cell — the area through which convection/radiation exchange heat
    /// with the environment.
    pub fn boundary_area(&self, n: usize, face: Face) -> f64 {
        let (nx, ny, nz) = self.node_dims();
        let (i, j, k) = self.node_coords_of(n);
        let on_face = match face {
            Face::XMin => i == 0,
            Face::XMax => i == nx - 1,
            Face::YMin => j == 0,
            Face::YMax => j == ny - 1,
            Face::ZMin => k == 0,
            Face::ZMax => k == nz - 1,
        };
        if !on_face {
            return 0.0;
        }
        match face {
            Face::XMin | Face::XMax => self.y.dual_spacing(j) * self.z.dual_spacing(k),
            Face::YMin | Face::YMax => self.x.dual_spacing(i) * self.z.dual_spacing(k),
            Face::ZMin | Face::ZMax => self.x.dual_spacing(i) * self.y.dual_spacing(j),
        }
    }

    /// Total boundary area of node `n` over all faces it belongs to.
    pub fn total_boundary_area(&self, n: usize) -> f64 {
        Face::ALL.iter().map(|&f| self.boundary_area(n, f)).sum()
    }

    /// Uniformly refines all three axes by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn refine(&self, factor: usize) -> Grid3 {
        Grid3::new(
            self.x.refine(factor),
            self.y.refine(factor),
            self.z.refine(factor),
        )
    }

    /// Nodes within the closed axis-aligned box `[lo, hi]` (inclusive,
    /// with a small relative tolerance on the box faces).
    pub fn nodes_in_box(&self, lo: (f64, f64, f64), hi: (f64, f64, f64)) -> Vec<usize> {
        let eps = 1e-12
            * (self.x.extent().abs() + self.y.extent().abs() + self.z.extent().abs()).max(1.0);
        let mut out = Vec::new();
        for n in 0..self.n_nodes() {
            let (px, py, pz) = self.node_position(n);
            if px >= lo.0 - eps
                && px <= hi.0 + eps
                && py >= lo.1 - eps
                && py <= hi.1 + eps
                && pz >= lo.2 - eps
                && pz <= hi.2 + eps
            {
                out.push(n);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2x2x1() -> Grid3 {
        Grid3::new(
            Axis::uniform(0.0, 2.0, 2).unwrap(),
            Axis::uniform(0.0, 2.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 1).unwrap(),
        )
    }

    fn grid_nonuniform() -> Grid3 {
        Grid3::new(
            Axis::from_coords(vec![0.0, 0.5, 2.0, 2.5]).unwrap(),
            Axis::from_coords(vec![0.0, 1.0, 1.5]).unwrap(),
            Axis::from_coords(vec![0.0, 0.25, 1.0]).unwrap(),
        )
    }

    #[test]
    fn entity_counts() {
        let g = grid_2x2x1();
        assert_eq!(g.n_nodes(), 18);
        assert_eq!(g.n_cells(), 4);
        assert_eq!(g.n_edges_dir(Direction::X), 2 * 3 * 2);
        assert_eq!(g.n_edges_dir(Direction::Y), 3 * 2 * 2);
        assert_eq!(g.n_edges_dir(Direction::Z), 3 * 3);
        assert_eq!(g.n_edges(), 12 + 12 + 9);
    }

    #[test]
    fn node_index_roundtrip() {
        let g = grid_nonuniform();
        for n in 0..g.n_nodes() {
            let (i, j, k) = g.node_coords_of(n);
            assert_eq!(g.node_index(i, j, k), n);
        }
    }

    #[test]
    fn cell_index_roundtrip() {
        let g = grid_nonuniform();
        for c in 0..g.n_cells() {
            let (i, j, k) = g.cell_coords_of(c);
            assert_eq!(g.cell_index(i, j, k), c);
        }
    }

    #[test]
    fn edge_decompose_roundtrip() {
        let g = grid_nonuniform();
        for e in 0..g.n_edges() {
            let (dir, i, j, k) = g.edge_decompose(e);
            let back = match dir {
                Direction::X => g.x_edge_index(i, j, k),
                Direction::Y => g.y_edge_index(i, j, k),
                Direction::Z => g.z_edge_index(i, j, k),
            };
            assert_eq!(back, e);
        }
    }

    #[test]
    fn edge_endpoints_differ_by_one_step() {
        let g = grid_nonuniform();
        for e in 0..g.n_edges() {
            let (a, b) = g.edge_endpoints(e);
            let (ai, aj, ak) = g.node_coords_of(a);
            let (bi, bj, bk) = g.node_coords_of(b);
            let diff = (bi - ai) + (bj - aj) + (bk - ak);
            assert_eq!(diff, 1, "edge {e} endpoints not adjacent");
            // Length equals coordinate distance.
            let (pa, pb) = (g.node_position(a), g.node_position(b));
            let d = ((pb.0 - pa.0).powi(2) + (pb.1 - pa.1).powi(2) + (pb.2 - pa.2).powi(2)).sqrt();
            assert!((d - g.edge_length(e)).abs() < 1e-12);
        }
    }

    #[test]
    fn dual_volumes_tile_domain() {
        let g = grid_nonuniform();
        let total: f64 = (0..g.n_nodes()).map(|n| g.dual_volume(n)).sum();
        let domain = g.x().extent() * g.y().extent() * g.z().extent();
        assert!((total - domain).abs() < 1e-12);
    }

    #[test]
    fn cell_volumes_tile_domain() {
        let g = grid_nonuniform();
        let total: f64 = (0..g.n_cells()).map(|c| g.cell_volume(c)).sum();
        let domain = g.x().extent() * g.y().extent() * g.z().extent();
        assert!((total - domain).abs() < 1e-12);
    }

    #[test]
    fn dual_areas_tile_cross_sections() {
        // Sum of dual areas of all x-edges with the same i equals the full
        // y-z cross section.
        let g = grid_nonuniform();
        let (nx, ny, nz) = g.node_dims();
        let cross = g.y().extent() * g.z().extent();
        for i in 0..nx - 1 {
            let mut s = 0.0;
            for j in 0..ny {
                for k in 0..nz {
                    s += g.dual_area(g.x_edge_index(i, j, k));
                }
            }
            assert!((s - cross).abs() < 1e-12);
        }
    }

    #[test]
    fn cells_touching_node_weights_sum_to_dual_volume() {
        let g = grid_nonuniform();
        for n in 0..g.n_nodes() {
            let parts = g.cells_touching_node(n);
            assert!(!parts.is_empty() && parts.len() <= 8);
            let s: f64 = parts.iter().map(|&(_, w)| w).sum();
            assert!(
                (s - g.dual_volume(n)).abs() < 1e-12,
                "node {n}: {s} vs {}",
                g.dual_volume(n)
            );
        }
    }

    #[test]
    fn cells_touching_edge_weights_sum_to_dual_area() {
        let g = grid_nonuniform();
        for e in 0..g.n_edges() {
            let parts = g.cells_touching_edge(e);
            assert!(!parts.is_empty() && parts.len() <= 4);
            let s: f64 = parts.iter().map(|&(_, w)| w).sum();
            assert!(
                (s - g.dual_area(e)).abs() < 1e-12,
                "edge {e}: {s} vs {}",
                g.dual_area(e)
            );
        }
    }

    #[test]
    fn boundary_detection_and_areas() {
        let g = grid_2x2x1();
        // Corner node lies on three faces.
        let corner = g.node_index(0, 0, 0);
        assert_eq!(g.boundary_faces(corner).len(), 3);
        assert!(g.is_boundary_node(corner));
        // With nz = 2 every node is on ZMin or ZMax: all nodes are boundary.
        assert!((0..g.n_nodes()).all(|n| g.is_boundary_node(n)));
        // Total area of face ZMin equals the x-y cross-section.
        let a: f64 = (0..g.n_nodes())
            .map(|n| g.boundary_area(n, Face::ZMin))
            .sum();
        assert!((a - 4.0).abs() < 1e-12);
        // A node not on XMin contributes zero area there.
        let inner_x = g.node_index(1, 1, 0);
        assert_eq!(g.boundary_area(inner_x, Face::XMin), 0.0);
    }

    #[test]
    fn total_boundary_area_matches_surface() {
        let g = grid_nonuniform();
        let total: f64 = (0..g.n_nodes()).map(|n| g.total_boundary_area(n)).sum();
        let (lx, ly, lz) = (g.x().extent(), g.y().extent(), g.z().extent());
        let surface = 2.0 * (lx * ly + ly * lz + lx * lz);
        assert!((total - surface).abs() < 1e-12);
    }

    #[test]
    fn cell_nodes_are_corners() {
        let g = grid_nonuniform();
        for c in 0..g.n_cells() {
            let nodes = g.cell_nodes(c);
            let (cx, cy, cz) = g.cell_center(c);
            // All corners are at distance (dx/2, dy/2, dz/2) from the center.
            for &n in &nodes {
                let (px, py, pz) = g.node_position(n);
                let (i, j, k) = g.cell_coords_of(c);
                assert!((px - cx).abs() <= 0.5 * g.x().spacing(i) + 1e-12);
                assert!((py - cy).abs() <= 0.5 * g.y().spacing(j) + 1e-12);
                assert!((pz - cz).abs() <= 0.5 * g.z().spacing(k) + 1e-12);
            }
        }
    }

    #[test]
    fn cell_edges_belong_to_cell() {
        let g = grid_nonuniform();
        for c in 0..g.n_cells() {
            let nodes = g.cell_nodes(c);
            for &e in &g.cell_edges(c) {
                let (a, b) = g.edge_endpoints(e);
                assert!(nodes.contains(&a) && nodes.contains(&b));
            }
        }
    }

    #[test]
    fn nearest_node_lookup() {
        let g = grid_nonuniform();
        let n = g.nearest_node(0.4, 0.9, 0.2);
        let (px, py, pz) = g.node_position(n);
        assert_eq!((px, py, pz), (0.5, 1.0, 0.25));
    }

    #[test]
    fn nodes_in_box_selects_plane() {
        let g = grid_2x2x1();
        let plane = g.nodes_in_box((0.0, 0.0, 0.0), (2.0, 2.0, 0.0));
        assert_eq!(plane.len(), 9);
        for n in plane {
            assert_eq!(g.node_position(n).2, 0.0);
        }
    }

    #[test]
    fn refine_multiplies_cells() {
        let g = grid_2x2x1();
        let r = g.refine(2);
        assert_eq!(r.n_cells(), 4 * 8); // 4 cells × 2³ = 32
        assert_eq!(r.n_cells(), 32);
        assert_eq!(r.cell_dims(), (4, 4, 2));
    }
}
