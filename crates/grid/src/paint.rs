//! Staircase material assignment: painting axis-aligned boxes onto primary
//! cells.
//!
//! The paper assumes a *staircase material approximation at the primary
//! grid*: each primary cell consists of one homogeneous material. Package
//! geometry (mold compound, chip, contact pads) is described as a stack of
//! axis-aligned [`BoxRegion`]s painted in order onto a [`CellPaint`]; later
//! paints overwrite earlier ones, exactly like layered lithography masks.

use crate::grid::Grid3;

/// Identifier of a material region (index into a material table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MaterialId(pub u16);

/// An axis-aligned box `[lo, hi]` in physical coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxRegion {
    /// Lower corner `(x, y, z)`.
    pub lo: (f64, f64, f64),
    /// Upper corner `(x, y, z)`.
    pub hi: (f64, f64, f64),
}

impl BoxRegion {
    /// Creates a box from two corners (components are sorted).
    pub fn new(a: (f64, f64, f64), b: (f64, f64, f64)) -> Self {
        BoxRegion {
            lo: (a.0.min(b.0), a.1.min(b.1), a.2.min(b.2)),
            hi: (a.0.max(b.0), a.1.max(b.1), a.2.max(b.2)),
        }
    }

    /// Whether the box contains point `p` (closed box, tolerance `eps`).
    pub fn contains(&self, p: (f64, f64, f64), eps: f64) -> bool {
        p.0 >= self.lo.0 - eps
            && p.0 <= self.hi.0 + eps
            && p.1 >= self.lo.1 - eps
            && p.1 <= self.hi.1 + eps
            && p.2 >= self.lo.2 - eps
            && p.2 <= self.hi.2 + eps
    }

    /// Volume of the box.
    pub fn volume(&self) -> f64 {
        (self.hi.0 - self.lo.0) * (self.hi.1 - self.lo.1) * (self.hi.2 - self.lo.2)
    }

    /// The six box face coordinates as `(xs, ys, zs)` — the "key planes"
    /// a conforming mesh should include.
    pub fn key_planes(&self) -> ([f64; 2], [f64; 2], [f64; 2]) {
        (
            [self.lo.0, self.hi.0],
            [self.lo.1, self.hi.1],
            [self.lo.2, self.hi.2],
        )
    }
}

/// Per-primary-cell material assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPaint {
    materials: Vec<MaterialId>,
}

impl CellPaint {
    /// Creates a paint with every cell set to `background`.
    pub fn new(grid: &Grid3, background: MaterialId) -> Self {
        CellPaint {
            materials: vec![background; grid.n_cells()],
        }
    }

    /// Number of painted cells.
    pub fn n_cells(&self) -> usize {
        self.materials.len()
    }

    /// Material of cell `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[inline]
    pub fn material(&self, c: usize) -> MaterialId {
        self.materials[c]
    }

    /// Slice of all cell materials.
    pub fn materials(&self) -> &[MaterialId] {
        &self.materials
    }

    /// Paints `material` onto every cell whose *center* lies inside `region`.
    ///
    /// Returns the number of cells painted. Using cell centers makes the
    /// assignment unambiguous when box faces coincide with grid planes (the
    /// recommended, conforming configuration — see
    /// [`crate::builder::GridBuilder`]).
    pub fn paint(&mut self, grid: &Grid3, region: &BoxRegion, material: MaterialId) -> usize {
        assert_eq!(
            grid.n_cells(),
            self.materials.len(),
            "paint: grid does not match paint size"
        );
        let eps = 1e-12 * region.volume().abs().cbrt().max(1.0);
        let mut painted = 0;
        for c in 0..grid.n_cells() {
            if region.contains(grid.cell_center(c), eps) {
                self.materials[c] = material;
                painted += 1;
            }
        }
        painted
    }

    /// Total volume of all cells currently painted with `material`.
    pub fn material_volume(&self, grid: &Grid3, material: MaterialId) -> f64 {
        (0..grid.n_cells())
            .filter(|&c| self.materials[c] == material)
            .map(|c| grid.cell_volume(c))
            .sum()
    }

    /// Count of cells painted with `material`.
    pub fn material_cells(&self, material: MaterialId) -> usize {
        self.materials.iter().filter(|&&m| m == material).count()
    }

    /// Re-paints this assignment onto a refined grid (each refined cell
    /// inherits its parent's material).
    ///
    /// # Panics
    ///
    /// Panics if `fine` is not a `factor`-refinement of `coarse`.
    pub fn refine(&self, coarse: &Grid3, fine: &Grid3, factor: usize) -> CellPaint {
        let (cx, cy, cz) = coarse.cell_dims();
        let (fx, fy, fz) = fine.cell_dims();
        assert_eq!((fx, fy, fz), (cx * factor, cy * factor, cz * factor));
        let mut materials = vec![MaterialId::default(); fine.n_cells()];
        for c in 0..fine.n_cells() {
            let (i, j, k) = fine.cell_coords_of(c);
            let parent = coarse.cell_index(i / factor, j / factor, k / factor);
            materials[c] = self.materials[parent];
        }
        CellPaint { materials }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;

    fn grid() -> Grid3 {
        Grid3::new(
            Axis::uniform(0.0, 4.0, 4).unwrap(),
            Axis::uniform(0.0, 4.0, 4).unwrap(),
            Axis::uniform(0.0, 2.0, 2).unwrap(),
        )
    }

    const BG: MaterialId = MaterialId(0);
    const CU: MaterialId = MaterialId(1);

    #[test]
    fn box_normalizes_corners() {
        let b = BoxRegion::new((1.0, 0.0, 5.0), (0.0, 2.0, 4.0));
        assert_eq!(b.lo, (0.0, 0.0, 4.0));
        assert_eq!(b.hi, (1.0, 2.0, 5.0));
        assert!((b.volume() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn contains_with_tolerance() {
        let b = BoxRegion::new((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        assert!(b.contains((0.5, 0.5, 0.5), 0.0));
        assert!(b.contains((1.0, 1.0, 1.0), 0.0));
        assert!(!b.contains((1.1, 0.5, 0.5), 0.0));
        assert!(b.contains((1.05, 0.5, 0.5), 0.1));
    }

    #[test]
    fn paint_covers_expected_cells() {
        let g = grid();
        let mut paint = CellPaint::new(&g, BG);
        // Paint a 2×2×1 sub-box aligned to grid planes.
        let n = paint.paint(&g, &BoxRegion::new((0.0, 0.0, 0.0), (2.0, 2.0, 1.0)), CU);
        assert_eq!(n, 4);
        assert_eq!(paint.material_cells(CU), 4);
        assert!((paint.material_volume(&g, CU) - 4.0).abs() < 1e-12);
        assert!((paint.material_volume(&g, BG) - 28.0).abs() < 1e-12);
    }

    #[test]
    fn later_paint_overwrites() {
        let g = grid();
        let mut paint = CellPaint::new(&g, BG);
        paint.paint(&g, &BoxRegion::new((0.0, 0.0, 0.0), (4.0, 4.0, 2.0)), CU);
        assert_eq!(paint.material_cells(CU), g.n_cells());
        let m2 = MaterialId(2);
        paint.paint(&g, &BoxRegion::new((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)), m2);
        assert_eq!(paint.material_cells(m2), 1);
        assert_eq!(paint.material_cells(CU), g.n_cells() - 1);
    }

    #[test]
    fn zero_volume_box_paints_nothing() {
        let g = grid();
        let mut paint = CellPaint::new(&g, BG);
        let n = paint.paint(&g, &BoxRegion::new((0.0, 0.0, 0.0), (0.0, 4.0, 2.0)), CU);
        assert_eq!(n, 0);
    }

    #[test]
    fn refine_inherits_materials() {
        let g = grid();
        let mut paint = CellPaint::new(&g, BG);
        paint.paint(&g, &BoxRegion::new((0.0, 0.0, 0.0), (2.0, 2.0, 1.0)), CU);
        let fine = g.refine(2);
        let fp = paint.refine(&g, &fine, 2);
        assert_eq!(fp.material_cells(CU), 4 * 8);
        assert!((fp.material_volume(&fine, CU) - paint.material_volume(&g, CU)).abs() < 1e-12);
    }

    #[test]
    fn key_planes_roundtrip() {
        let b = BoxRegion::new((0.0, 1.0, 2.0), (3.0, 4.0, 5.0));
        let (xs, ys, zs) = b.key_planes();
        assert_eq!(xs, [0.0, 3.0]);
        assert_eq!(ys, [1.0, 4.0]);
        assert_eq!(zs, [2.0, 5.0]);
    }
}
