//! 3D tensor-product hexahedral grid pair for the Finite Integration
//! Technique (FIT).
//!
//! FIT operates on a *staggered grid pair*: the primary grid carries the
//! degrees of freedom (electric potentials and temperatures at primary
//! nodes, voltages and temperature drops on primary edges) while the dual
//! grid carries the fluxes (currents and heat fluxes through dual facets,
//! charges/energies in dual cells). For a tensor-product (mutually
//! orthogonal) grid pair every primary edge crosses exactly one dual facet
//! perpendicularly, which renders all material matrices diagonal — the key
//! structural property this crate exposes.
//!
//! * [`axis::Axis`] — a monotone 1D coordinate axis with primary and dual
//!   spacings,
//! * [`grid::Grid3`] — the 3D grid with node/edge/cell indexing and all dual
//!   geometry (lengths `ℓ`, areas `Ã`, volumes `Ṽ`),
//! * [`operators`] — the discrete gradient `G` and divergence `S̃ = −Gᵀ`
//!   incidence matrices,
//! * [`paint`] — axis-aligned-box material painting onto primary cells,
//! * [`builder::GridBuilder`] — mesh generation from "key planes" (material
//!   interfaces) plus a target spacing.

#![forbid(unsafe_code)]

pub mod axis;
pub mod builder;
pub mod grid;
pub mod operators;
pub mod paint;

pub use axis::Axis;
pub use builder::GridBuilder;
pub use grid::{Direction, Face, Grid3};
pub use paint::{BoxRegion, CellPaint, MaterialId};
