//! Discrete FIT topology operators: gradient `G` and dual divergence `S̃`.
//!
//! With potentials `Φ` on primary nodes, the voltages on primary edges are
//! `_e = −G Φ`, where row `e` of `G` holds `−1` at the edge tail and `+1` at
//! the head. The dual divergence satisfies the exact duality `S̃ = −Gᵀ`
//! (paper §III-A), so the stiffness ("curl-curl-free Laplacian") of the
//! stationary current / heat conduction problems is
//! `K = S̃ M G·(−1) = Gᵀ M G` — symmetric positive semidefinite with zero row
//! sums, becoming SPD after Dirichlet elimination.
//!
//! The module offers both the explicit sparse operators (for tests and
//! generic code) and a fused 7-point-stencil assembly of `Gᵀ M G` that skips
//! the triple product (used by the hot reassembly path).

use crate::grid::Grid3;
use etherm_numerics::sparse::{Coo, Csr};

/// Builds the discrete gradient `G` (edges × nodes incidence matrix).
///
/// Row `e` has `−1` at the tail node and `+1` at the head node of edge `e`.
pub fn gradient(grid: &Grid3) -> Csr {
    let mut coo = Coo::with_capacity(grid.n_edges(), grid.n_nodes(), 2 * grid.n_edges());
    for e in 0..grid.n_edges() {
        let (a, b) = grid.edge_endpoints(e);
        coo.push(e, a, -1.0);
        coo.push(e, b, 1.0);
    }
    Csr::from_coo(&coo)
}

/// Builds the dual divergence `S̃ = −Gᵀ` (nodes × edges).
pub fn divergence(grid: &Grid3) -> Csr {
    let mut g = gradient(grid).transpose();
    g.scale(-1.0);
    g
}

/// Assembles the stiffness matrix `K = Gᵀ diag(m) G` into `coo`, where
/// `m[e]` is the diagonal material-matrix entry of edge `e` (e.g.
/// `σ_e Ã_e / ℓ_e`).
///
/// The stamp of edge `e = (a, b)` is the 2×2 conductance block
/// `[[m, −m], [−m, m]]`, so the result is symmetric with zero row sums —
/// the 7-point stencil of the FIT Laplacian on a tensor grid.
///
/// # Panics
///
/// Panics if `m.len() != grid.n_edges()` or `coo` is not
/// `n_nodes × n_nodes`.
pub fn assemble_stiffness_into(grid: &Grid3, m: &[f64], coo: &mut Coo) {
    assert_eq!(m.len(), grid.n_edges(), "stiffness: edge weight count");
    assert_eq!(coo.n_rows(), grid.n_nodes(), "stiffness: coo rows");
    assert_eq!(coo.n_cols(), grid.n_nodes(), "stiffness: coo cols");
    for e in 0..grid.n_edges() {
        let me = m[e];
        if me == 0.0 {
            continue;
        }
        let (a, b) = grid.edge_endpoints(e);
        coo.stamp_conductance(a, b, me);
    }
}

/// Convenience wrapper around [`assemble_stiffness_into`] returning a CSR.
pub fn assemble_stiffness(grid: &Grid3, m: &[f64]) -> Csr {
    let n = grid.n_nodes();
    let mut coo = Coo::with_capacity(n, n, 4 * grid.n_edges() + n);
    // Stamp an explicit zero-capable diagonal so downstream `add_diag`
    // (mass/Robin terms) always finds stored entries.
    for i in 0..n {
        coo.push_structural(i, i, 0.0);
    }
    assemble_stiffness_into(grid, m, &mut coo);
    Csr::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;

    fn grid() -> Grid3 {
        Grid3::new(
            Axis::uniform(0.0, 1.0, 2).unwrap(),
            Axis::uniform(0.0, 2.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 1).unwrap(),
        )
    }

    #[test]
    fn gradient_shape_and_rows() {
        let g = grid();
        let grad = gradient(&g);
        assert_eq!(grad.n_rows(), g.n_edges());
        assert_eq!(grad.n_cols(), g.n_nodes());
        // Every row has exactly one −1 and one +1.
        for e in 0..g.n_edges() {
            let (cols, vals) = grad.row(e);
            assert_eq!(cols.len(), 2);
            let mut sorted = vals.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(sorted, vec![-1.0, 1.0]);
        }
    }

    #[test]
    fn duality_s_equals_minus_g_transpose() {
        let g = grid();
        let grad = gradient(&g);
        let div = divergence(&g);
        let mut gt = grad.transpose();
        gt.scale(-1.0);
        assert_eq!(div, gt);
    }

    #[test]
    fn gradient_of_constant_is_zero() {
        let g = grid();
        let grad = gradient(&g);
        let ones = vec![3.0; g.n_nodes()];
        let e = grad.matvec(&ones);
        assert!(e.iter().all(|&v| v.abs() < 1e-14));
    }

    #[test]
    fn gradient_of_linear_field_is_spacing() {
        // Φ(x,y,z) = x ⇒ voltage along x-edges = Δx, along y/z-edges = 0.
        let g = grid();
        let grad = gradient(&g);
        let phi: Vec<f64> = (0..g.n_nodes()).map(|n| g.node_position(n).0).collect();
        let e = grad.matvec(&phi);
        for edge in 0..g.n_edges() {
            let (dir, ..) = g.edge_decompose(edge);
            let expect = match dir {
                crate::grid::Direction::X => g.edge_length(edge),
                _ => 0.0,
            };
            assert!((e[edge] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn stiffness_matches_triple_product() {
        let g = grid();
        let m: Vec<f64> = (0..g.n_edges()).map(|e| 1.0 + (e % 5) as f64).collect();
        let k = assemble_stiffness(&g, &m);
        // Reference: K = Gᵀ diag(m) G via dense arithmetic.
        let grad = gradient(&g).to_dense();
        let md = etherm_numerics::dense::DenseMatrix::from_diag(&m);
        let gt = grad.transpose();
        let k_ref = gt.matmul(&md.matmul(&grad).unwrap()).unwrap();
        assert!(k.to_dense().max_abs_diff(&k_ref) < 1e-12);
    }

    #[test]
    fn stiffness_has_zero_row_sums_and_symmetry() {
        let g = grid();
        let m = vec![2.5; g.n_edges()];
        let k = assemble_stiffness(&g, &m);
        for s in k.row_sums() {
            assert!(s.abs() < 1e-12);
        }
        assert!(k.is_symmetric(1e-14));
        // Diagonal entries positive, off-diagonal non-positive (M-matrix).
        for (i, j, v) in k.iter() {
            if i == j {
                assert!(v > 0.0);
            } else {
                assert!(v <= 0.0);
            }
        }
    }

    #[test]
    fn stiffness_skips_zero_edges_but_keeps_diag() {
        let g = grid();
        let m = vec![0.0; g.n_edges()];
        let k = assemble_stiffness(&g, &m);
        assert_eq!(k.nnz(), g.n_nodes()); // only the explicit zero diagonal
    }
}
