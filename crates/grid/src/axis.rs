//! A monotone 1D coordinate axis with primary and dual spacings.

use std::fmt;

/// A strictly increasing sequence of node coordinates along one axis.
///
/// The *primary* spacing `dx[i] = x[i+1] − x[i]` is the length of primary
/// edge `i`; the *dual* spacing around node `i` is
/// `d̃x[i] = (dx[i−1] + dx[i]) / 2` with the one-sided halves at the two
/// boundary nodes, so that `Σᵢ d̃x[i] = x[n−1] − x[0]`.
///
/// # Example
///
/// ```
/// use etherm_grid::Axis;
///
/// let ax = Axis::uniform(0.0, 1.0, 4).unwrap(); // 5 nodes, h = 0.25
/// assert_eq!(ax.n_nodes(), 5);
/// assert!((ax.spacing(0) - 0.25).abs() < 1e-15);
/// assert!((ax.dual_spacing(0) - 0.125).abs() < 1e-15);
/// assert!((ax.dual_spacing(2) - 0.25).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    coords: Vec<f64>,
}

/// Error building an [`Axis`].
#[derive(Debug, Clone, PartialEq)]
pub enum AxisError {
    /// Fewer than two coordinates were supplied.
    TooFewNodes(usize),
    /// Coordinates not strictly increasing at the given position.
    NotIncreasing(usize),
    /// A coordinate was NaN or infinite.
    NotFinite(usize),
    /// Requested zero cells or non-positive extent.
    InvalidExtent,
}

impl fmt::Display for AxisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisError::TooFewNodes(n) => write!(f, "axis needs at least 2 nodes, got {n}"),
            AxisError::NotIncreasing(i) => {
                write!(f, "axis coordinates not strictly increasing at index {i}")
            }
            AxisError::NotFinite(i) => write!(f, "axis coordinate {i} is not finite"),
            AxisError::InvalidExtent => write!(f, "axis extent must be positive with ≥1 cell"),
        }
    }
}

impl std::error::Error for AxisError {}

impl Axis {
    /// Builds an axis from explicit node coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`AxisError`] if fewer than two coordinates are given, any is
    /// non-finite, or they are not strictly increasing.
    pub fn from_coords(coords: Vec<f64>) -> Result<Self, AxisError> {
        if coords.len() < 2 {
            return Err(AxisError::TooFewNodes(coords.len()));
        }
        for (i, &c) in coords.iter().enumerate() {
            if !c.is_finite() {
                return Err(AxisError::NotFinite(i));
            }
        }
        for i in 1..coords.len() {
            if coords[i] <= coords[i - 1] {
                return Err(AxisError::NotIncreasing(i));
            }
        }
        Ok(Axis { coords })
    }

    /// Builds a uniform axis over `[start, end]` with `n_cells` cells.
    ///
    /// # Errors
    ///
    /// Returns [`AxisError::InvalidExtent`] if `end <= start` or
    /// `n_cells == 0`.
    pub fn uniform(start: f64, end: f64, n_cells: usize) -> Result<Self, AxisError> {
        if end <= start || n_cells == 0 || !start.is_finite() || !end.is_finite() {
            return Err(AxisError::InvalidExtent);
        }
        let h = (end - start) / n_cells as f64;
        let coords = (0..=n_cells)
            .map(|i| {
                if i == n_cells {
                    end
                } else {
                    start + i as f64 * h
                }
            })
            .collect();
        Ok(Axis { coords })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of cells (`n_nodes − 1`).
    pub fn n_cells(&self) -> usize {
        self.coords.len() - 1
    }

    /// Coordinate of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// All node coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Primary spacing `dx[i] = x[i+1] − x[i]` of cell `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n_cells`.
    #[inline]
    pub fn spacing(&self, i: usize) -> f64 {
        self.coords[i + 1] - self.coords[i]
    }

    /// Dual spacing around node `i` (half-cell widths at the boundary).
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n_nodes`.
    #[inline]
    pub fn dual_spacing(&self, i: usize) -> f64 {
        let n = self.n_nodes();
        let left = if i == 0 { 0.0 } else { self.spacing(i - 1) };
        let right = if i == n - 1 { 0.0 } else { self.spacing(i) };
        0.5 * (left + right)
    }

    /// Total extent `x[n−1] − x[0]`.
    pub fn extent(&self) -> f64 {
        self.coords[self.coords.len() - 1] - self.coords[0]
    }

    /// Smallest primary spacing.
    pub fn min_spacing(&self) -> f64 {
        (0..self.n_cells())
            .map(|i| self.spacing(i))
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest primary spacing.
    pub fn max_spacing(&self) -> f64 {
        (0..self.n_cells()).map(|i| self.spacing(i)).fold(0.0, f64::max)
    }

    /// Index of the cell containing `x` (clamped to the axis range).
    ///
    /// Points exactly on an interior node belong to the cell on their right;
    /// points at or beyond the last node belong to the last cell.
    pub fn cell_containing(&self, x: f64) -> usize {
        if x <= self.coords[0] {
            return 0;
        }
        let last = self.n_cells() - 1;
        if x >= self.coords[self.n_nodes() - 1] {
            return last;
        }
        // Binary search: find rightmost node ≤ x.
        match self
            .coords
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite coords"))
        {
            Ok(i) => i.min(last),
            Err(i) => (i - 1).min(last),
        }
    }

    /// Index of the node closest to `x` (ties resolve to the lower index).
    pub fn nearest_node(&self, x: f64) -> usize {
        let c = self.cell_containing(x);
        let left = self.coords[c];
        let right = self.coords[c + 1];
        if (x - left).abs() <= (right - x).abs() {
            c
        } else {
            c + 1
        }
    }

    /// Refines the axis by splitting every cell into `factor` equal parts.
    ///
    /// Existing node coordinates (e.g. material interfaces) are preserved
    /// exactly, which keeps staircase material assignments intact across
    /// refinement levels.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn refine(&self, factor: usize) -> Axis {
        assert!(factor > 0, "refine factor must be positive");
        let mut coords = Vec::with_capacity(self.n_cells() * factor + 1);
        for i in 0..self.n_cells() {
            let a = self.coords[i];
            let h = self.spacing(i) / factor as f64;
            for s in 0..factor {
                coords.push(a + s as f64 * h);
            }
        }
        coords.push(self.coords[self.n_nodes() - 1]);
        Axis { coords }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_axis_properties() {
        let ax = Axis::uniform(1.0, 3.0, 4).unwrap();
        assert_eq!(ax.n_nodes(), 5);
        assert_eq!(ax.n_cells(), 4);
        assert!((ax.extent() - 2.0).abs() < 1e-15);
        assert!((ax.spacing(0) - 0.5).abs() < 1e-15);
        assert!((ax.min_spacing() - ax.max_spacing()).abs() < 1e-12);
        assert_eq!(ax.coord(4), 3.0);
    }

    #[test]
    fn dual_spacings_sum_to_extent() {
        let ax = Axis::from_coords(vec![0.0, 0.1, 0.5, 0.6, 2.0]).unwrap();
        let total: f64 = (0..ax.n_nodes()).map(|i| ax.dual_spacing(i)).sum();
        assert!((total - ax.extent()).abs() < 1e-12);
        // Boundary duals are half cells.
        assert!((ax.dual_spacing(0) - 0.05).abs() < 1e-15);
        assert!((ax.dual_spacing(4) - 0.7).abs() < 1e-15);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Axis::from_coords(vec![1.0]),
            Err(AxisError::TooFewNodes(1))
        );
        assert_eq!(
            Axis::from_coords(vec![0.0, 0.0]),
            Err(AxisError::NotIncreasing(1))
        );
        assert_eq!(
            Axis::from_coords(vec![0.0, f64::NAN]),
            Err(AxisError::NotFinite(1))
        );
        assert_eq!(Axis::uniform(1.0, 1.0, 3), Err(AxisError::InvalidExtent));
        assert_eq!(Axis::uniform(0.0, 1.0, 0), Err(AxisError::InvalidExtent));
    }

    #[test]
    fn cell_containing_lookup() {
        let ax = Axis::from_coords(vec![0.0, 1.0, 3.0, 6.0]).unwrap();
        assert_eq!(ax.cell_containing(-1.0), 0);
        assert_eq!(ax.cell_containing(0.5), 0);
        assert_eq!(ax.cell_containing(1.0), 1); // boundary goes right
        assert_eq!(ax.cell_containing(2.9), 1);
        assert_eq!(ax.cell_containing(5.9), 2);
        assert_eq!(ax.cell_containing(6.0), 2);
        assert_eq!(ax.cell_containing(99.0), 2);
    }

    #[test]
    fn nearest_node_lookup() {
        let ax = Axis::from_coords(vec![0.0, 1.0, 3.0]).unwrap();
        assert_eq!(ax.nearest_node(0.4), 0);
        assert_eq!(ax.nearest_node(0.6), 1);
        assert_eq!(ax.nearest_node(1.9), 1);
        assert_eq!(ax.nearest_node(2.1), 2);
        assert_eq!(ax.nearest_node(-5.0), 0);
        assert_eq!(ax.nearest_node(50.0), 2);
    }

    #[test]
    fn refine_preserves_nodes() {
        let ax = Axis::from_coords(vec![0.0, 0.3, 1.0]).unwrap();
        let r = ax.refine(3);
        assert_eq!(r.n_cells(), 6);
        // Original coordinates must appear exactly.
        for &c in ax.coords() {
            assert!(r.coords().contains(&c));
        }
        assert!((r.extent() - ax.extent()).abs() < 1e-15);
    }

    #[test]
    fn display_of_errors() {
        assert!(AxisError::TooFewNodes(1).to_string().contains('2'));
        assert!(AxisError::NotIncreasing(3).to_string().contains('3'));
        assert!(AxisError::NotFinite(0).to_string().contains("finite"));
        assert!(AxisError::InvalidExtent.to_string().contains("positive"));
    }
}
