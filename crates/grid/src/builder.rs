//! Mesh generation from key planes.
//!
//! Package geometry consists of axis-aligned boxes (mold, chip, pads). A
//! mesh that *conforms* to those boxes must contain every box face
//! coordinate as a grid plane; between key planes the builder inserts
//! equidistant nodes so no cell exceeds the requested target spacing. This
//! keeps the staircase material approximation exact for box geometry while
//! letting the caller trade accuracy for speed with a single knob.

use crate::axis::{Axis, AxisError};
use crate::grid::Grid3;
use crate::paint::BoxRegion;

/// Incremental builder for a [`Grid3`] that conforms to key planes.
///
/// # Example
///
/// ```
/// use etherm_grid::{BoxRegion, GridBuilder};
///
/// let grid = GridBuilder::new()
///     .with_box(&BoxRegion::new((0.0, 0.0, 0.0), (1.0, 1.0, 0.2)))
///     .with_key_plane_x(0.5)
///     .with_target_spacing(0.25)
///     .build()
///     .unwrap();
/// // The plane x = 0.5 exists exactly.
/// assert!(grid.x().coords().iter().any(|&c| c == 0.5));
/// // No cell is wider than 0.25 (plus rounding).
/// assert!(grid.x().max_spacing() <= 0.25 + 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GridBuilder {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    target: Option<(f64, f64, f64)>,
}

impl GridBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GridBuilder::default()
    }

    /// Adds the six face planes of `region` as key planes.
    pub fn with_box(mut self, region: &BoxRegion) -> Self {
        let (xs, ys, zs) = region.key_planes();
        self.xs.extend_from_slice(&xs);
        self.ys.extend_from_slice(&ys);
        self.zs.extend_from_slice(&zs);
        self
    }

    /// Adds a single key plane `x = c`.
    pub fn with_key_plane_x(mut self, c: f64) -> Self {
        self.xs.push(c);
        self
    }

    /// Adds a single key plane `y = c`.
    pub fn with_key_plane_y(mut self, c: f64) -> Self {
        self.ys.push(c);
        self
    }

    /// Adds a single key plane `z = c`.
    pub fn with_key_plane_z(mut self, c: f64) -> Self {
        self.zs.push(c);
        self
    }

    /// Sets the same maximum cell size for all three directions.
    pub fn with_target_spacing(mut self, h: f64) -> Self {
        self.target = Some((h, h, h));
        self
    }

    /// Sets per-direction maximum cell sizes.
    pub fn with_target_spacings(mut self, hx: f64, hy: f64, hz: f64) -> Self {
        self.target = Some((hx, hy, hz));
        self
    }

    /// Builds the grid.
    ///
    /// # Errors
    ///
    /// Returns [`AxisError`] if any direction has fewer than two distinct
    /// key planes, a non-finite coordinate, or a non-positive target
    /// spacing was set.
    pub fn build(&self) -> Result<Grid3, AxisError> {
        let (hx, hy, hz) = self.target.unwrap_or((f64::INFINITY, f64::INFINITY, f64::INFINITY));
        Ok(Grid3::new(
            axis_from_planes(&self.xs, hx)?,
            axis_from_planes(&self.ys, hy)?,
            axis_from_planes(&self.zs, hz)?,
        ))
    }
}

/// Builds an axis containing every distinct plane in `planes`, subdivided so
/// that no spacing exceeds `target`.
///
/// # Errors
///
/// Returns [`AxisError`] on fewer than two distinct planes, non-finite
/// values, or a non-positive target.
pub fn axis_from_planes(planes: &[f64], target: f64) -> Result<Axis, AxisError> {
    if target <= 0.0 || target.is_nan() {
        return Err(AxisError::InvalidExtent);
    }
    let mut p: Vec<f64> = planes.to_vec();
    for (i, v) in p.iter().enumerate() {
        if !v.is_finite() {
            return Err(AxisError::NotFinite(i));
        }
    }
    p.sort_by(|a, b| a.partial_cmp(b).expect("finite planes"));
    // Merge planes closer than a relative tolerance (avoids sliver cells).
    let span = match (p.first(), p.last()) {
        (Some(a), Some(b)) => b - a,
        _ => return Err(AxisError::TooFewNodes(p.len())),
    };
    let tol = 1e-9 * span.max(1e-300);
    let mut merged: Vec<f64> = Vec::with_capacity(p.len());
    for v in p {
        match merged.last() {
            Some(&last) if (v - last) <= tol => {}
            _ => merged.push(v),
        }
    }
    if merged.len() < 2 {
        return Err(AxisError::TooFewNodes(merged.len()));
    }
    // Subdivide each key interval equidistantly to meet the target.
    let mut coords = Vec::new();
    for w in merged.windows(2) {
        let (a, b) = (w[0], w[1]);
        let len = b - a;
        let n_sub = if target.is_infinite() {
            1
        } else {
            (len / target).ceil().max(1.0) as usize
        };
        let h = len / n_sub as f64;
        for s in 0..n_sub {
            coords.push(a + s as f64 * h);
        }
    }
    coords.push(*merged.last().expect("nonempty"));
    Axis::from_coords(coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_contains_all_planes() {
        let ax = axis_from_planes(&[0.0, 1.0, 0.3, 0.3, 0.7], 0.1).unwrap();
        for &p in &[0.0, 0.3, 0.7, 1.0] {
            assert!(
                ax.coords().iter().any(|&c| (c - p).abs() < 1e-12),
                "missing plane {p}"
            );
        }
        assert!(ax.max_spacing() <= 0.1 + 1e-12);
    }

    #[test]
    fn no_target_keeps_planes_only() {
        let ax = axis_from_planes(&[0.0, 2.0, 1.0], f64::INFINITY).unwrap();
        assert_eq!(ax.coords(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn near_duplicate_planes_merge() {
        let ax = axis_from_planes(&[0.0, 1.0, 1.0 + 1e-15], f64::INFINITY).unwrap();
        assert_eq!(ax.n_nodes(), 2);
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert!(axis_from_planes(&[], 1.0).is_err());
        assert!(axis_from_planes(&[1.0], 1.0).is_err());
        assert!(axis_from_planes(&[1.0, 1.0], 1.0).is_err());
        assert!(axis_from_planes(&[0.0, 1.0], 0.0).is_err());
        assert!(axis_from_planes(&[0.0, f64::NAN], 1.0).is_err());
    }

    #[test]
    fn builder_produces_conforming_grid() {
        let chip = BoxRegion::new((1.0, 1.0, 0.0), (3.0, 3.0, 0.5));
        let mold = BoxRegion::new((0.0, 0.0, 0.0), (4.0, 4.0, 1.0));
        let g = GridBuilder::new()
            .with_box(&mold)
            .with_box(&chip)
            .with_target_spacing(0.5)
            .build()
            .unwrap();
        for &p in &[0.0, 1.0, 3.0, 4.0] {
            assert!(g.x().coords().iter().any(|&c| (c - p).abs() < 1e-12));
        }
        for &p in &[0.0, 0.5, 1.0] {
            assert!(g.z().coords().iter().any(|&c| (c - p).abs() < 1e-12));
        }
        assert!(g.x().max_spacing() <= 0.5 + 1e-12);
    }

    #[test]
    fn builder_key_planes_api() {
        let g = GridBuilder::new()
            .with_box(&BoxRegion::new((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)))
            .with_key_plane_x(0.25)
            .with_key_plane_y(0.5)
            .with_key_plane_z(0.75)
            .build()
            .unwrap();
        assert!(g.x().coords().contains(&0.25));
        assert!(g.y().coords().contains(&0.5));
        assert!(g.z().coords().contains(&0.75));
    }
}
