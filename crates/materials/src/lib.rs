//! Temperature-dependent electrothermal material models.
//!
//! The electrothermal coupling of the paper is two-directional: Joule heat
//! raises the temperature, and the temperature feeds back into the electrical
//! conductivity `σ(T)` and thermal conductivity `λ(T)` (paper §II). The
//! volumetric heat capacity `ρc` is treated as temperature-independent,
//! exactly as the paper assumes.
//!
//! * [`TemperatureModel`] — scalar property laws `v(T)` (constant, linear,
//!   rational metal-resistivity law),
//! * [`Material`] — a named bundle of `σ(T)`, `λ(T)` and `ρc`,
//! * [`library`] — literature values for copper, gold, aluminium, epoxy
//!   resin, silicon and air, matching the paper's Table I at 300 K,
//! * [`MaterialTable`] — an indexed collection used by the FIT assembly.

#![forbid(unsafe_code)]

pub mod library;
mod material;
mod model;
mod table;

pub use material::Material;
pub use model::{PropertyTable, TemperatureModel};
pub use table::MaterialTable;

/// Reference temperature (K) at which the paper's Table I properties hold.
pub const T_REFERENCE: f64 = 300.0;

/// Stefan–Boltzmann constant `σ_SB` in W/(m²·K⁴).
pub const STEFAN_BOLTZMANN: f64 = 5.670374419e-8;
