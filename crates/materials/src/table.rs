//! Indexed material collection used by the FIT assembly.

use crate::material::Material;

/// A table of materials addressed by a small integer index.
///
/// The grid crate paints `MaterialId(u16)` onto cells; the FIT assembly uses
/// that id as an index into this table. Index 0 conventionally holds the
/// background material (the mold compound in the paper's package).
///
/// # Example
///
/// ```
/// use etherm_materials::{library, MaterialTable};
///
/// let mut table = MaterialTable::new();
/// let epoxy = table.add(library::epoxy_resin());
/// let copper = table.add(library::copper());
/// assert_eq!(epoxy, 0);
/// assert_eq!(copper, 1);
/// assert_eq!(table.get(copper).name(), "copper");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaterialTable {
    materials: Vec<Material>,
}

impl MaterialTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MaterialTable::default()
    }

    /// Adds a material, returning its index.
    pub fn add(&mut self, material: Material) -> usize {
        self.materials.push(material);
        self.materials.len() - 1
    }

    /// Number of materials.
    pub fn len(&self) -> usize {
        self.materials.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.materials.is_empty()
    }

    /// Material at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> &Material {
        &self.materials[index]
    }

    /// Material at `index`, if present.
    pub fn try_get(&self, index: usize) -> Option<&Material> {
        self.materials.get(index)
    }

    /// Iterates over `(index, material)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Material)> {
        self.materials.iter().enumerate()
    }

    /// Whether any material in the table is temperature-dependent.
    pub fn any_nonlinear(&self) -> bool {
        self.materials.iter().any(Material::is_nonlinear)
    }

    /// Finds a material index by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.materials.iter().position(|m| m.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn add_and_lookup() {
        let mut t = MaterialTable::new();
        assert!(t.is_empty());
        let a = t.add(library::epoxy_resin());
        let b = t.add(library::copper());
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).name(), "copper");
        assert!(t.try_get(2).is_none());
        assert_eq!(t.find("epoxy resin"), Some(0));
        assert_eq!(t.find("unobtanium"), None);
    }

    #[test]
    fn nonlinearity_aggregation() {
        let mut t = MaterialTable::new();
        t.add(library::epoxy_resin());
        assert!(!t.any_nonlinear());
        t.add(library::copper());
        assert!(t.any_nonlinear());
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let mut t = MaterialTable::new();
        t.add(library::air());
        t.add(library::gold());
        let names: Vec<_> = t.iter().map(|(_, m)| m.name().to_string()).collect();
        assert_eq!(names, vec!["air", "gold"]);
    }
}
