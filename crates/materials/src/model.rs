//! Scalar temperature-dependent property laws.

use etherm_numerics::interp::{Extrapolate, PchipInterp};

/// A scalar material property `v(T)`.
///
/// Four laws cover the materials of the paper and its extensions:
///
/// * [`TemperatureModel::Constant`] — `v(T) = v₀` (epoxy resin, and any
///   property whose drift is negligible over the operating range),
/// * [`TemperatureModel::Linear`] — `v(T) = v₀·(1 + α(T − T₀))` (weak
///   drifts, e.g. the slight decrease of copper's thermal conductivity with
///   `α < 0`),
/// * [`TemperatureModel::InverseLinear`] — `v(T) = v₀ / (1 + α(T − T₀))`
///   (the standard metal conductivity law: resistivity grows linearly in
///   temperature, so conductivity decays rationally; copper has
///   `α ≈ 3.93·10⁻³ /K`),
/// * [`TemperatureModel::Table`] — monotone-cubic interpolation through
///   measured `(T, v)` pairs, for the "more sophisticated bonding wire
///   models" the paper's conclusion calls for.
///
/// Evaluation clamps the result to stay positive (a conductivity of zero or
/// below would make the FIT system singular or indefinite), saturating at
/// `v₀·10⁻⁶`.
///
/// # Example
///
/// ```
/// use etherm_materials::TemperatureModel;
///
/// let sigma = TemperatureModel::InverseLinear {
///     v0: 5.8e7,
///     t_ref: 300.0,
///     alpha: 3.93e-3,
/// };
/// assert_eq!(sigma.eval(300.0), 5.8e7);
/// // 100 K hotter: conductivity drops by ~28 %.
/// assert!(sigma.eval(400.0) < 0.75 * 5.8e7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum TemperatureModel {
    /// Temperature-independent value.
    Constant(f64),
    /// `v(T) = v₀ · (1 + α (T − T₀))`.
    Linear {
        /// Value at the reference temperature.
        v0: f64,
        /// Reference temperature `T₀` (K).
        t_ref: f64,
        /// Linear coefficient `α` (1/K).
        alpha: f64,
    },
    /// `v(T) = v₀ / (1 + α (T − T₀))` — the metal conductivity law.
    InverseLinear {
        /// Value at the reference temperature.
        v0: f64,
        /// Reference temperature `T₀` (K).
        t_ref: f64,
        /// Resistivity temperature coefficient `α` (1/K).
        alpha: f64,
    },
    /// Tabulated property curve (monotone-cubic through measured points,
    /// clamped outside the data range).
    Table(PropertyTable),
}

/// A tabulated property curve `v(T)` built from measured data points.
///
/// Interpolation is monotone-cubic (no overshoot between samples);
/// evaluation outside the tabulated range clamps to the boundary values,
/// which is the physically safe choice for conductivities.
///
/// # Example
///
/// ```
/// use etherm_materials::{PropertyTable, TemperatureModel};
///
/// # fn main() -> Result<(), String> {
/// // Copper thermal conductivity samples (K → W/K/m).
/// let lambda = PropertyTable::new(
///     vec![300.0, 400.0, 500.0, 600.0],
///     vec![398.0, 392.0, 388.0, 383.0],
///     300.0,
/// )?;
/// let model = TemperatureModel::Table(lambda);
/// assert_eq!(model.eval(300.0), 398.0);
/// assert!(model.eval(450.0) < 392.0 && model.eval(450.0) > 388.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyTable {
    interp: PchipInterp,
    t_ref: f64,
    v_ref: f64,
    t_min: f64,
    t_max: f64,
}

impl PropertyTable {
    /// Builds the curve from strictly increasing temperatures and positive
    /// values; `t_ref` is the reference temperature whose value
    /// [`TemperatureModel::reference_value`] reports.
    ///
    /// # Errors
    ///
    /// Returns an error string if the table is shorter than 2 points, not
    /// strictly increasing in `T`, contains non-positive values, or `t_ref`
    /// lies outside the tabulated range.
    pub fn new(temps: Vec<f64>, values: Vec<f64>, t_ref: f64) -> Result<Self, String> {
        if values.iter().any(|&v| !v.is_finite() || v <= 0.0) {
            return Err("property table values must be positive and finite".into());
        }
        let (t_min, t_max) = match (temps.first(), temps.last()) {
            (Some(&lo), Some(&hi)) if temps.len() >= 2 => (lo, hi),
            _ => return Err("property table needs at least 2 points".into()),
        };
        if !(t_ref >= t_min && t_ref <= t_max) {
            return Err(format!(
                "reference temperature {t_ref} outside table range [{t_min}, {t_max}]"
            ));
        }
        let interp =
            PchipInterp::new(temps, values, Extrapolate::Clamp).map_err(|e| e.to_string())?;
        let v_ref = interp.eval(t_ref);
        Ok(PropertyTable {
            interp,
            t_ref,
            v_ref,
            t_min,
            t_max,
        })
    }

    /// The interpolated value at temperature `t` (clamped outside range).
    pub fn eval(&self, t: f64) -> f64 {
        self.interp.eval(t)
    }

    /// Reference temperature supplied at construction.
    pub fn t_ref(&self) -> f64 {
        self.t_ref
    }

    /// Value at the reference temperature.
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Central finite-difference slope `dv/dT` (zero in the clamped region).
    pub fn derivative(&self, t: f64) -> f64 {
        if t <= self.t_min || t >= self.t_max {
            return 0.0;
        }
        let h = 1e-3 * (self.t_max - self.t_min);
        let lo = (t - h).max(self.t_min);
        let hi = (t + h).min(self.t_max);
        (self.interp.eval(hi) - self.interp.eval(lo)) / (hi - lo)
    }
}

impl TemperatureModel {
    /// Relative floor applied to evaluations to keep properties positive.
    pub const FLOOR_FACTOR: f64 = 1e-6;

    /// Evaluates the property at temperature `t` (K).
    ///
    /// The result is clamped to `v₀·10⁻⁶` from below so that pathological
    /// temperatures can never produce non-positive conductivities.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            TemperatureModel::Constant(v0) => *v0,
            TemperatureModel::Linear { v0, t_ref, alpha } => {
                let v = v0 * (1.0 + alpha * (t - t_ref));
                v.max(v0.abs() * Self::FLOOR_FACTOR)
            }
            TemperatureModel::InverseLinear { v0, t_ref, alpha } => {
                let denom = 1.0 + alpha * (t - t_ref);
                if denom <= Self::FLOOR_FACTOR {
                    v0 / Self::FLOOR_FACTOR
                } else {
                    v0 / denom
                }
            }
            TemperatureModel::Table(table) => table.eval(t),
        }
    }

    /// Value at the model's own reference temperature (`v₀`).
    pub fn reference_value(&self) -> f64 {
        match self {
            TemperatureModel::Constant(v0) => *v0,
            TemperatureModel::Linear { v0, .. } => *v0,
            TemperatureModel::InverseLinear { v0, .. } => *v0,
            TemperatureModel::Table(table) => table.v_ref(),
        }
    }

    /// Derivative `dv/dT` at temperature `t`, for Newton linearizations.
    pub fn derivative(&self, t: f64) -> f64 {
        match self {
            TemperatureModel::Constant(_) => 0.0,
            TemperatureModel::Linear { v0, t_ref, alpha } => {
                // Zero once the clamp is active.
                let raw = v0 * (1.0 + alpha * (t - t_ref));
                if raw <= v0.abs() * Self::FLOOR_FACTOR {
                    0.0
                } else {
                    v0 * alpha
                }
            }
            TemperatureModel::InverseLinear { v0, t_ref, alpha } => {
                let denom = 1.0 + alpha * (t - t_ref);
                if denom <= Self::FLOOR_FACTOR {
                    0.0
                } else {
                    -v0 * alpha / (denom * denom)
                }
            }
            TemperatureModel::Table(table) => table.derivative(t),
        }
    }

    /// Whether the property actually varies with temperature.
    pub fn is_temperature_dependent(&self) -> bool {
        match self {
            TemperatureModel::Constant(_) => false,
            TemperatureModel::Linear { alpha, .. } => *alpha != 0.0,
            TemperatureModel::InverseLinear { alpha, .. } => *alpha != 0.0,
            TemperatureModel::Table(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let m = TemperatureModel::Constant(42.0);
        assert_eq!(m.eval(0.0), 42.0);
        assert_eq!(m.eval(1e4), 42.0);
        assert_eq!(m.derivative(500.0), 0.0);
        assert!(!m.is_temperature_dependent());
        assert_eq!(m.reference_value(), 42.0);
    }

    #[test]
    fn linear_law() {
        let m = TemperatureModel::Linear {
            v0: 100.0,
            t_ref: 300.0,
            alpha: -1e-3,
        };
        assert_eq!(m.eval(300.0), 100.0);
        assert!((m.eval(400.0) - 90.0).abs() < 1e-12);
        assert!((m.derivative(350.0) + 0.1).abs() < 1e-12);
        assert!(m.is_temperature_dependent());
    }

    #[test]
    fn linear_clamps_to_positive() {
        let m = TemperatureModel::Linear {
            v0: 1.0,
            t_ref: 0.0,
            alpha: -1.0,
        };
        // At T = 2 the raw value would be −1; clamped to 1e-6.
        assert_eq!(m.eval(2.0), TemperatureModel::FLOOR_FACTOR);
        assert_eq!(m.derivative(2.0), 0.0);
    }

    #[test]
    fn inverse_linear_matches_resistivity_law() {
        let m = TemperatureModel::InverseLinear {
            v0: 5.8e7,
            t_ref: 300.0,
            alpha: 3.93e-3,
        };
        assert_eq!(m.eval(300.0), 5.8e7);
        let v400 = m.eval(400.0);
        assert!((v400 - 5.8e7 / (1.0 + 0.393)).abs() < 1.0);
        // Monotonically decreasing for alpha > 0.
        assert!(m.eval(500.0) < v400);
        // Derivative negative and matches finite differences.
        let h = 1e-3;
        let fd = (m.eval(400.0 + h) - m.eval(400.0 - h)) / (2.0 * h);
        assert!((m.derivative(400.0) - fd).abs() < 1e-3 * fd.abs());
    }

    #[test]
    fn inverse_linear_denominator_guard() {
        let m = TemperatureModel::InverseLinear {
            v0: 10.0,
            t_ref: 300.0,
            alpha: -1e-2,
        };
        // Denominator would hit zero at T = 400; guard keeps a huge but
        // finite value and a zero derivative.
        let v = m.eval(450.0);
        assert!(v.is_finite() && v > 0.0);
        assert_eq!(m.derivative(450.0), 0.0);
    }

    #[test]
    fn table_hits_knots_and_clamps() {
        let table = PropertyTable::new(
            vec![300.0, 400.0, 500.0],
            vec![398.0, 392.0, 388.0],
            300.0,
        )
        .unwrap();
        let m = TemperatureModel::Table(table);
        assert_eq!(m.eval(300.0), 398.0);
        assert_eq!(m.eval(400.0), 392.0);
        assert_eq!(m.eval(500.0), 388.0);
        // Clamped outside the range, with zero slope there.
        assert_eq!(m.eval(200.0), 398.0);
        assert_eq!(m.eval(900.0), 388.0);
        assert_eq!(m.derivative(200.0), 0.0);
        assert_eq!(m.derivative(900.0), 0.0);
        assert!(m.is_temperature_dependent());
        assert_eq!(m.reference_value(), 398.0);
    }

    #[test]
    fn table_tracks_inverse_linear_law_closely() {
        // Tabulate the copper law on a dense grid: the table model must
        // reproduce it to ~0.1 % between knots.
        let law = TemperatureModel::InverseLinear {
            v0: 5.8e7,
            t_ref: 300.0,
            alpha: 3.93e-3,
        };
        let temps: Vec<f64> = (0..=20).map(|i| 300.0 + 25.0 * i as f64).collect();
        let values: Vec<f64> = temps.iter().map(|&t| law.eval(t)).collect();
        let table = TemperatureModel::Table(PropertyTable::new(temps, values, 300.0).unwrap());
        for i in 0..200 {
            let t = 300.0 + 2.5 * i as f64;
            let rel = (table.eval(t) - law.eval(t)).abs() / law.eval(t);
            // One-sided boundary slopes dominate the first knot interval.
            let tol = if t < 325.0 { 3e-3 } else { 1e-3 };
            assert!(rel < tol, "T = {t}: rel err {rel}");
        }
        // Derivatives agree in sign and magnitude in the interior.
        let fd = table.derivative(450.0);
        let exact = law.derivative(450.0);
        assert!((fd - exact).abs() / exact.abs() < 0.05, "{fd} vs {exact}");
    }

    #[test]
    fn table_validation() {
        assert!(PropertyTable::new(vec![300.0], vec![1.0], 300.0).is_err());
        assert!(PropertyTable::new(vec![300.0, 400.0], vec![1.0, -1.0], 300.0).is_err());
        assert!(PropertyTable::new(vec![400.0, 300.0], vec![1.0, 1.0], 350.0).is_err());
        assert!(PropertyTable::new(vec![300.0, 400.0], vec![1.0, 2.0], 500.0).is_err());
    }
}
