//! A named electrothermal material.

use crate::model::TemperatureModel;

/// An electrothermal material: electrical conductivity `σ(T)` (S/m), thermal
/// conductivity `λ(T)` (W/(K·m)) and volumetric heat capacity `ρc`
/// (J/(K·m³)).
///
/// # Example
///
/// ```
/// use etherm_materials::{library, T_REFERENCE};
///
/// let cu = library::copper();
/// // Paper Table I values at 300 K.
/// assert_eq!(cu.sigma(T_REFERENCE), 5.80e7);
/// assert_eq!(cu.lambda(T_REFERENCE), 398.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    name: String,
    electrical: TemperatureModel,
    thermal: TemperatureModel,
    rho_c: f64,
}

impl Material {
    /// Creates a material from its property models.
    ///
    /// # Panics
    ///
    /// Panics if `rho_c` is not positive and finite, or if either
    /// conductivity has a non-positive reference value.
    pub fn new(
        name: impl Into<String>,
        electrical: TemperatureModel,
        thermal: TemperatureModel,
        rho_c: f64,
    ) -> Self {
        assert!(
            rho_c > 0.0 && rho_c.is_finite(),
            "volumetric heat capacity must be positive"
        );
        assert!(
            electrical.reference_value() > 0.0,
            "electrical conductivity must be positive"
        );
        assert!(
            thermal.reference_value() > 0.0,
            "thermal conductivity must be positive"
        );
        Material {
            name: name.into(),
            electrical,
            thermal,
            rho_c,
        }
    }

    /// Material name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Electrical conductivity `σ(T)` in S/m.
    pub fn sigma(&self, t: f64) -> f64 {
        self.electrical.eval(t)
    }

    /// Thermal conductivity `λ(T)` in W/(K·m).
    pub fn lambda(&self, t: f64) -> f64 {
        self.thermal.eval(t)
    }

    /// Volumetric heat capacity `ρc` in J/(K·m³).
    pub fn rho_c(&self) -> f64 {
        self.rho_c
    }

    /// The electrical conductivity model.
    pub fn electrical_model(&self) -> &TemperatureModel {
        &self.electrical
    }

    /// The thermal conductivity model.
    pub fn thermal_model(&self) -> &TemperatureModel {
        &self.thermal
    }

    /// Whether any property depends on temperature (drives whether the
    /// solver must reassemble material matrices inside the Picard loop).
    pub fn is_nonlinear(&self) -> bool {
        self.electrical.is_temperature_dependent() || self.thermal.is_temperature_dependent()
    }
}

impl std::fmt::Display for Material {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (σ₀ = {:.3e} S/m, λ₀ = {:.3e} W/K/m, ρc = {:.3e} J/K/m³)",
            self.name,
            self.electrical.reference_value(),
            self.thermal.reference_value(),
            self.rho_c
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_and_getters() {
        let m = Material::new(
            "test",
            TemperatureModel::Constant(1.0),
            TemperatureModel::Constant(2.0),
            3.0,
        );
        assert_eq!(m.name(), "test");
        assert_eq!(m.sigma(300.0), 1.0);
        assert_eq!(m.lambda(300.0), 2.0);
        assert_eq!(m.rho_c(), 3.0);
        assert!(!m.is_nonlinear());
        assert!(m.to_string().contains("test"));
    }

    #[test]
    fn nonlinearity_detection() {
        let m = Material::new(
            "metal",
            TemperatureModel::InverseLinear {
                v0: 1.0,
                t_ref: 300.0,
                alpha: 1e-3,
            },
            TemperatureModel::Constant(2.0),
            3.0,
        );
        assert!(m.is_nonlinear());
    }

    #[test]
    #[should_panic(expected = "heat capacity")]
    fn rejects_bad_rho_c() {
        let _ = Material::new(
            "bad",
            TemperatureModel::Constant(1.0),
            TemperatureModel::Constant(1.0),
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "electrical conductivity")]
    fn rejects_bad_sigma() {
        let _ = Material::new(
            "bad",
            TemperatureModel::Constant(-1.0),
            TemperatureModel::Constant(1.0),
            1.0,
        );
    }
}
