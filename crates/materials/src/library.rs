//! Literature material data.
//!
//! Electrical and thermal conductivities at 300 K follow the paper's
//! Table I where the material appears there (copper, epoxy resin); the
//! remaining values are standard literature data. Volumetric heat
//! capacities are not listed in the paper (see DESIGN.md §4): copper
//! `ρc = ρ·c_p = 8960·385 ≈ 3.45·10⁶ J/(K·m³)`, epoxy
//! `≈ 1200·1500 = 1.8·10⁶ J/(K·m³)`.

use crate::material::Material;
use crate::model::{PropertyTable, TemperatureModel};
use crate::T_REFERENCE;

/// Copper: Table I gives `λ = 398 W/K/m`, `σ = 5.80·10⁷ S/m` at 300 K.
///
/// The electrical conductivity follows the metal resistivity law with the
/// standard temperature coefficient `α = 3.93·10⁻³ /K`; the thermal
/// conductivity decreases weakly (`−1·10⁻⁴ /K` relative slope).
pub fn copper() -> Material {
    Material::new(
        "copper",
        TemperatureModel::InverseLinear {
            v0: 5.80e7,
            t_ref: T_REFERENCE,
            alpha: 3.93e-3,
        },
        TemperatureModel::Linear {
            v0: 398.0,
            t_ref: T_REFERENCE,
            alpha: -1.0e-4,
        },
        3.45e6,
    )
}

/// Gold: `σ = 4.52·10⁷ S/m`, `λ = 315 W/K/m`, `α = 3.4·10⁻³ /K`,
/// `ρc = 19300·129 ≈ 2.49·10⁶ J/(K·m³)`.
pub fn gold() -> Material {
    Material::new(
        "gold",
        TemperatureModel::InverseLinear {
            v0: 4.52e7,
            t_ref: T_REFERENCE,
            alpha: 3.4e-3,
        },
        TemperatureModel::Linear {
            v0: 315.0,
            t_ref: T_REFERENCE,
            alpha: -6.0e-5,
        },
        2.49e6,
    )
}

/// Aluminium: `σ = 3.77·10⁷ S/m`, `λ = 237 W/K/m`, `α = 3.9·10⁻³ /K`,
/// `ρc = 2700·897 ≈ 2.42·10⁶ J/(K·m³)`.
pub fn aluminum() -> Material {
    Material::new(
        "aluminum",
        TemperatureModel::InverseLinear {
            v0: 3.77e7,
            t_ref: T_REFERENCE,
            alpha: 3.9e-3,
        },
        TemperatureModel::Linear {
            v0: 237.0,
            t_ref: T_REFERENCE,
            alpha: -5.0e-5,
        },
        2.42e6,
    )
}

/// Copper with *tabulated* property curves (annealed OFHC literature data,
/// 300–900 K), the "more sophisticated" material model variant: the
/// electrical conductivity table is sampled from the resistivity
/// measurements underlying the `α = 3.93·10⁻³ /K` first-order law, the
/// thermal conductivity from standard λ(T) tables.
///
/// Use this in place of [`copper`] to quantify the first-order-law error
/// (≲ 1 % below 600 K, growing to a few % near the mold's critical
/// temperature range).
///
/// # Panics
///
/// Never panics — the embedded tables are statically valid.
pub fn copper_tabulated() -> Material {
    let temps = vec![300.0, 350.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0];
    // σ(T) from ρ(T) of annealed copper (1.72, 2.06, 2.40, 3.09, 3.79,
    // 4.51, 5.26, 6.04 µΩ·cm).
    let sigma = vec![
        5.80e7, 4.85e7, 4.17e7, 3.24e7, 2.64e7, 2.22e7, 1.90e7, 1.66e7,
    ];
    // λ(T) tables (W/K/m).
    let lambda = vec![398.0, 394.0, 392.0, 388.0, 383.0, 377.0, 371.0, 364.0];
    Material::new(
        "copper (tabulated)",
        TemperatureModel::Table(
            PropertyTable::new(temps.clone(), sigma, T_REFERENCE).expect("static copper σ table"),
        ),
        TemperatureModel::Table(
            PropertyTable::new(temps, lambda, T_REFERENCE).expect("static copper λ table"),
        ),
        3.45e6,
    )
}

/// Epoxy resin mold compound: Table I gives `λ = 0.87 W/K/m`,
/// `σ = 1·10⁻⁶ S/m` at 300 K; both essentially constant,
/// `ρc ≈ 1.8·10⁶ J/(K·m³)`.
pub fn epoxy_resin() -> Material {
    Material::new(
        "epoxy resin",
        TemperatureModel::Constant(1.0e-6),
        TemperatureModel::Constant(0.87),
        1.8e6,
    )
}

/// Silicon (intrinsic bulk, for die variants): `σ ≈ 4.35·10⁻⁴ S/m` at room
/// temperature, `λ = 148 W/K/m`, `ρc = 2329·700 ≈ 1.63·10⁶ J/(K·m³)`.
pub fn silicon() -> Material {
    Material::new(
        "silicon",
        TemperatureModel::Constant(4.35e-4),
        TemperatureModel::Linear {
            v0: 148.0,
            t_ref: T_REFERENCE,
            alpha: -1.0e-3,
        },
        1.63e6,
    )
}

/// Air (for cavity packages): negligible electrical conductivity,
/// `λ = 0.026 W/K/m`, `ρc = 1.184·1005 ≈ 1190 J/(K·m³)`.
pub fn air() -> Material {
    Material::new(
        "air",
        TemperatureModel::Constant(1.0e-12),
        TemperatureModel::Constant(0.026),
        1.19e3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values_at_300k() {
        // Paper Table I.
        let cu = copper();
        assert_eq!(cu.sigma(300.0), 5.80e7);
        assert_eq!(cu.lambda(300.0), 398.0);
        let ep = epoxy_resin();
        assert_eq!(ep.sigma(300.0), 1.0e-6);
        assert_eq!(ep.lambda(300.0), 0.87);
    }

    #[test]
    fn copper_conductivity_drops_with_temperature() {
        let cu = copper();
        assert!(cu.sigma(400.0) < cu.sigma(300.0));
        assert!(cu.sigma(523.0) < cu.sigma(400.0));
        // At the critical temperature 523 K the drop is roughly 1/(1+0.876).
        let expect = 5.80e7 / (1.0 + 3.93e-3 * 223.0);
        assert!((cu.sigma(523.0) - expect).abs() < 1.0);
    }

    #[test]
    fn all_library_materials_are_valid() {
        for m in [copper(), gold(), aluminum(), epoxy_resin(), silicon(), air()] {
            assert!(m.sigma(300.0) > 0.0);
            assert!(m.lambda(300.0) > 0.0);
            assert!(m.rho_c() > 0.0);
            // Still positive far outside the design range.
            assert!(m.sigma(1500.0) > 0.0);
            assert!(m.lambda(1500.0) > 0.0);
        }
    }

    #[test]
    fn tabulated_copper_matches_first_order_law_near_300k() {
        let law = copper();
        let tab = copper_tabulated();
        assert_eq!(tab.sigma(300.0), 5.80e7);
        assert_eq!(tab.lambda(300.0), 398.0);
        // Within the paper's operating range (300–525 K) the two models
        // agree to a few percent.
        for t in [325.0, 400.0, 475.0, 523.0] {
            let rel = (tab.sigma(t) - law.sigma(t)).abs() / law.sigma(t);
            assert!(rel < 0.05, "σ at {t} K: rel {rel}");
            let rel = (tab.lambda(t) - law.lambda(t)).abs() / law.lambda(t);
            assert!(rel < 0.05, "λ at {t} K: rel {rel}");
        }
        assert!(tab.is_nonlinear());
        // Monotone decreasing, as the data demands.
        assert!(tab.sigma(600.0) < tab.sigma(400.0));
        assert!(tab.lambda(800.0) < tab.lambda(400.0));
    }

    #[test]
    fn metals_are_nonlinear_epoxy_is_not() {
        assert!(copper().is_nonlinear());
        assert!(gold().is_nonlinear());
        assert!(!epoxy_resin().is_nonlinear());
        assert!(!air().is_nonlinear());
    }

    #[test]
    fn conductivity_ordering_is_physical() {
        // σ: copper > gold > aluminum ≫ silicon > epoxy > air.
        let s = |m: Material| m.sigma(300.0);
        assert!(s(copper()) > s(gold()));
        assert!(s(gold()) > s(aluminum()));
        assert!(s(aluminum()) > s(silicon()));
        assert!(s(silicon()) > s(epoxy_resin()));
        assert!(s(epoxy_resin()) > s(air()));
    }
}
