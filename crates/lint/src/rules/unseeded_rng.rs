//! `unseeded-rng`: no entropy-seeded random number generators in shipped
//! code.
//!
//! Every stochastic result in this workspace — Monte Carlo estimates,
//! subset-simulation chains, synthetic metrology — is reproducible because
//! every RNG is constructed from an explicit seed (the vendored `rand`
//! deliberately ships no `thread_rng`). This rule keeps it that way if the
//! workspace ever moves to upstream `rand`: constructions that pull OS
//! entropy (`thread_rng`, `from_entropy`, `OsRng`, `getrandom`,
//! `rand::random`) are banned outside tests and `crates/bench`.

use super::{Candidate, UNSEEDED_RNG};
use crate::classify::FileKind;
use crate::scan::{has_token, Line};

const TOKENS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

pub(crate) fn check(
    kind: FileKind,
    lines: &[Line],
    in_test: &[bool],
    cands: &mut Vec<Candidate>,
) {
    if !matches!(kind, FileKind::Library | FileKind::Example) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let hit = TOKENS
            .iter()
            .find(|t| has_token(&line.code, t))
            .copied()
            .or_else(|| {
                line.code
                    .contains("rand::random")
                    .then_some("rand::random")
            });
        if let Some(tok) = hit {
            cands.push(Candidate {
                line_idx: idx,
                rule: UNSEEDED_RNG,
                message: format!(
                    "`{tok}` draws OS entropy, breaking run-to-run reproducibility; construct \
                     RNGs from an explicit seed (e.g. `StdRng::seed_from_u64`)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{cfg_test_regions, scan};

    fn run(kind: FileKind, src: &str) -> Vec<usize> {
        let lines = scan(src);
        let in_test = cfg_test_regions(&lines);
        let mut cands = Vec::new();
        check(kind, &lines, &in_test, &mut cands);
        cands.iter().map(|c| c.line_idx + 1).collect()
    }

    #[test]
    fn flags_entropy_constructions() {
        let src = "let mut a = rand::thread_rng();\nlet b = StdRng::from_entropy();\nlet c: u8 = rand::random();";
        assert_eq!(run(FileKind::Library, src), vec![1, 2, 3]);
    }

    #[test]
    fn seeded_constructions_pass() {
        let src = "let mut rng = StdRng::seed_from_u64(42);";
        assert!(run(FileKind::Library, src).is_empty());
    }

    #[test]
    fn tests_and_bench_are_exempt() {
        let src = "let mut a = rand::thread_rng();";
        assert!(run(FileKind::Test, src).is_empty());
        assert!(run(FileKind::BenchCrate, src).is_empty());
    }
}
