//! `forbid-unsafe`: crates without `unsafe` must say so in the type system.
//!
//! A crate whose `src/` tree contains no `unsafe` should declare
//! `#![forbid(unsafe_code)]` at its root, turning "happens to have no
//! unsafe today" into "cannot gain unsafe without a reviewed attribute
//! change". This is the only workspace-level rule: it aggregates the
//! per-file facts collected by [`check_file`](super::check_file) across
//! each crate's `src/` tree and fires on the crate root (`src/lib.rs`).

use super::FORBID_UNSAFE;
use crate::Diagnostic;
use std::collections::BTreeMap;

/// Per-crate facts the rule needs, keyed by crate directory name.
#[derive(Debug, Default)]
pub struct CrateFacts {
    /// Relative path of the crate root (`…/src/lib.rs`), if seen.
    pub root_path: Option<String>,
    /// Whether the root declares `#![forbid(unsafe_code)]`.
    pub root_forbids: bool,
    /// Whether any file in the crate's `src/` tree contains `unsafe` code
    /// (including inline `#[cfg(test)]` modules — those compile into the
    /// same crate, so the attribute governs them too).
    pub any_unsafe: bool,
}

/// Emits one diagnostic per unsafe-free crate whose root lacks the
/// attribute.
pub fn finalize(crates: &BTreeMap<String, CrateFacts>, out: &mut Vec<Diagnostic>) {
    for (name, facts) in crates {
        let Some(root) = &facts.root_path else {
            continue;
        };
        if !facts.any_unsafe && !facts.root_forbids {
            out.push(Diagnostic {
                path: root.clone(),
                line: 1,
                rule: FORBID_UNSAFE,
                message: format!(
                    "crate `{name}` contains no unsafe code but its root does not declare \
                     `#![forbid(unsafe_code)]`"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(root: &str, forbids: bool, any_unsafe: bool) -> CrateFacts {
        CrateFacts {
            root_path: Some(root.to_string()),
            root_forbids: forbids,
            any_unsafe,
        }
    }

    #[test]
    fn fires_only_on_unsafe_free_crates_without_the_attribute() {
        let mut crates = BTreeMap::new();
        crates.insert("clean".into(), facts("crates/clean/src/lib.rs", true, false));
        crates.insert("missing".into(), facts("crates/missing/src/lib.rs", false, false));
        crates.insert("unsafe_user".into(), facts("crates/unsafe_user/src/lib.rs", false, true));
        let mut out = Vec::new();
        finalize(&crates, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path, "crates/missing/src/lib.rs");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn crates_without_a_lib_root_are_skipped() {
        let mut crates = BTreeMap::new();
        crates.insert(
            "bin_only".into(),
            CrateFacts {
                root_path: None,
                root_forbids: false,
                any_unsafe: false,
            },
        );
        let mut out = Vec::new();
        finalize(&crates, &mut out);
        assert!(out.is_empty());
    }
}
