//! `no-panic-unwrap`: no `unwrap()` / `expect()` in resilience-critical
//! library code.
//!
//! The recovery ladder turns solver failures into structured errors
//! (`CoreError::StepFailed`, `EnsembleFailed`, …) precisely so a poisoned
//! sample cannot take down a campaign — a panic in the session, the
//! ensemble engine or the iterative solvers would bypass the whole
//! escalation path and kill every worker thread with it. The surrogate
//! serving tier sits on the same path: `SurrogateWithFallback` runs inside
//! reliability campaigns, so a panic while screening or refitting would
//! equally kill the campaign mid-flight. The serving daemon extends the
//! perimeter once more: `crates/serve` hosts jobs for many tenants on
//! long-lived worker threads, so a panic in the scheduler, registry or
//! connection plumbing takes down every in-flight job at once. Inside
//! that perimeter (`crates/core/src/session.rs`,
//! `crates/core/src/ensemble.rs`, the solver modules under
//! `crates/numerics/src/solvers/`, `crates/uq/src/surrogate.rs`,
//! `crates/reliability/src/surrogate.rs` and all of `crates/serve/src/`)
//! every fallible operation must return an error, or justify the panic with e.g.
//! `// lint:allow(no-panic-unwrap): invariant upheld by the builder above`.
//! Test code (and `unwrap_or`-style non-panicking combinators) are exempt.

use super::{Candidate, NO_PANIC_UNWRAP};
use crate::classify::FileKind;
use crate::scan::{has_token, Line};

const TOKENS: [&str; 2] = ["unwrap", "expect"];

/// The resilience perimeter, as workspace-relative path prefixes/paths.
fn in_perimeter(rel_path: &str) -> bool {
    rel_path == "crates/core/src/session.rs"
        || rel_path == "crates/core/src/ensemble.rs"
        || rel_path.starts_with("crates/numerics/src/solvers/")
        || rel_path == "crates/uq/src/surrogate.rs"
        || rel_path == "crates/reliability/src/surrogate.rs"
        || rel_path.starts_with("crates/serve/src/")
}

pub(crate) fn check(
    kind: FileKind,
    rel_path: &str,
    lines: &[Line],
    in_test: &[bool],
    cands: &mut Vec<Candidate>,
) {
    if kind != FileKind::Library || !in_perimeter(rel_path) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        if let Some(tok) = TOKENS.iter().find(|t| has_token(&line.code, t)) {
            cands.push(Candidate {
                line_idx: idx,
                rule: NO_PANIC_UNWRAP,
                message: format!(
                    "`{tok}` in the solver-resilience perimeter: a panic here bypasses the \
                     recovery ladder and kills the whole ensemble; return a structured error \
                     (`CoreError`/`NumericsError`) or justify with a lint:allow annotation"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{cfg_test_regions, scan};

    fn run(kind: FileKind, rel_path: &str, src: &str) -> Vec<usize> {
        let lines = scan(src);
        let in_test = cfg_test_regions(&lines);
        let mut cands = Vec::new();
        check(kind, rel_path, &lines, &in_test, &mut cands);
        cands.iter().map(|c| c.line_idx + 1).collect()
    }

    #[test]
    fn flags_unwrap_and_expect_in_perimeter() {
        let src = "let x = m.get(&k).unwrap();\nlet y = v.first().expect(\"non-empty\");";
        assert_eq!(
            run(FileKind::Library, "crates/core/src/session.rs", src),
            vec![1, 2]
        );
        assert_eq!(
            run(FileKind::Library, "crates/core/src/ensemble.rs", src),
            vec![1, 2]
        );
        assert_eq!(
            run(FileKind::Library, "crates/numerics/src/solvers/amg.rs", src),
            vec![1, 2]
        );
        assert_eq!(
            run(FileKind::Library, "crates/uq/src/surrogate.rs", src),
            vec![1, 2]
        );
        assert_eq!(
            run(FileKind::Library, "crates/reliability/src/surrogate.rs", src),
            vec![1, 2]
        );
        // The multi-tenant serving daemon: every module is in the perimeter,
        // including the `etherm-served` binary.
        assert_eq!(
            run(FileKind::Library, "crates/serve/src/engine.rs", src),
            vec![1, 2]
        );
        assert_eq!(
            run(FileKind::Library, "crates/serve/src/bin/etherm-served.rs", src),
            vec![1, 2]
        );
    }

    #[test]
    fn outside_perimeter_passes() {
        let src = "let x = m.get(&k).unwrap();";
        assert!(run(FileKind::Library, "crates/core/src/options.rs", src).is_empty());
        assert!(run(FileKind::Library, "crates/numerics/src/sparse/csr.rs", src).is_empty());
        assert!(run(FileKind::Test, "crates/core/tests/session.rs", src).is_empty());
    }

    #[test]
    fn non_panicking_combinators_pass() {
        let src = "let x = o.unwrap_or(0);\nlet y = o.unwrap_or_else(|| 1);\n\
                   let z = o.unwrap_or_default();";
        assert!(run(FileKind::Library, "crates/core/src/session.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { lib();\n        \
                   x.unwrap(); }\n}";
        assert!(run(FileKind::Library, "crates/core/src/session.rs", src).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_pass() {
        let src = "// unwrap() would panic here\nlet s = \"expect\";";
        assert!(run(FileKind::Library, "crates/core/src/session.rs", src).is_empty());
    }
}
