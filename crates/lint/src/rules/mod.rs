//! The rule set and the per-file checking pipeline.
//!
//! Each rule lives in its own module and emits candidate findings; this
//! module applies the escape-hatch annotations and turns surviving
//! candidates into [`Diagnostic`]s. The annotation syntax is a comment on
//! the offending line or the line directly above it, naming the rule and
//! giving a non-empty justification — for example
//! `// lint:allow(nondeterministic-map): iteration order is sorted below`.
//! Reason-less or unknown-rule annotations are themselves findings (the
//! `lint-allow` meta rule), so the escape hatch cannot silently rot.

pub mod forbid_unsafe;
pub mod no_panic_unwrap;
pub mod nondeterministic_map;
pub mod safety_comment;
pub mod unseeded_rng;
pub mod wall_clock;

use crate::classify::FileKind;
use crate::scan::{cfg_test_regions, scan, Line};
use crate::{Diagnostic, Suppression};

/// Rule identifiers, as used in diagnostics and `lint:allow` annotations.
pub const SAFETY_COMMENT: &str = "safety-comment";
pub const NONDETERMINISTIC_MAP: &str = "nondeterministic-map";
pub const WALL_CLOCK: &str = "wall-clock";
pub const UNSEEDED_RNG: &str = "unseeded-rng";
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
pub const NO_PANIC_UNWRAP: &str = "no-panic-unwrap";
/// Meta rule: malformed `lint:allow` annotations.
pub const LINT_ALLOW: &str = "lint-allow";

/// The rules a `lint:allow` annotation may name.
pub const ALLOWABLE_RULES: [&str; 6] = [
    SAFETY_COMMENT,
    NONDETERMINISTIC_MAP,
    WALL_CLOCK,
    UNSEEDED_RNG,
    FORBID_UNSAFE,
    NO_PANIC_UNWRAP,
];

/// A rule finding before escape-hatch filtering. `line_idx` is 0-based.
#[derive(Debug)]
pub(crate) struct Candidate {
    pub line_idx: usize,
    pub rule: &'static str,
    pub message: String,
}

/// A parsed `lint:allow` annotation.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    reason: String,
}

/// Per-file check result, plus the facts the workspace-level
/// `forbid-unsafe` rule aggregates across files.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    pub suppressions: Vec<Suppression>,
    /// Whether any code line contains the `unsafe` keyword.
    pub has_unsafe: bool,
    /// Whether the file declares `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

/// Runs every per-file rule over one source file.
pub fn check_file(rel_path: &str, source: &str, kind: FileKind) -> FileReport {
    let lines = scan(source);
    let in_test = cfg_test_regions(&lines);
    let allows = parse_allows(&lines);

    let mut cands = Vec::new();
    safety_comment::check(&lines, &mut cands);
    nondeterministic_map::check(kind, &lines, &in_test, &mut cands);
    wall_clock::check(kind, &lines, &mut cands);
    unseeded_rng::check(kind, &lines, &in_test, &mut cands);
    no_panic_unwrap::check(kind, rel_path, &lines, &in_test, &mut cands);
    check_allow_annotations(&allows, &mut cands);

    let mut report = FileReport {
        has_unsafe: lines
            .iter()
            .any(|l| crate::scan::has_token(&l.code, "unsafe")),
        has_forbid_unsafe: lines.iter().any(|l| {
            let squashed: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
            squashed.contains("#![forbid(unsafe_code)]")
        }),
        ..FileReport::default()
    };

    for cand in cands {
        match matching_allow(&allows, cand.line_idx, cand.rule) {
            Some(allow) => report.suppressions.push(Suppression {
                path: rel_path.to_string(),
                line: cand.line_idx + 1,
                rule: cand.rule.to_string(),
                reason: allow.reason.clone(),
            }),
            None => report.diagnostics.push(Diagnostic {
                path: rel_path.to_string(),
                line: cand.line_idx + 1,
                rule: cand.rule,
                message: cand.message,
            }),
        }
    }
    report
}

/// Parses at most one `lint:allow` annotation per line of comments.
fn parse_allows(lines: &[Line]) -> Vec<Option<Allow>> {
    lines
        .iter()
        .map(|l| {
            let c = &l.comment;
            let start = c.find("lint:allow(")?;
            let rest = &c[start + "lint:allow(".len()..];
            let close = rest.find(')')?;
            let rule = rest[..close].trim().to_string();
            let after = rest[close + 1..].trim_start();
            let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
            Some(Allow { rule, reason })
        })
        .collect()
}

/// A candidate at `line_idx` is suppressed by a well-formed annotation for
/// its rule on the same line or the line directly above.
fn matching_allow<'a>(
    allows: &'a [Option<Allow>],
    line_idx: usize,
    rule: &str,
) -> Option<&'a Allow> {
    let well_formed = |a: &&Allow| a.rule == rule && !a.reason.is_empty();
    if let Some(a) = allows[line_idx].as_ref().filter(well_formed) {
        return Some(a);
    }
    if line_idx > 0 {
        if let Some(a) = allows[line_idx - 1].as_ref().filter(well_formed) {
            return Some(a);
        }
    }
    None
}

/// The `lint-allow` meta rule: every annotation must name a known rule and
/// carry a non-empty reason after a `:`.
fn check_allow_annotations(allows: &[Option<Allow>], cands: &mut Vec<Candidate>) {
    for (idx, allow) in allows.iter().enumerate() {
        let Some(allow) = allow else { continue };
        if !ALLOWABLE_RULES.contains(&allow.rule.as_str()) {
            cands.push(Candidate {
                line_idx: idx,
                rule: LINT_ALLOW,
                message: format!(
                    "`lint:allow({})` names an unknown rule; known rules: {}",
                    allow.rule,
                    ALLOWABLE_RULES.join(", ")
                ),
            });
        } else if allow.reason.is_empty() {
            cands.push(Candidate {
                line_idx: idx,
                rule: LINT_ALLOW,
                message: format!(
                    "`lint:allow({})` must carry a justification after a colon",
                    allow.rule
                ),
            });
        }
        // Well-formed annotations on lines the rule never fires on are
        // tolerated: comments drift in refactors, and an unused allowance
        // is harmless.
    }
}
