//! `nondeterministic-map`: no default-hasher maps in shipped code.
//!
//! `std::collections::HashMap`/`HashSet` seed their hasher per process, so
//! iteration order differs run to run — exactly the class of latent
//! nondeterminism the workspace's bit-identity guarantees (ensemble runs,
//! subset simulation across worker counts) cannot tolerate and runtime
//! tests cannot see within one process. Shipped library and example code
//! must use `BTreeMap`/`BTreeSet`, sort before iterating, or carry an
//! explicit justification, e.g.
//! `// lint:allow(nondeterministic-map): consumed via point lookups only`.
//! Test code and `crates/bench` are exempt.

use super::{Candidate, NONDETERMINISTIC_MAP};
use crate::classify::FileKind;
use crate::scan::{has_token, Line};

const TOKENS: [&str; 4] = ["HashMap", "HashSet", "hash_map", "hash_set"];

pub(crate) fn check(
    kind: FileKind,
    lines: &[Line],
    in_test: &[bool],
    cands: &mut Vec<Candidate>,
) {
    if !matches!(kind, FileKind::Library | FileKind::Example) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        if let Some(tok) = TOKENS.iter().find(|t| has_token(&line.code, t)) {
            cands.push(Candidate {
                line_idx: idx,
                rule: NONDETERMINISTIC_MAP,
                message: format!(
                    "`{tok}` has a randomized per-process hasher (nondeterministic iteration \
                     order); use `BTreeMap`/`BTreeSet` or justify with a lint:allow annotation"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{cfg_test_regions, scan};

    fn run(kind: FileKind, src: &str) -> Vec<usize> {
        let lines = scan(src);
        let in_test = cfg_test_regions(&lines);
        let mut cands = Vec::new();
        check(kind, &lines, &in_test, &mut cands);
        cands.iter().map(|c| c.line_idx + 1).collect()
    }

    #[test]
    fn flags_hash_collections_in_library_code() {
        let src = "use std::collections::HashMap;\nuse std::collections::HashSet;";
        assert_eq!(run(FileKind::Library, src), vec![1, 2]);
    }

    #[test]
    fn flags_hash_map_module_paths() {
        let src = "use std::collections::hash_map::Entry;";
        assert_eq!(run(FileKind::Library, src), vec![1]);
    }

    #[test]
    fn btree_collections_pass() {
        let src = "use std::collections::{BTreeMap, BTreeSet};";
        assert!(run(FileKind::Library, src).is_empty());
    }

    #[test]
    fn test_code_and_bench_are_exempt() {
        let src = "use std::collections::HashMap;";
        assert!(run(FileKind::Test, src).is_empty());
        assert!(run(FileKind::BenchCrate, src).is_empty());
    }

    #[test]
    fn inline_cfg_test_modules_are_exempt() {
        let src = "\
pub fn lib() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
}";
        assert!(run(FileKind::Library, src).is_empty());
    }
}
