//! `wall-clock`: wall-clock reads stay inside `crates/bench`.
//!
//! `Instant::now()` and `SystemTime` are the canonical way nondeterminism
//! leaks into a numerical code base: a timeout that shapes an iteration
//! count, a timestamp that seeds an RNG, an adaptive heuristic keyed to
//! elapsed time. Physics must depend only on inputs, so outside the
//! measurement harness (`crates/bench`, whose whole purpose is timing) any
//! use of the wall clock must be justified, e.g.
//! `// lint:allow(wall-clock): log timestamp only, never read back`.

use super::{Candidate, WALL_CLOCK};
use crate::classify::FileKind;
use crate::scan::{has_token, Line};

const TOKENS: [&str; 2] = ["Instant", "SystemTime"];

pub(crate) fn check(kind: FileKind, lines: &[Line], cands: &mut Vec<Candidate>) {
    if kind == FileKind::BenchCrate {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if let Some(tok) = TOKENS.iter().find(|t| has_token(&line.code, t)) {
            cands.push(Candidate {
                line_idx: idx,
                rule: WALL_CLOCK,
                message: format!(
                    "`{tok}` outside crates/bench: wall-clock time must never feed physics; \
                     move timing into the bench harness or justify with a lint:allow annotation"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(kind: FileKind, src: &str) -> Vec<usize> {
        let mut cands = Vec::new();
        check(kind, &scan(src), &mut cands);
        cands.iter().map(|c| c.line_idx + 1).collect()
    }

    #[test]
    fn flags_instant_and_system_time() {
        let src = "use std::time::Instant;\nlet t = SystemTime::now();";
        assert_eq!(run(FileKind::Library, src), vec![1, 2]);
        assert_eq!(run(FileKind::Test, src), vec![1, 2]);
    }

    #[test]
    fn bench_crate_is_exempt() {
        assert!(run(FileKind::BenchCrate, "let t = Instant::now();").is_empty());
    }

    #[test]
    fn prose_and_prefixed_identifiers_pass() {
        // "Instantaneous" in a doc comment and `Instant` inside a string
        // must not fire.
        let src = "/// Instantaneous damage rate.\nlet s = \"Instant::now\"; let d = duration;";
        assert!(run(FileKind::Library, src).is_empty());
    }
}
