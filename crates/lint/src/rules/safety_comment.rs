//! `safety-comment`: every `unsafe` occurrence must be justified.
//!
//! An `unsafe` block, function, or impl asserts an obligation the compiler
//! cannot check; this rule demands the obligation be written down. The
//! justification is a comment containing `SAFETY:` either on the `unsafe`
//! line itself or in the contiguous comment block directly above it
//! (attribute lines such as `#[inline]` may sit between the comment and the
//! item). The rule applies to every file kind — test code asserts the same
//! obligations production code does.

use super::{Candidate, SAFETY_COMMENT};
use crate::scan::{has_token, Line};

pub(crate) fn check(lines: &[Line], cands: &mut Vec<Candidate>) {
    for idx in 0..lines.len() {
        if !has_token(&lines[idx].code, "unsafe") {
            continue;
        }
        if justified(lines, idx) {
            continue;
        }
        cands.push(Candidate {
            line_idx: idx,
            rule: SAFETY_COMMENT,
            message: "`unsafe` without a `// SAFETY:` justification on this line or in the \
                      comment block directly above"
                .to_string(),
        });
    }
}

fn justified(lines: &[Line], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    // Walk the contiguous run of comment-only and attribute lines above.
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        if line.is_attribute() {
            continue;
        }
        if line.code_is_blank() && !line.comment.trim().is_empty() {
            if line.comment.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(src: &str) -> Vec<usize> {
        let mut cands = Vec::new();
        check(&scan(src), &mut cands);
        cands.iter().map(|c| c.line_idx + 1).collect()
    }

    #[test]
    fn flags_bare_unsafe() {
        assert_eq!(run("fn f() { unsafe { g() } }"), vec![1]);
    }

    #[test]
    fn same_line_comment_suffices() {
        assert!(run("unsafe { g() } // SAFETY: g has no preconditions").is_empty());
    }

    #[test]
    fn comment_block_above_suffices_across_attributes() {
        let src = "\
// SAFETY: the pointer is valid for the borrow's lifetime because the
// caller holds the owning Vec alive.
#[inline]
unsafe fn deref(p: *const u8) -> u8 { *p }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn blank_line_breaks_the_association() {
        let src = "// SAFETY: stale justification\n\nunsafe fn f() {}";
        assert_eq!(run(src), vec![3]);
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        assert!(run("let s = \"unsafe\"; // unsafe in prose").is_empty());
        assert!(run("#![forbid(unsafe_code)]").is_empty());
    }
}
