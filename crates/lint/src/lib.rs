//! `etherm-lint` — workspace determinism-and-soundness static analyzer.
//!
//! Every headline claim this reproduction makes rests on invariants no
//! single runtime test can guarantee across the whole workspace: ensemble
//! campaigns and subset-simulation estimates are bit-identical for any
//! worker count, physics never reads the wall clock, every random stream is
//! seeded, and the rare `unsafe` is justified. This crate enforces those
//! invariants *statically*, on every `.rs` file, with a hand-rolled
//! line/token scanner (no parser dependencies — the workspace builds
//! offline) and five named rules:
//!
//! | rule | requirement |
//! |------|-------------|
//! | `safety-comment` | every `unsafe` is preceded by a `// SAFETY:` justification |
//! | `nondeterministic-map` | no default-hasher `HashMap`/`HashSet` in shipped code |
//! | `wall-clock` | no `Instant`/`SystemTime` outside `crates/bench` |
//! | `unseeded-rng` | no entropy-seeded RNG construction outside tests/bench |
//! | `forbid-unsafe` | unsafe-free crates declare `#![forbid(unsafe_code)]` |
//!
//! A sixth meta rule, `lint-allow`, rejects malformed escape hatches: a
//! finding may only be waived by an annotation naming the rule with a
//! non-empty justification, on the offending line or directly above it.
//!
//! Run the analyzer over the workspace with `cargo run -p etherm_lint`;
//! it exits 0 when clean and 1 with `file:line` diagnostics otherwise.

#![forbid(unsafe_code)]

pub mod classify;
pub mod rules;
pub mod scan;

use classify::{collect_sources, is_crate_root, FileKind};
use rules::forbid_unsafe::CrateFacts;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// One finding: a rule violated at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A finding waived by a well-formed `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub path: String,
    pub line: usize,
    pub rule: String,
    pub reason: String,
}

/// The result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Escape hatches currently in effect (reported for transparency).
    pub suppressions: Vec<Suppression>,
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints a single in-memory source file under an explicit classification.
/// This is the unit the fixture corpus tests; [`lint_workspace`] adds file
/// discovery and the workspace-level `forbid-unsafe` aggregation on top.
pub fn lint_source(rel_path: &str, source: &str, kind: FileKind) -> rules::FileReport {
    rules::check_file(rel_path, source, kind)
}

/// Walks every first-party `.rs` file under `root` (the `src/`, `crates/`,
/// `tests/` and `examples/` trees; `vendor/`, `target/` and the linter's
/// own fixture corpus are excluded) and applies all rules.
///
/// # Errors
///
/// Propagates I/O failures from directory traversal or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let sources = collect_sources(root)?;
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    let mut crates: BTreeMap<String, CrateFacts> = BTreeMap::new();

    for file in &sources {
        let bytes = fs::read(&file.abs_path)?;
        let text = String::from_utf8_lossy(&bytes);
        let file_report = rules::check_file(&file.rel_path, &text, file.kind);
        report.diagnostics.extend(file_report.diagnostics);
        report.suppressions.extend(file_report.suppressions);

        // Aggregate per-crate facts over src/ trees for `forbid-unsafe`.
        let in_src_tree =
            file.rel_path.starts_with("src/") || file.rel_path.contains("/src/");
        if in_src_tree {
            let facts = crates.entry(file.crate_name.clone()).or_default();
            facts.any_unsafe |= file_report.has_unsafe;
            if is_crate_root(file) {
                facts.root_path = Some(file.rel_path.clone());
                facts.root_forbids = file_report.has_forbid_unsafe;
            }
        }
    }

    rules::forbid_unsafe::finalize(&crates, &mut report.diagnostics);
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}
