//! Command-line front end: `cargo run -p etherm_lint [-- ROOT]`.
//!
//! Exit codes: 0 — workspace clean; 1 — findings (printed as
//! `file:line: [rule] message`); 2 — usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match parse_root(&args) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("etherm-lint: {msg}");
            eprintln!("usage: etherm_lint [WORKSPACE_ROOT]");
            return ExitCode::from(2);
        }
    };

    let report = match etherm_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("etherm-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for diag in &report.diagnostics {
        println!("{diag}");
    }
    if !report.suppressions.is_empty() {
        println!(
            "etherm-lint: {} lint:allow escape(s) in effect:",
            report.suppressions.len()
        );
        for s in &report.suppressions {
            println!("  {}:{}: [{}] allowed: {}", s.path, s.line, s.rule, s.reason);
        }
    }
    println!(
        "etherm-lint: {} file(s) scanned, {} finding(s)",
        report.files_scanned,
        report.diagnostics.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [] => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            etherm_lint::classify::find_workspace_root(&cwd)
                .ok_or_else(|| "no enclosing cargo workspace found; pass a root path".to_string())
        }
        [root] => {
            let path = PathBuf::from(root);
            if path.is_dir() {
                Ok(path)
            } else {
                Err(format!("not a directory: {root}"))
            }
        }
        _ => Err("expected at most one argument".to_string()),
    }
}
