//! Lexical pre-pass: split Rust source into per-line *code* and *comment*
//! channels without a full parser.
//!
//! The linter's rules are token-level, so the only lexical structure they
//! need is "which bytes are code, which are comments, and which are literal
//! contents". This module provides exactly that via a small character-level
//! state machine that understands:
//!
//! * line comments (`//`, `///`, `//!`),
//! * nested block comments (`/* /* */ */`),
//! * string literals with escapes (`"…\"…"`), byte strings (`b"…"`),
//! * raw strings with up to 255 hashes (`r#"…"#`, `br##"…"##`),
//! * character/byte literals (`'x'`, `'\n'`, `b'x'`) versus lifetimes
//!   (`'static`, `'a`).
//!
//! Comment text is preserved per line (rules need it for `SAFETY:`
//! justifications and `lint:allow` annotations); string/char literal
//! *contents* are blanked out of the code channel so a token such as
//! `"a HashMap in a string"` can never trigger a rule. Column positions are
//! preserved: every stripped character is replaced by a space.

/// One physical source line, split into its code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Source text with comments and literal contents replaced by spaces.
    pub code: String,
    /// Concatenated text of all comments that appear on this line (without
    /// the `//` / `/*` markers).
    pub comment: String,
}

impl Line {
    /// Whether the code channel contains nothing but whitespace.
    pub fn code_is_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// Whether the trimmed code channel is an attribute line (`#[…]` or
    /// `#![…]`). Attribute arguments may spill onto following lines; the
    /// rules that skip attributes treat any `#[`-prefixed line as one.
    pub fn is_attribute(&self) -> bool {
        let t = self.code.trim_start();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// `in_escape` flag.
    Str(bool),
    /// Number of `#` marks that close the raw string.
    RawStr(u8),
    /// `in_escape` flag.
    CharLit(bool),
}

/// Splits `source` into per-line code/comment channels.
pub fn scan(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; everything else carries over.
            if state == State::LineComment {
                state = State::Code;
            }
            // An unterminated char literal cannot span lines (`'a` was a
            // lifetime misclassified only if our heuristic failed; recover).
            if matches!(state, State::CharLit(_)) {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str(false);
                    cur.code.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // Possible raw/byte string prefix: r", r#", b", br#", b'.
                    match raw_prefix(&chars, i) {
                        Some((hashes, len)) => {
                            state = State::RawStr(hashes);
                            for _ in 0..len {
                                cur.code.push(' ');
                            }
                            i += len;
                        }
                        None => {
                            if c == 'b' && next == Some('"') {
                                state = State::Str(false);
                                cur.code.push_str("  ");
                                i += 2;
                            } else if c == 'b' && next == Some('\'') {
                                state = State::CharLit(false);
                                cur.code.push_str("  ");
                                i += 2;
                            } else {
                                cur.code.push(c);
                                i += 1;
                            }
                        }
                    }
                } else if c == '\'' {
                    if is_char_literal(&chars, i) {
                        state = State::CharLit(false);
                        cur.code.push(' ');
                        i += 1;
                    } else {
                        // A lifetime (`'a`, `'static`) — plain code.
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                cur.code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    cur.code.push_str("  ");
                    i += 2;
                } else {
                    cur.comment.push(c);
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::Str(in_escape) => {
                cur.code.push(' ');
                state = if in_escape {
                    State::Str(false)
                } else if c == '\\' {
                    State::Str(true)
                } else if c == '"' {
                    State::Code
                } else {
                    State::Str(false)
                };
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for _ in 0..=hashes {
                        cur.code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::CharLit(in_escape) => {
                cur.code.push(' ');
                state = if in_escape {
                    State::CharLit(false)
                } else if c == '\\' {
                    State::CharLit(true)
                } else if c == '\'' {
                    State::Code
                } else {
                    State::CharLit(false)
                };
                i += 1;
            }
        }
    }
    lines.push(cur);
    lines
}

/// Whether the character before `i` continues an identifier (in which case
/// an `r`/`b` at `i` is the tail of a name, not a literal prefix).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Detects a raw-string prefix starting at `i` (`r"`, `r#…#"`, `br#…#"`).
/// Returns `(hash_count, prefix_len_chars)` including the opening quote.
fn raw_prefix(chars: &[char], i: usize) -> Option<(u8, usize)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u8;
    while chars.get(j) == Some(&'#') {
        hashes = hashes.checked_add(1)?;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// Whether the `"` at `i` is followed by `hashes` `#` characters, closing a
/// raw string literal.
fn closes_raw(chars: &[char], i: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a character literal from a lifetime at a `'` in code
/// position: `'x'` / `'\n'` / `'λ'` are literals, `'a` / `'static` are
/// lifetimes. A `'` followed by an escape is always a literal; otherwise it
/// is a literal iff the character after next is the closing `'`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks the lines belonging to `#[cfg(test)]` items (typically inline
/// `mod tests { … }` blocks). Returns one flag per line; flagged lines are
/// exempt from the determinism rules, which only govern shipped library
/// code.
///
/// The tracker is brace-based: after a line whose code contains
/// `#[cfg(test)]`, every line up to and including the matching close brace
/// of the next `{` is marked. This covers the attribute line itself, the
/// item header, and the body.
pub fn cfg_test_regions(lines: &[Line]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut pending = false;
    let mut depth: i64 = 0;

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if depth > 0 {
            flags[idx] = true;
            depth += brace_delta(code);
            if depth <= 0 {
                depth = 0;
            }
            continue;
        }
        if pending {
            flags[idx] = true;
            let delta_open = code.chars().filter(|&c| c == '{').count() as i64;
            if delta_open > 0 {
                depth = brace_delta(code);
                pending = false;
                if depth <= 0 {
                    depth = 0;
                }
            } else if code.trim_end().ends_with(';') {
                // `#[cfg(test)] use …;` — single-item scope, region ends.
                pending = false;
            }
            continue;
        }
        if squash_ws(code).contains("#[cfg(test)]") {
            flags[idx] = true;
            // The attribute and item may share a line; start counting here.
            let delta = brace_delta(code);
            if delta > 0 {
                depth = delta;
            } else {
                pending = true;
            }
        }
    }
    flags
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Removes all whitespace (attribute tokens may be spaced: `# [cfg(test)]`
/// never occurs in practice, but `#[cfg( test )]` does under some
/// formatters).
fn squash_ws(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Whether `code` contains `token` as a standalone word: the characters on
/// both sides (if any) must not be identifier characters. This is the only
/// matching primitive the rules use — `unsafe_code` never matches `unsafe`,
/// `Instantaneous` never matches `Instant`.
pub fn has_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

/// Byte offset of the first standalone occurrence of `token` in `code`.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0
            || code[..at]
                .chars()
                .next_back()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after = code[at + token.len()..].chars().next();
        let after_ok = after.is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + token.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_stripped_and_preserved() {
        let lines = scan("let x = 1; // a HashMap here\nlet y = 2;");
        assert!(!has_token(&lines[0].code, "HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(has_token(&lines[1].code, "y"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = scan("a /* outer /* inner */ still comment */ b\nc");
        assert!(has_token(&lines[0].code, "a"));
        assert!(has_token(&lines[0].code, "b"));
        assert!(!has_token(&lines[0].code, "inner"));
        assert!(lines[0].comment.contains("still comment"));
        assert!(has_token(&lines[1].code, "c"));
    }

    #[test]
    fn multi_line_block_comment_spans() {
        let lines = scan("code1 /* x\nstill in comment unsafe\n*/ code2");
        assert!(!has_token(&lines[1].code, "unsafe"));
        assert!(lines[1].comment.contains("unsafe"));
        assert!(has_token(&lines[2].code, "code2"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = scan(r#"let s = "an unsafe HashMap"; let t = 1;"#);
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(!has_token(&lines[0].code, "HashMap"));
        assert!(has_token(&lines[0].code, "t"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let lines = scan(r#"let s = "a\"unsafe"; let u = 2;"#);
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(has_token(&lines[0].code, "u"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lines = scan("let s = r#\"has \"quotes\" and unsafe\"#; let v = 3;");
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(has_token(&lines[0].code, "v"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let lines = scan("let a = b\"unsafe\"; let b2 = br#\"HashMap\"#; done");
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(!has_token(&lines[0].code, "HashMap"));
        assert!(has_token(&lines[0].code, "done"));
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let lines = scan("let c = 'x'; fn f<'a>(v: &'a str) -> &'static str { v }");
        assert!(has_token(&lines[0].code, "'a"));
        assert!(has_token(&lines[0].code, "'static"));
        // A quote char literal must not swallow the rest of the line.
        let lines = scan("let q = '\"'; let unsafe_free = 1; let w = '\\'';");
        assert!(has_token(&lines[0].code, "unsafe_free"));
        assert!(has_token(&lines[0].code, "w"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let lines = scan("let var = 1; let s = format!(\"{var}\");");
        assert!(has_token(&lines[0].code, "var"));
        assert!(has_token(&lines[0].code, "s"));
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("unsafe fn f()", "unsafe"));
        assert!(!has_token("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!has_token("Instantaneous", "Instant"));
        assert!(has_token("std::time::Instant::now()", "Instant"));
        assert!(!has_token("my_unsafe", "unsafe"));
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "\
pub fn lib_code() {}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() { lib_code(); }
}

pub fn more_lib() {}
";
        let lines = scan(src);
        let flags = cfg_test_regions(&lines);
        assert!(!flags[0], "library line flagged as test");
        assert!(flags[2], "attribute line not flagged");
        assert!(flags[3] && flags[4] && flags[6], "body not flagged");
        assert!(flags[7], "closing brace not flagged");
        assert!(!flags[9], "trailing library code flagged");
    }

    #[test]
    fn cfg_test_on_single_use_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\npub fn lib() {}";
        let flags = cfg_test_regions(&scan(src));
        assert!(flags[0] && flags[1]);
        assert!(!flags[2]);
    }
}
