//! Workspace traversal and file classification.
//!
//! The linter's rules have different scopes (shipped library code versus
//! tests versus the benchmark harness), so every scanned file carries a
//! [`FileKind`]. Classification is purely path-based and documented in the
//! README's "Correctness tooling" section; the rules additionally exempt
//! inline `#[cfg(test)]` regions inside library files.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of code a file holds, from the rules' point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Shipped library code: `src/` trees of every crate except
    /// `crates/bench`. All rules apply.
    Library,
    /// Test code: any `tests/` or `benches/` directory. Determinism rules
    /// (maps, RNG seeding, wall-clock) do not apply; `SAFETY:` comments are
    /// still required.
    Test,
    /// Example binaries (`examples/`): wall-clock and map rules apply
    /// (examples document recommended usage); RNG seeding applies too.
    Example,
    /// The measurement harness `crates/bench`: the one place wall-clock
    /// reads and unseeded conveniences are legitimate. Only the `SAFETY:`
    /// rule applies.
    BenchCrate,
}

/// A classified workspace source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Name of the owning crate directory (`numerics`, `bench`, …;
    /// the workspace-root facade crate is `etherm`).
    pub crate_name: String,
    pub kind: FileKind,
}

/// Directories under the workspace root that hold first-party Rust code.
/// `vendor/` (offline stand-ins for third-party crates) and `target/` are
/// deliberately outside the linter's jurisdiction.
const ROOT_DIRS: [&str; 4] = ["src", "crates", "tests", "examples"];

/// Collects every first-party `.rs` file under `root`, classified and
/// sorted by relative path (deterministic diagnostic order).
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for dir in ROOT_DIRS {
        let abs = root.join(dir);
        if abs.is_dir() {
            walk(root, &abs, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target/` can appear nested during offline builds; `fixtures/`
            // holds the linter's own deliberately-failing corpus.
            if name == "target" || name == "fixtures" || name == ".git" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(classify(rel, path));
        }
    }
    Ok(())
}

/// Classifies one workspace-relative path.
pub fn classify(rel_path: String, abs_path: PathBuf) -> SourceFile {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "etherm".to_string()
    };
    let kind = if crate_name == "bench" {
        FileKind::BenchCrate
    } else if parts.contains(&"tests") || parts.contains(&"benches") {
        FileKind::Test
    } else if parts.contains(&"examples") {
        FileKind::Example
    } else {
        FileKind::Library
    };
    SourceFile {
        rel_path,
        abs_path,
        crate_name,
        kind,
    }
}

/// Whether this file is a library crate root (`src/lib.rs`) — the place the
/// `forbid-unsafe` rule inspects.
pub fn is_crate_root(file: &SourceFile) -> bool {
    file.rel_path == "src/lib.rs" || file.rel_path.ends_with("/src/lib.rs")
}

/// Finds the enclosing cargo workspace root: the nearest ancestor of
/// `start` whose `Cargo.toml` declares a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(p: &str) -> (String, FileKind) {
        let f = classify(p.to_string(), PathBuf::from(p));
        (f.crate_name, f.kind)
    }

    #[test]
    fn classification_matrix() {
        assert_eq!(
            class_of("crates/numerics/src/sparse/csr.rs"),
            ("numerics".into(), FileKind::Library)
        );
        assert_eq!(
            class_of("crates/numerics/tests/alloc_free.rs"),
            ("numerics".into(), FileKind::Test)
        );
        assert_eq!(
            class_of("crates/bench/src/bin/bench_uq.rs"),
            ("bench".into(), FileKind::BenchCrate)
        );
        assert_eq!(
            class_of("crates/bench/benches/uq_kernels.rs"),
            ("bench".into(), FileKind::BenchCrate)
        );
        assert_eq!(class_of("src/lib.rs"), ("etherm".into(), FileKind::Library));
        assert_eq!(
            class_of("tests/paper_pipeline.rs"),
            ("etherm".into(), FileKind::Test)
        );
        assert_eq!(
            class_of("examples/pce_study.rs"),
            ("etherm".into(), FileKind::Example)
        );
    }

    #[test]
    fn crate_root_detection() {
        let lib = classify(
            "crates/uq/src/lib.rs".into(),
            PathBuf::from("crates/uq/src/lib.rs"),
        );
        let not = classify(
            "crates/uq/src/pce.rs".into(),
            PathBuf::from("crates/uq/src/pce.rs"),
        );
        let root = classify("src/lib.rs".into(), PathBuf::from("src/lib.rs"));
        assert!(is_crate_root(&lib));
        assert!(!is_crate_root(&not));
        assert!(is_crate_root(&root));
    }
}
