//! Failing fixture for the `safety-comment` rule. Expected findings:
//! lines 7, 12 and 21 (kept stable — the fixture test asserts them).

pub fn read_raw(p: *const u8) -> u8 {
    // A comment that is not a justification does not count.
    // This dereference is probably fine.
    unsafe { *p }
}

// SAFETY: stale justification separated by a blank line — does not attach.

unsafe fn detached(p: *const u8) -> u8 {
    *p
}

struct Wrapper(*mut u8);

// An ordinary doc line, not a SAFETY justification.
impl Wrapper {
    pub fn get(&self) -> u8 {
        unsafe { *self.0 }
    }
}
