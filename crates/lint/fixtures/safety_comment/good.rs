//! Passing fixture for the `safety-comment` rule: every `unsafe` carries a
//! justification, either on the same line or in the comment block directly
//! above (attributes in between are fine).

use std::alloc::{GlobalAlloc, Layout, System};

struct Forwarder;

// SAFETY: a pure pass-through to `System`, which upholds the GlobalAlloc
// contract; no behavior is added.
unsafe impl GlobalAlloc for Forwarder {
    // SAFETY: delegates to `System.alloc` under the caller's obligations.
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.dealloc`; the caller guarantees `ptr`
    // came from this allocator with this layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

pub fn first_byte(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    unsafe { *v.as_ptr() } // SAFETY: the assert above proves index 0 is in bounds.
}

/// Mentions of unsafe in prose, "unsafe in strings", and `unsafe_code` in
/// attributes must not require justifications.
pub fn prose() -> &'static str {
    "unsafe"
}
