//! Passing fixture for the `lint-allow` meta rule: a well-formed escape
//! hatch names a known rule, justifies itself after a colon, and sits on
//! the offending line or the line directly above it. Expected: zero
//! findings, three recorded suppressions.

use std::time::Instant; // lint:allow(wall-clock): build-log stamp only, never read by physics

// lint:allow(wall-clock): coarse progress display in an interactive shell
pub fn progress_stamp() -> Instant {
    // lint:allow(wall-clock): coarse progress display in an interactive shell
    Instant::now()
}
