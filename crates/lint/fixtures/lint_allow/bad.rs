//! Failing fixture for the `lint-allow` meta rule. Expected findings:
//! `lint-allow` at lines 5 and 8, plus the `wall-clock` findings the
//! malformed annotations fail to suppress at lines 5, 9 and 10.

use std::time::Instant; // lint:allow(wall-clock):

// A typo in the rule name must not silently waive anything.
// lint:allow(wallclock): the rule name is misspelled here
pub fn stamp() -> Instant {
    Instant::now()
}
