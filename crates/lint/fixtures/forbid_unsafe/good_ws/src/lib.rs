//! Passing fixture workspace for the `forbid-unsafe` rule: an unsafe-free
//! crate whose root declares the attribute.

#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
