//! Failing fixture workspace for the `forbid-unsafe` rule: no unsafe
//! anywhere in the crate, but the root does not declare
//! `#![forbid(unsafe_code)]`. Expected finding: this file, line 1.

pub fn answer() -> u32 {
    42
}
