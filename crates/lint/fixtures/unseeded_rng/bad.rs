//! Failing fixture for the `unseeded-rng` rule. Expected findings:
//! lines 5, 10 and 15 (kept stable — the fixture test asserts them).

pub fn roll() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}

pub fn fresh_generator() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}

pub fn convenience() -> u8 {
    // The one-shot convenience draws OS entropy too.
    rand::random::<u8>()
}
