//! Passing fixture for the `unseeded-rng` rule: every generator is
//! constructed from an explicit seed, so any run can be replayed.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn substream(seed: u64, level: u64, chain: u64) -> StdRng {
    // Keyed substreams: deterministic for any worker count.
    StdRng::seed_from_u64(seed ^ (level << 32) ^ chain)
}

pub fn sample_mean(seed: u64, n: usize) -> f64 {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n.max(1) as f64
}
