//! Passing fixture for the `nondeterministic-map` rule: ordered
//! collections in shipped code, hash collections only where justified or
//! in test modules.

use std::collections::{BTreeMap, BTreeSet};

pub fn count_words(words: &[&str]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for w in words {
        *counts.entry(w.to_string()).or_insert(0) += 1;
    }
    counts
}

pub fn distinct(values: &[u64]) -> BTreeSet<u64> {
    values.iter().copied().collect()
}

// lint:allow(nondeterministic-map): membership queries only, never iterated
pub fn seen_before(history: &std::collections::HashSet<u64>, v: u64) -> bool {
    history.contains(&v)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_hash_maps() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
