//! Failing fixture for the `nondeterministic-map` rule. Expected findings:
//! lines 4, 6, 7, 14 and 15 (kept stable — the fixture test asserts them).

use std::collections::HashMap;

pub fn histogram(values: &[u64]) -> HashMap<u64, usize> {
    let mut out = HashMap::new();
    for v in values {
        *out.entry(*v).or_insert(0) += 1;
    }
    out
}

pub fn uses_entry_api(m: &mut HashMap<u64, u64>) {
    if let std::collections::hash_map::Entry::Vacant(e) = m.entry(7) {
        e.insert(0);
    }
}
