//! Failing fixture for the `wall-clock` rule. Expected findings:
//! lines 4, 7 and 18 (kept stable — the fixture test asserts them).

use std::time::Instant;

pub fn timed_solve(budget_s: f64) -> usize {
    let start = Instant::now();
    let mut iterations = 0;
    // Wall-clock-shaped iteration counts are exactly the nondeterminism
    // this rule exists to keep out of physics.
    while start.elapsed().as_secs_f64() < budget_s {
        iterations += 1;
    }
    iterations
}

pub fn stamp() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
