//! Passing fixture for the `wall-clock` rule: durations flow in as data;
//! nothing reads the clock. ("Instantaneous" in prose and `Instant` inside
//! strings must not fire either.)

use std::time::Duration;

/// Instantaneous rate given an externally measured elapsed time.
pub fn rate(events: u64, elapsed: Duration) -> f64 {
    events as f64 / elapsed.as_secs_f64().max(f64::EPSILON)
}

pub fn describe() -> &'static str {
    "timing uses Instant::now only inside crates/bench"
}

// lint:allow(wall-clock): timestamp is written to a log header and never
pub fn log_stamp(now_unix_s: u64) -> String {
    format!("started at {now_unix_s}")
}
