//! Exit-code and output contract of the `etherm_lint` binary:
//! 0 — clean; 1 — findings, printed as `file:line: [rule] message`;
//! 2 — usage or I/O errors.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run_lint(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_etherm_lint"))
        .arg(root)
        .output()
        .expect("failed to spawn etherm_lint")
}

/// A scratch directory that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "etherm_lint_cli_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("src")).unwrap();
        Scratch(dir)
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn clean_workspace_exits_zero() {
    let ws = Scratch::new("clean");
    ws.write(
        "src/lib.rs",
        "#![forbid(unsafe_code)]\n\npub fn f() -> u32 { 1 }\n",
    );
    let out = run_lint(&ws.0);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn findings_exit_one_with_file_line_diagnostics() {
    let ws = Scratch::new("dirty");
    ws.write(
        "src/lib.rs",
        "use std::collections::HashMap;\n\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n",
    );
    let out = run_lint(&ws.0);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("src/lib.rs:1: [nondeterministic-map]"),
        "missing file:line diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("src/lib.rs:1: [forbid-unsafe]"),
        "workspace-level rule missing in:\n{stdout}"
    );
    // Diagnostics are sorted by (path, line, rule) — deterministic output.
    let diag_lines: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains(": ["))
        .collect();
    let mut sorted = diag_lines.clone();
    sorted.sort();
    assert_eq!(diag_lines, sorted, "diagnostics not sorted:\n{stdout}");
}

#[test]
fn suppressions_are_reported_transparently() {
    let ws = Scratch::new("allowed");
    ws.write(
        "src/lib.rs",
        "#![forbid(unsafe_code)]\n\n\
         // lint:allow(nondeterministic-map): lookups only, never iterated\n\
         pub type Cache = std::collections::HashMap<u64, u64>;\n",
    );
    let out = run_lint(&ws.0);
    assert_eq!(out.status.code(), Some(0), "escapes are not findings: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 lint:allow escape(s) in effect"),
        "escape not reported:\n{stdout}"
    );
    assert!(stdout.contains("lookups only"), "reason not echoed:\n{stdout}");
}

#[test]
fn missing_directory_exits_two() {
    let out = run_lint(Path::new("/nonexistent/etherm/workspace"));
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn extra_arguments_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_etherm_lint"))
        .args(["a", "b"])
        .output()
        .expect("failed to spawn etherm_lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn real_workspace_passes_via_the_binary() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap();
    let out = run_lint(root);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace not clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
