//! Fixture-corpus contract: every rule accepts its good fixture and
//! rejects its bad fixture at exactly the documented lines.

use etherm_lint::classify::FileKind;
use etherm_lint::{lint_source, lint_workspace};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn read(rel: &str) -> String {
    let path = fixture_dir().join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

/// Lines at which `rule` fires when linting the fixture as library code.
fn findings(rel: &str, rule: &str) -> Vec<usize> {
    let report = lint_source(rel, &read(rel), FileKind::Library);
    report
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

fn assert_clean(rel: &str, rule: &str) {
    let lines = findings(rel, rule);
    assert!(
        lines.is_empty(),
        "{rel}: expected no `{rule}` findings, got lines {lines:?}"
    );
}

#[test]
fn safety_comment_good_and_bad() {
    assert_clean("safety_comment/good.rs", "safety-comment");
    assert_eq!(findings("safety_comment/bad.rs", "safety-comment"), [7, 12, 21]);
}

#[test]
fn nondeterministic_map_good_and_bad() {
    assert_clean("nondeterministic_map/good.rs", "nondeterministic-map");
    assert_eq!(
        findings("nondeterministic_map/bad.rs", "nondeterministic-map"),
        [4, 6, 7, 14, 15]
    );
}

#[test]
fn nondeterministic_map_good_records_its_escape() {
    let report = lint_source(
        "nondeterministic_map/good.rs",
        &read("nondeterministic_map/good.rs"),
        FileKind::Library,
    );
    assert_eq!(report.suppressions.len(), 1);
    let s = &report.suppressions[0];
    assert_eq!(s.rule, "nondeterministic-map");
    assert!(s.reason.contains("membership"), "reason preserved: {s:?}");
}

#[test]
fn wall_clock_good_and_bad() {
    assert_clean("wall_clock/good.rs", "wall-clock");
    assert_eq!(findings("wall_clock/bad.rs", "wall-clock"), [4, 7, 18]);
    // The bench harness is the sanctioned home for timing.
    let report = lint_source(
        "wall_clock/bad.rs",
        &read("wall_clock/bad.rs"),
        FileKind::BenchCrate,
    );
    assert!(report.diagnostics.is_empty(), "bench crate must be exempt");
}

#[test]
fn unseeded_rng_good_and_bad() {
    assert_clean("unseeded_rng/good.rs", "unseeded-rng");
    assert_eq!(findings("unseeded_rng/bad.rs", "unseeded-rng"), [5, 10, 15]);
    // Tests may use entropy-seeded conveniences.
    let report = lint_source(
        "unseeded_rng/bad.rs",
        &read("unseeded_rng/bad.rs"),
        FileKind::Test,
    );
    assert!(
        report.diagnostics.iter().all(|d| d.rule != "unseeded-rng"),
        "test code must be exempt"
    );
}

#[test]
fn lint_allow_good_suppresses_and_reports() {
    let report = lint_source(
        "lint_allow/good.rs",
        &read("lint_allow/good.rs"),
        FileKind::Library,
    );
    assert!(
        report.diagnostics.is_empty(),
        "well-formed allows must suppress: {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressions.len(), 3, "{:?}", report.suppressions);
    assert!(report.suppressions.iter().all(|s| s.rule == "wall-clock"));
}

#[test]
fn lint_allow_bad_flags_malformed_annotations() {
    assert_eq!(findings("lint_allow/bad.rs", "lint-allow"), [5, 8]);
    // Malformed annotations must not waive the underlying findings.
    assert_eq!(findings("lint_allow/bad.rs", "wall-clock"), [5, 9, 10]);
}

#[test]
fn forbid_unsafe_good_and_bad_workspaces() {
    let good = lint_workspace(&fixture_dir().join("forbid_unsafe/good_ws")).unwrap();
    assert!(good.is_clean(), "{:?}", good.diagnostics);
    assert_eq!(good.files_scanned, 1);

    let bad = lint_workspace(&fixture_dir().join("forbid_unsafe/bad_ws")).unwrap();
    assert_eq!(bad.diagnostics.len(), 1, "{:?}", bad.diagnostics);
    let d = &bad.diagnostics[0];
    assert_eq!(d.rule, "forbid-unsafe");
    assert_eq!(d.path, "src/lib.rs");
    assert_eq!(d.line, 1);
}

#[test]
fn diagnostics_render_as_file_line_rule_message() {
    let report = lint_source(
        "wall_clock/bad.rs",
        &read("wall_clock/bad.rs"),
        FileKind::Library,
    );
    let rendered = report.diagnostics[0].to_string();
    assert!(
        rendered.starts_with("wall_clock/bad.rs:4: [wall-clock]"),
        "diagnostic format drifted: {rendered}"
    );
}
