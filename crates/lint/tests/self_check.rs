//! The self-check gate: the real workspace must be clean under its own
//! linter, with zero escape hatches in effect.
//!
//! This test is what makes the rules *enforced* rather than aspirational:
//! it runs in plain `cargo test`, so a default-hasher map, an unjustified
//! `unsafe`, a wall-clock read in physics code, an unseeded RNG, or a new
//! crate without `#![forbid(unsafe_code)]` fails CI on every push.

use std::path::Path;

#[test]
fn workspace_is_clean_under_etherm_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );

    let report = etherm_lint::lint_workspace(root).expect("workspace scan failed");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The acceptance bar for this analyzer was "fix everything it flags,
    // allowlist nothing": keep it that way. If a future change genuinely
    // needs an escape hatch, justify it there and raise this bound
    // consciously in the same commit.
    assert!(
        report.suppressions.is_empty(),
        "unexpected lint:allow escapes in the workspace: {:?}",
        report.suppressions
    );
}
