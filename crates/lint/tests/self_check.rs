//! The self-check gate: the real workspace must be clean under its own
//! linter, with zero escape hatches in effect.
//!
//! This test is what makes the rules *enforced* rather than aspirational:
//! it runs in plain `cargo test`, so a default-hasher map, an unjustified
//! `unsafe`, a wall-clock read in physics code, an unseeded RNG, or a new
//! crate without `#![forbid(unsafe_code)]` fails CI on every push.

use std::path::Path;

#[test]
fn workspace_is_clean_under_etherm_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );

    let report = etherm_lint::lint_workspace(root).expect("workspace scan failed");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The acceptance bar for this analyzer was "fix everything it flags,
    // allowlist nothing". One deliberate exception now exists: the serving
    // daemon's `SystemClock` is the single place wall time may enter the
    // process (uptime/latency metadata only, never physics or scheduling
    // decisions — see the `Clock` trait), and it carries exactly two
    // justified `wall-clock` suppressions. Anything beyond those two is a
    // regression; if a future change genuinely needs another escape hatch,
    // justify it there and widen this list consciously in the same commit.
    let unexpected: Vec<_> = report
        .suppressions
        .iter()
        .filter(|s| !(s.path == "crates/serve/src/clock.rs" && s.rule == "wall-clock"))
        .collect();
    assert!(
        unexpected.is_empty(),
        "unexpected lint:allow escapes in the workspace: {unexpected:?}"
    );
    let clock_allows = report.suppressions.len() - unexpected.len();
    assert!(
        clock_allows <= 2,
        "SystemClock grew extra wall-clock suppressions ({clock_allows}); \
         keep wall time confined to the two reads in `Clock`'s system impl"
    );
}
