//! Integration tests: quasi-Monte Carlo designs beat iid sampling on smooth
//! integrands (the property that justifies the A6 ablation).

use etherm_uq::dist::Distribution;
use etherm_uq::{
    run_monte_carlo, Halton, McOptions, MonteCarloSampler, Normal, SampleGenerator, Sobol,
    Uniform,
};

/// Integrates f(u) = Π (1 + (u_i − 1/2)/ (i+2)) over [0,1]^d (exact: 1).
fn integrate(gen: &mut dyn SampleGenerator, n: usize, d: usize) -> f64 {
    let u = Uniform::new(0.0, 1.0).unwrap();
    let dists: Vec<&dyn Distribution> = (0..d).map(|_| &u as &dyn Distribution).collect();
    let r = run_monte_carlo(gen, &dists, n, McOptions::default(), |_, x| {
        Ok::<_, std::convert::Infallible>(vec![x
            .iter()
            .enumerate()
            .map(|(i, &v)| 1.0 + (v - 0.5) / (i + 2) as f64)
            .product()])
    })
    .unwrap();
    r.means()[0]
}

#[test]
fn sobol_and_halton_beat_mc_on_smooth_integrand() {
    let d = 6;
    let n = 512;
    let mut mc_err = 0.0;
    for seed in 0..8 {
        let mut mc = MonteCarloSampler::new(seed);
        mc_err += (integrate(&mut mc, n, d) - 1.0).powi(2);
    }
    let mc_rms = (mc_err / 8.0).sqrt();
    let mut sobol = Sobol::new(0);
    let sobol_err = (integrate(&mut sobol, n, d) - 1.0).abs();
    let mut halton = Halton::default();
    let halton_err = (integrate(&mut halton, n, d) - 1.0).abs();
    assert!(
        sobol_err < 0.5 * mc_rms,
        "sobol {sobol_err} vs mc rms {mc_rms}"
    );
    assert!(
        halton_err < 0.7 * mc_rms,
        "halton {halton_err} vs mc rms {mc_rms}"
    );
}

#[test]
fn sobol_through_normal_quantile_matches_moments() {
    // Push Sobol points through N(0.17, 0.048) quantiles: sample moments
    // must converge to the distribution's.
    let normal = Normal::new(0.17, 0.048).unwrap();
    let mut sobol = Sobol::new(1); // skip the origin (quantile(0) = −∞ guard)
    let pts = sobol.generate(2047, 1);
    let xs: Vec<f64> = pts
        .iter()
        .map(|p| normal.quantile(p[0].clamp(1e-12, 1.0 - 1e-12)))
        .collect();
    let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
    let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    assert!((mean - 0.17).abs() < 1e-3, "mean {mean}");
    assert!((var.sqrt() - 0.048).abs() < 1e-3, "std {}", var.sqrt());
}
