//! Property-based tests for the UQ crate: chaos expansions, sparse grids
//! and variance-reduction estimators.

use etherm_uq::pce::hermite_orthonormal;
use etherm_uq::{antithetic, fit_projection_1d, MultiIndexSet, SparseGrid};
use proptest::prelude::*;

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

proptest! {
    #[test]
    fn hermite_three_term_recurrence(k in 1usize..12, x in -4.0f64..4.0) {
        // √(k+1)·ψ_{k+1}(x) = x·ψ_k(x) − √k·ψ_{k−1}(x).
        let lhs = ((k + 1) as f64).sqrt() * hermite_orthonormal(k + 1, x);
        let rhs = x * hermite_orthonormal(k, x) - (k as f64).sqrt() * hermite_orthonormal(k - 1, x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0), "k={k}, x={x}");
    }

    #[test]
    fn multi_index_count_is_binomial(d in 1usize..8, p in 0usize..5) {
        let set = MultiIndexSet::total_degree(d, p).unwrap();
        let want = binomial((d + p) as u64, p as u64) as usize;
        prop_assert_eq!(set.len(), want);
        // All indices respect the degree bound and are unique.
        let mut seen = std::collections::HashSet::new();
        for alpha in set.indices() {
            prop_assert!(alpha.iter().sum::<usize>() <= p);
            prop_assert!(seen.insert(alpha.clone()));
        }
    }

    #[test]
    fn projection_recovers_random_quadratics(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        c in -5.0f64..5.0,
    ) {
        // f(ξ) = a + bξ + cξ²: mean a + c, variance b² + 2c².
        let model = fit_projection_1d(|x| a + b * x + c * x * x, 2, 5).unwrap();
        prop_assert!((model.mean() - (a + c)).abs() < 1e-9);
        prop_assert!((model.variance() - (b * b + 2.0 * c * c)).abs() < 1e-8);
        // Surrogate reproduces the polynomial pointwise.
        for &x in &[-1.5, 0.0, 2.0] {
            prop_assert!((model.eval(&[x]) - (a + b * x + c * x * x)).abs() < 1e-8);
        }
    }

    #[test]
    fn sparse_grid_normalized_for_any_shape(d in 1usize..6, level in 1usize..5) {
        let g = SparseGrid::gauss_hermite(d, level).unwrap();
        let total: f64 = g.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // First and second moments are exact from level 2 on.
        if level >= 2 {
            for i in 0..d {
                prop_assert!(g.integrate(|x| x[i]).abs() < 1e-9);
            }
        }
        if level >= 3 {
            for i in 0..d {
                prop_assert!((g.integrate(|x| x[i] * x[i]) - 1.0).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn antithetic_exact_for_random_affine_functions(
        coeffs in proptest::collection::vec(-10.0f64..10.0, 1..5),
        offset in -10.0f64..10.0,
        seed in 0u64..1000,
    ) {
        let d = coeffs.len();
        let est = antithetic(
            |u| offset + u.iter().zip(&coeffs).map(|(ui, ci)| ci * ui).sum::<f64>(),
            d,
            20,
            seed,
        )
        .unwrap();
        // E[f] = offset + Σ cᵢ/2, reproduced with zero variance.
        let want = offset + coeffs.iter().sum::<f64>() / 2.0;
        prop_assert!((est.mean - want).abs() < 1e-9, "{} vs {want}", est.mean);
        prop_assert!(est.std_error < 1e-9);
    }
}
