//! Property-based tests for the surrogate error model: the cross-validated
//! estimate must bound the true error on every held-out seeded sample, and
//! rank-deficient designs must surface as structured errors, never panics.

use etherm_uq::{Surrogate, SurrogateOptions, UqError};
use proptest::prelude::*;

/// Degree-3 truth in two germ dimensions; the degree-2 fit cannot represent
/// the cubic terms, so residuals (and hence the error model) are exercised.
fn truth(c: &[f64; 6], xi: &[f64]) -> f64 {
    c[0] + c[1] * xi[0]
        + c[2] * xi[1]
        + c[3] * xi[0] * xi[1]
        + c[4] * xi[0].powi(3)
        + c[5] * xi[1].powi(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cv_estimate_bounds_true_error_on_heldout_samples(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 6),
        flat in proptest::collection::vec(-2.5f64..2.5, 2 * 36),
        holdout_every in 3usize..7,
    ) {
        let c: [f64; 6] = [coeffs[0], coeffs[1], coeffs[2], coeffs[3], coeffs[4], coeffs[5]];
        let xi: Vec<Vec<f64>> = flat.chunks(2).map(|p| p.to_vec()).collect();
        let y: Vec<f64> = xi.iter().map(|p| truth(&c, p)).collect();
        let opts = SurrogateOptions { degree: 2, holdout_every, safety: 1.0 };
        let s = match Surrogate::fit(&xi, &y, 2, opts) {
            Ok(s) => s,
            // A randomly collinear draw is legitimately rejected; the
            // property under test only concerns successful fits.
            Err(UqError::DegenerateDesign(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected fit error: {e}"))),
        };
        for (i, (p, &yi)) in xi.iter().zip(&y).enumerate() {
            if (i + 1) % holdout_every == 0 {
                let (pred, err) = s.predict_with_error(p);
                prop_assert!(
                    (pred - yi).abs() <= err,
                    "held-out residual {} above estimate {} at sample {i}",
                    (pred - yi).abs(),
                    err
                );
            }
        }
        // Larger safety factors only widen the estimate.
        let wide = Surrogate::fit(
            &xi,
            &y,
            2,
            SurrogateOptions { degree: 2, holdout_every, safety: 3.0 },
        );
        if let Ok(wide) = wide {
            prop_assert!(wide.cv_error() >= s.cv_error());
        }
    }

    #[test]
    fn rank_deficient_designs_return_structured_error(
        x0 in -2.0f64..2.0,
        x1 in -2.0f64..2.0,
        n in 10usize..40,
    ) {
        // All samples identical: rank-1 design for the 6-term degree-2 basis.
        let xi = vec![vec![x0, x1]; n];
        let y = vec![1.0; n];
        match Surrogate::fit(&xi, &y, 2, SurrogateOptions::default()) {
            Err(UqError::DegenerateDesign(_)) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected DegenerateDesign, got {other:?}"
                )))
            }
        }
    }

    #[test]
    fn frozen_germ_direction_is_degenerate(
        fixed in -1.0f64..1.0,
        vary in proptest::collection::vec(-2.0f64..2.0, 24),
    ) {
        // Dimension 1 never moves: its linear/quadratic basis columns are
        // collinear with the constant column.
        let xi: Vec<Vec<f64>> = vary.iter().map(|&v| vec![v, fixed]).collect();
        let y: Vec<f64> = vary.iter().map(|&v| 1.0 + v).collect();
        match Surrogate::fit(&xi, &y, 2, SurrogateOptions::default()) {
            Err(UqError::DegenerateDesign(_)) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected DegenerateDesign, got {other:?}"
                )))
            }
        }
    }
}
