//! Sampling designs on the unit hypercube.
//!
//! All designs emit points in `[0, 1)ᵈ`; the Monte Carlo driver pushes them
//! through distribution quantile functions (inversion sampling), so the
//! same simulation code runs under iid MC, Latin Hypercube or Halton QMC.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator of `n × d` designs on the unit hypercube.
pub trait SampleGenerator {
    /// Generates `n` points of dimension `d`, each component in `[0, 1)`.
    fn generate(&mut self, n: usize, d: usize) -> Vec<Vec<f64>>;

    /// Short human-readable name of the design (for reports).
    fn name(&self) -> &'static str;
}

/// Plain iid Monte Carlo sampling (the paper's method, §IV-C).
#[derive(Debug)]
pub struct MonteCarloSampler {
    rng: StdRng,
}

impl MonteCarloSampler {
    /// Creates a reproducible sampler from a seed.
    pub fn new(seed: u64) -> Self {
        MonteCarloSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SampleGenerator for MonteCarloSampler {
    fn generate(&mut self, n: usize, d: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| (0..d).map(|_| self.rng.gen::<f64>()).collect())
            .collect()
    }

    fn name(&self) -> &'static str {
        "monte-carlo"
    }
}

/// Latin Hypercube sampling: each of the `n` strata of each dimension is
/// hit exactly once, with random placement inside the stratum and
/// independent permutations per dimension.
#[derive(Debug)]
pub struct LatinHypercube {
    rng: StdRng,
}

impl LatinHypercube {
    /// Creates a reproducible LHS design generator from a seed.
    pub fn new(seed: u64) -> Self {
        LatinHypercube {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SampleGenerator for LatinHypercube {
    fn generate(&mut self, n: usize, d: usize) -> Vec<Vec<f64>> {
        let mut points = vec![vec![0.0; d]; n];
        for dim in 0..d {
            // Random permutation of strata.
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = self.rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            for (i, point) in points.iter_mut().enumerate() {
                let jitter: f64 = self.rng.gen();
                point[dim] = (perm[i] as f64 + jitter) / n as f64;
            }
        }
        points
    }

    fn name(&self) -> &'static str {
        "latin-hypercube"
    }
}

/// Halton low-discrepancy sequence (quasi-Monte Carlo) with one prime base
/// per dimension and an index offset to skip the correlated start.
#[derive(Debug, Clone)]
pub struct Halton {
    next_index: usize,
}

/// The first 16 primes — supports up to 16 input dimensions (the paper's
/// package has 12 wires).
const PRIMES: [usize; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

impl Halton {
    /// Creates a Halton generator starting at index 1 + `skip`.
    pub fn new(skip: usize) -> Self {
        Halton {
            next_index: 1 + skip,
        }
    }

    /// Radical inverse of `i` in base `b`.
    fn radical_inverse(mut i: usize, b: usize) -> f64 {
        let mut f = 1.0;
        let mut r = 0.0;
        let bf = b as f64;
        while i > 0 {
            f /= bf;
            r += f * (i % b) as f64;
            i /= b;
        }
        r
    }
}

impl Default for Halton {
    fn default() -> Self {
        // Skipping ~20 points avoids the strongly correlated prefix.
        Halton::new(20)
    }
}

impl SampleGenerator for Halton {
    fn generate(&mut self, n: usize, d: usize) -> Vec<Vec<f64>> {
        assert!(
            d <= PRIMES.len(),
            "Halton supports up to {} dimensions, requested {d}",
            PRIMES.len()
        );
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.next_index;
            self.next_index += 1;
            out.push(
                (0..d)
                    .map(|dim| Self::radical_inverse(i, PRIMES[dim]))
                    .collect(),
            );
        }
        out
    }

    fn name(&self) -> &'static str {
        "halton"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_unit_cube(points: &[Vec<f64>], d: usize) {
        for p in points {
            assert_eq!(p.len(), d);
            for &c in p {
                assert!((0.0..1.0).contains(&c), "component {c} outside [0,1)");
            }
        }
    }

    #[test]
    fn mc_reproducible_and_in_range() {
        let mut a = MonteCarloSampler::new(42);
        let mut b = MonteCarloSampler::new(42);
        let pa = a.generate(100, 3);
        let pb = b.generate(100, 3);
        assert_eq!(pa, pb);
        check_unit_cube(&pa, 3);
        assert_eq!(a.name(), "monte-carlo");
        // Different seed differs.
        let mut c = MonteCarloSampler::new(43);
        assert_ne!(pa, c.generate(100, 3));
    }

    #[test]
    fn lhs_stratification() {
        let mut lhs = LatinHypercube::new(7);
        let n = 50;
        let points = lhs.generate(n, 2);
        check_unit_cube(&points, 2);
        // Each stratum [k/n, (k+1)/n) contains exactly one sample per dim.
        for dim in 0..2 {
            let mut hits = vec![0usize; n];
            for p in &points {
                hits[(p[dim] * n as f64) as usize] += 1;
            }
            assert!(hits.iter().all(|&h| h == 1), "stratum hit counts {hits:?}");
        }
        assert_eq!(lhs.name(), "latin-hypercube");
    }

    #[test]
    fn halton_first_elements_base2_and_3() {
        let mut h = Halton::new(0); // start at index 1
        let p = h.generate(4, 2);
        // Base 2: 1/2, 1/4, 3/4, 1/8; base 3: 1/3, 2/3, 1/9, 4/9.
        let want2 = [0.5, 0.25, 0.75, 0.125];
        let want3 = [1.0 / 3.0, 2.0 / 3.0, 1.0 / 9.0, 4.0 / 9.0];
        for i in 0..4 {
            assert!((p[i][0] - want2[i]).abs() < 1e-15);
            assert!((p[i][1] - want3[i]).abs() < 1e-15);
        }
        assert_eq!(h.name(), "halton");
    }

    #[test]
    fn halton_is_sequential_across_calls() {
        let mut h1 = Halton::new(0);
        let a = h1.generate(3, 1);
        let b = h1.generate(3, 1);
        let mut h2 = Halton::new(0);
        let all = h2.generate(6, 1);
        assert_eq!(a[2][0], all[2][0]);
        assert_eq!(b[0][0], all[3][0]);
    }

    #[test]
    fn halton_low_discrepancy_beats_random_on_mean() {
        // The mean of f(u) = u over Halton points converges ~1/n, much
        // faster than 1/√n for MC.
        let n = 1000;
        let mut h = Halton::default();
        let hp = h.generate(n, 1);
        let h_mean: f64 = hp.iter().map(|p| p[0]).sum::<f64>() / n as f64;
        assert!((h_mean - 0.5).abs() < 2e-3, "halton mean {h_mean}");
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn halton_rejects_too_many_dims() {
        let mut h = Halton::default();
        let _ = h.generate(1, 17);
    }

    #[test]
    fn mc_mean_converges() {
        let mut mc = MonteCarloSampler::new(1);
        let n = 20_000;
        let pts = mc.generate(n, 1);
        let mean: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
    }
}
