//! Polynomial chaos expansion (PCE) for normally distributed inputs.
//!
//! The paper propagates the wire-elongation uncertainty by plain Monte Carlo
//! and remarks that "the application of other methods is straightforward"
//! (§IV-C). This module provides that alternative: a Wiener–Hermite
//! expansion of the quantity of interest
//!
//! ```text
//! f(ξ) ≈ Σ_α c_α Ψ_α(ξ),   ξ ~ N(0, I_d),
//! ```
//!
//! where `Ψ_α` are products of *orthonormal probabilists' Hermite*
//! polynomials. Because the germ is standard normal, the paper's elongation
//! `δ_j ~ N(µ, σ)` maps in as `δ_j = µ + σ ξ_j`.
//!
//! Three estimation paths are provided:
//!
//! * [`fit_projection_1d`] — spectral projection with Gauss–Hermite
//!   quadrature for a single random input (exponential convergence for
//!   smooth quantities of interest),
//! * [`fit_tensor_projection`] — tensor-grid projection for a few inputs,
//! * [`fit_regression`] — least-squares regression from arbitrary
//!   (sample, value) pairs, usable for the full 12-wire problem where a
//!   tensor grid would be infeasible.
//!
//! Mean, variance and Sobol' sensitivity indices then follow *analytically*
//! from the coefficients — no further sampling.

use crate::UqError;
use etherm_numerics::dense::DenseMatrix;
use etherm_numerics::quadrature::QuadratureRule;

/// Evaluates the orthonormal probabilists' Hermite polynomial `ψ_k(x)`,
/// satisfying `E[ψ_j(ξ) ψ_k(ξ)] = δ_jk` for `ξ ~ N(0, 1)`.
///
/// # Example
///
/// ```
/// use etherm_uq::pce::hermite_orthonormal;
///
/// // ψ₂(x) = (x² − 1)/√2.
/// let x = 1.7;
/// assert!((hermite_orthonormal(2, x) - (x * x - 1.0) / 2f64.sqrt()).abs() < 1e-12);
/// ```
pub fn hermite_orthonormal(k: usize, x: f64) -> f64 {
    // He_{j+1} = x He_j − j He_{j−1}; ψ_k = He_k / √(k!).
    let mut h_prev = 1.0;
    if k == 0 {
        return 1.0;
    }
    let mut h = x;
    for j in 1..k {
        let h_next = x * h - j as f64 * h_prev;
        h_prev = h;
        h = h_next;
    }
    let mut norm = 1.0;
    for j in 1..=k {
        norm *= j as f64;
    }
    h / norm.sqrt()
}

/// The set of multi-indices `α ∈ ℕᵈ` with total degree `|α| ≤ p`, in graded
/// lexicographic order (the zero index comes first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiIndexSet {
    dim: usize,
    degree: usize,
    indices: Vec<Vec<usize>>,
}

impl MultiIndexSet {
    /// Enumerates the total-degree set `{α : |α| ≤ p}` in `d` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`UqError::InvalidArgument`] if `d == 0`.
    pub fn total_degree(dim: usize, degree: usize) -> Result<Self, UqError> {
        if dim == 0 {
            return Err(UqError::InvalidArgument(
                "multi-index set needs dimension ≥ 1".into(),
            ));
        }
        let mut indices = Vec::new();
        for total in 0..=degree {
            let mut current = vec![0usize; dim];
            enumerate_compositions(total, 0, &mut current, &mut indices);
        }
        Ok(MultiIndexSet {
            dim,
            degree,
            indices,
        })
    }

    /// Input dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maximal total degree `p`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of basis terms, `C(d + p, p)`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The multi-indices in graded lexicographic order.
    pub fn indices(&self) -> &[Vec<usize>] {
        &self.indices
    }
}

/// Writes all compositions of `total` into `current[pos..]` (graded order).
fn enumerate_compositions(
    total: usize,
    pos: usize,
    current: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if pos + 1 == current.len() {
        current[pos] = total;
        out.push(current.clone());
        return;
    }
    for head in (0..=total).rev() {
        current[pos] = head;
        enumerate_compositions(total - head, pos + 1, current, out);
    }
    current[pos] = 0;
}

/// A fitted polynomial chaos surrogate `f(ξ) ≈ Σ_α c_α Ψ_α(ξ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PceModel {
    basis: MultiIndexSet,
    coeffs: Vec<f64>,
}

impl PceModel {
    /// Builds a model from a basis and matching coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`UqError::InvalidArgument`] on a length mismatch.
    pub fn from_coefficients(basis: MultiIndexSet, coeffs: Vec<f64>) -> Result<Self, UqError> {
        if coeffs.len() != basis.len() {
            return Err(UqError::InvalidArgument(format!(
                "coefficient count {} does not match basis size {}",
                coeffs.len(),
                basis.len()
            )));
        }
        Ok(PceModel { basis, coeffs })
    }

    /// The multi-index basis of the expansion.
    pub fn basis(&self) -> &MultiIndexSet {
        &self.basis
    }

    /// Expansion coefficients, aligned with [`MultiIndexSet::indices`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates the surrogate at germ coordinates `ξ`.
    ///
    /// # Panics
    ///
    /// Panics if `xi.len()` differs from the basis dimension.
    pub fn eval(&self, xi: &[f64]) -> f64 {
        assert_eq!(xi.len(), self.basis.dim, "PceModel::eval: dimension");
        self.basis
            .indices
            .iter()
            .zip(&self.coeffs)
            .map(|(alpha, &c)| c * eval_multivariate(alpha, xi))
            .sum()
    }

    /// Mean of the surrogate output: the zeroth coefficient.
    pub fn mean(&self) -> f64 {
        self.coeffs[0]
    }

    /// Variance of the surrogate output: `Σ_{α≠0} c_α²` (orthonormality).
    pub fn variance(&self) -> f64 {
        self.coeffs[1..].iter().map(|c| c * c).sum()
    }

    /// Standard deviation of the surrogate output.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// First-order Sobol' index of input `i`: the variance fraction carried
    /// by terms involving *only* `ξ_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sobol_first(&self, i: usize) -> f64 {
        assert!(i < self.basis.dim, "sobol_first: input index");
        let var = self.variance();
        if var == 0.0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (alpha, &c) in self.basis.indices.iter().zip(&self.coeffs) {
            let only_i = alpha[i] > 0
                && alpha
                    .iter()
                    .enumerate()
                    .all(|(j, &aj)| j == i || aj == 0);
            if only_i {
                sum += c * c;
            }
        }
        sum / var
    }

    /// Total Sobol' index of input `i`: the variance fraction of all terms
    /// in which `ξ_i` participates (including interactions).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sobol_total(&self, i: usize) -> f64 {
        assert!(i < self.basis.dim, "sobol_total: input index");
        let var = self.variance();
        if var == 0.0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (alpha, &c) in self.basis.indices.iter().zip(&self.coeffs) {
            if alpha[i] > 0 {
                sum += c * c;
            }
        }
        sum / var
    }
}

fn eval_multivariate(alpha: &[usize], xi: &[f64]) -> f64 {
    alpha
        .iter()
        .zip(xi)
        .map(|(&k, &x)| hermite_orthonormal(k, x))
        .product()
}

/// Fits a 1D PCE of degree `p` by spectral projection with an `n_quad`-point
/// Gauss–Hermite rule: `c_k = Σ_q w_q f(ξ_q) ψ_k(ξ_q)`.
///
/// `n_quad ≥ p + 1` is required so each coefficient is integrated exactly
/// for polynomial `f`.
///
/// # Errors
///
/// Returns [`UqError::InvalidArgument`] if `n_quad ≤ p` or the quadrature
/// rule cannot be constructed.
pub fn fit_projection_1d<F: FnMut(f64) -> f64>(
    mut f: F,
    degree: usize,
    n_quad: usize,
) -> Result<PceModel, UqError> {
    if n_quad <= degree {
        return Err(UqError::InvalidArgument(format!(
            "fit_projection_1d: need n_quad > degree (got {n_quad} ≤ {degree})"
        )));
    }
    let rule = QuadratureRule::gauss_hermite(n_quad)
        .map_err(|e| UqError::InvalidArgument(format!("gauss_hermite failed: {e}")))?;
    let basis = MultiIndexSet::total_degree(1, degree)?;
    let values: Vec<f64> = rule.nodes().iter().map(|&x| f(x)).collect();
    let mut coeffs = vec![0.0; basis.len()];
    for (ci, alpha) in coeffs.iter_mut().zip(basis.indices()) {
        let k = alpha[0];
        *ci = rule
            .nodes()
            .iter()
            .zip(rule.weights())
            .zip(&values)
            .map(|((&x, &w), &v)| w * v * hermite_orthonormal(k, x))
            .sum();
    }
    PceModel::from_coefficients(basis, coeffs)
}

/// Fits a `d`-dimensional PCE of total degree `p` by projection on the
/// tensor Gauss–Hermite grid with `n_quad` points per dimension.
///
/// The grid has `n_quad^d` points; the call is rejected above
/// `max_points` to protect against accidental combinatorial explosions
/// (use [`fit_regression`] for high-dimensional problems such as the
/// paper's 12 independent wire elongations).
///
/// # Errors
///
/// Returns [`UqError::InvalidArgument`] if `n_quad ≤ p`, the grid exceeds
/// `max_points`, or `d == 0`.
pub fn fit_tensor_projection<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    dim: usize,
    degree: usize,
    n_quad: usize,
    max_points: usize,
) -> Result<PceModel, UqError> {
    if n_quad <= degree {
        return Err(UqError::InvalidArgument(format!(
            "fit_tensor_projection: need n_quad > degree (got {n_quad} ≤ {degree})"
        )));
    }
    let total_points = (n_quad as u128).checked_pow(dim as u32).ok_or_else(|| {
        UqError::InvalidArgument("fit_tensor_projection: grid size overflow".into())
    })?;
    if total_points > max_points as u128 {
        return Err(UqError::InvalidArgument(format!(
            "fit_tensor_projection: tensor grid has {total_points} points (> {max_points}); \
             use fit_regression instead"
        )));
    }
    let rule = QuadratureRule::gauss_hermite(n_quad)
        .map_err(|e| UqError::InvalidArgument(format!("gauss_hermite failed: {e}")))?;
    let basis = MultiIndexSet::total_degree(dim, degree)?;
    let mut coeffs = vec![0.0; basis.len()];
    let mut point = vec![0.0; dim];
    let mut counter = vec![0usize; dim];
    loop {
        let mut weight = 1.0;
        for (j, &c) in counter.iter().enumerate() {
            point[j] = rule.nodes()[c];
            weight *= rule.weights()[c];
        }
        let value = f(&point);
        for (ci, alpha) in coeffs.iter_mut().zip(basis.indices()) {
            *ci += weight * value * eval_multivariate(alpha, &point);
        }
        // Odometer increment over the tensor grid.
        let mut j = 0;
        loop {
            if j == dim {
                return PceModel::from_coefficients(basis, coeffs);
            }
            counter[j] += 1;
            if counter[j] < n_quad {
                break;
            }
            counter[j] = 0;
            j += 1;
        }
    }
}

/// Fits a `d`-dimensional PCE of total degree `p` by projection on a
/// Smolyak sparse Gauss–Hermite grid of the given `level` (see
/// [`crate::sparse_grid::SparseGrid`]) — the middle ground between the
/// tensor grid (exact but exponential in `d`) and regression (cheap but
/// sampling-noisy). Choose `level ≥ degree + 1` so the coefficient
/// integrals of the retained basis are resolved.
///
/// # Errors
///
/// Returns [`UqError::InvalidArgument`] if `level ≤ degree` or the grid
/// cannot be built.
pub fn fit_sparse_projection<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    dim: usize,
    degree: usize,
    level: usize,
) -> Result<PceModel, UqError> {
    if level <= degree {
        return Err(UqError::InvalidArgument(format!(
            "fit_sparse_projection: need level > degree (got {level} ≤ {degree})"
        )));
    }
    let grid = crate::sparse_grid::SparseGrid::gauss_hermite(dim, level)?;
    let basis = MultiIndexSet::total_degree(dim, degree)?;
    let values: Vec<f64> = grid.points().iter().map(|x| f(x)).collect();
    let mut coeffs = vec![0.0; basis.len()];
    for ((x, &w), &v) in grid.points().iter().zip(grid.weights()).zip(&values) {
        for (ci, alpha) in coeffs.iter_mut().zip(basis.indices()) {
            *ci += w * v * eval_multivariate(alpha, x);
        }
    }
    PceModel::from_coefficients(basis, coeffs)
}

/// Fits a PCE of total degree `p` by least-squares regression from germ
/// samples `xi` (each of dimension `d`, standard normal) and observed
/// responses `y`.
///
/// Solves the normal equations `(AᵀA) c = Aᵀ y` with a dense Cholesky
/// factorization; a mild Tikhonov term `λ = 1e-12·tr(AᵀA)/m` keeps the
/// system positive definite for nearly collinear designs.
///
/// # Errors
///
/// Returns [`UqError::InvalidArgument`] if fewer samples than basis terms
/// are supplied, lengths mismatch, or the normal equations cannot be
/// factorized.
pub fn fit_regression(
    xi: &[Vec<f64>],
    y: &[f64],
    dim: usize,
    degree: usize,
) -> Result<PceModel, UqError> {
    let basis = regression_basis(xi, y, dim, degree, "fit_regression")?;
    let m = basis.len();
    let (mut ata, aty) = assemble_normal_equations(xi, y, &basis);
    // Regularize with a mild ridge before factorizing.
    let trace: f64 = (0..m).map(|j| ata[j * m + j]).sum();
    let lambda = 1e-12 * trace / m as f64;
    for j in 0..m {
        ata[j * m + j] += lambda;
    }
    let rows: Vec<&[f64]> = (0..m).map(|j| &ata[j * m..(j + 1) * m]).collect();
    let gram = DenseMatrix::from_rows(&rows)
        .map_err(|e| UqError::InvalidArgument(format!("normal-equation assembly failed: {e}")))?;
    let chol = gram.cholesky().map_err(|e| {
        UqError::InvalidArgument(format!("normal equations not positive definite: {e}"))
    })?;
    let coeffs = chol.solve(&aty);
    PceModel::from_coefficients(basis, coeffs)
}

/// Fits a PCE of total degree `p` by **strict** least-squares regression:
/// no ridge term is added, and a rank-deficient design is reported as
/// [`UqError::DegenerateDesign`] instead of being silently smoothed over.
///
/// The normal equations are equilibrated to unit diagonal and factorized by
/// a Cholesky with an explicit pivot tolerance, so designs whose samples do
/// not determine every basis term (too few *distinct* points, a germ
/// direction that is never excited, duplicated rows) fail loudly. This is
/// the fit behind [`crate::surrogate::Surrogate`], whose cross-validated
/// error model assumes an un-ridged least-squares solution.
///
/// # Errors
///
/// [`UqError::InvalidArgument`] on shape mismatches (as for
/// [`fit_regression`]); [`UqError::DegenerateDesign`] when the design is
/// numerically rank deficient.
pub fn fit_regression_strict(
    xi: &[Vec<f64>],
    y: &[f64],
    dim: usize,
    degree: usize,
) -> Result<PceModel, UqError> {
    let basis = regression_basis(xi, y, dim, degree, "fit_regression_strict")?;
    let m = basis.len();
    let n = xi.len();
    let (mut ata, mut aty) = assemble_normal_equations(xi, y, &basis);

    // Equilibrate to unit diagonal so a single pivot tolerance covers all
    // basis-term scales.
    let mut scale = vec![0.0; m];
    for (j, sj) in scale.iter_mut().enumerate() {
        let d = ata[j * m + j];
        if !d.is_finite() || d <= 0.0 {
            return Err(UqError::DegenerateDesign(format!(
                "basis term {j} has no energy on the design ({n} samples, diagonal {d:.3e})"
            )));
        }
        *sj = d.sqrt();
    }
    for j in 0..m {
        for k in 0..m {
            ata[j * m + k] /= scale[j] * scale[k];
        }
        aty[j] /= scale[j];
    }

    // In-place lower Cholesky with a rank tolerance on the scaled pivots.
    const RANK_TOL: f64 = 1e-8;
    let mut l = vec![0.0; m * m];
    for j in 0..m {
        for i in j..m {
            let mut s = ata[i * m + j];
            for k in 0..j {
                s -= l[i * m + k] * l[j * m + k];
            }
            if i == j {
                if s.is_nan() || s <= RANK_TOL {
                    return Err(UqError::DegenerateDesign(format!(
                        "design is numerically rank deficient at basis term {j} \
                         (scaled pivot {s:.3e} ≤ {RANK_TOL:.0e}; {n} samples, {m} terms)"
                    )));
                }
                l[i * m + j] = s.sqrt();
            } else {
                l[i * m + j] = s / l[j * m + j];
            }
        }
    }

    // Forward/backward substitution, then undo the equilibration.
    let mut c = aty;
    for i in 0..m {
        let mut s = c[i];
        for k in 0..i {
            s -= l[i * m + k] * c[k];
        }
        c[i] = s / l[i * m + i];
    }
    for i in (0..m).rev() {
        let mut s = c[i];
        for k in i + 1..m {
            s -= l[k * m + i] * c[k];
        }
        c[i] = s / l[i * m + i];
    }
    for (cj, sj) in c.iter_mut().zip(&scale) {
        *cj /= sj;
    }
    PceModel::from_coefficients(basis, c)
}

fn regression_basis(
    xi: &[Vec<f64>],
    y: &[f64],
    dim: usize,
    degree: usize,
    caller: &str,
) -> Result<MultiIndexSet, UqError> {
    if xi.len() != y.len() {
        return Err(UqError::InvalidArgument(format!(
            "{caller}: {} samples but {} responses",
            xi.len(),
            y.len()
        )));
    }
    let basis = MultiIndexSet::total_degree(dim, degree)?;
    let m = basis.len();
    let n = xi.len();
    if n < m {
        return Err(UqError::InvalidArgument(format!(
            "{caller}: need at least {m} samples for {m} basis terms (got {n})"
        )));
    }
    if let Some(bad) = xi.iter().find(|row| row.len() != dim) {
        return Err(UqError::InvalidArgument(format!(
            "{caller}: sample of dimension {} (expected {dim})",
            bad.len()
        )));
    }
    Ok(basis)
}

/// Accumulates `AᵀA` (m×m, symmetric, both triangles filled) and `Aᵀy` (m)
/// row by row; the design matrix `A` itself is never stored.
fn assemble_normal_equations(
    xi: &[Vec<f64>],
    y: &[f64],
    basis: &MultiIndexSet,
) -> (Vec<f64>, Vec<f64>) {
    let m = basis.len();
    let mut ata = vec![0.0; m * m];
    let mut aty = vec![0.0; m];
    let mut row = vec![0.0; m];
    for (sample, &yi) in xi.iter().zip(y) {
        for (rj, alpha) in row.iter_mut().zip(basis.indices()) {
            *rj = eval_multivariate(alpha, sample);
        }
        for j in 0..m {
            aty[j] += row[j] * yi;
            for k in j..m {
                ata[j * m + k] += row[j] * row[k];
            }
        }
    }
    for j in 0..m {
        for k in 0..j {
            ata[j * m + k] = ata[k * m + j];
        }
    }
    (ata, aty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hermite_first_polynomials_match_closed_forms() {
        for &x in &[-2.3, -0.5, 0.0, 0.7, 1.9] {
            assert_eq!(hermite_orthonormal(0, x), 1.0);
            assert!((hermite_orthonormal(1, x) - x).abs() < 1e-14);
            assert!((hermite_orthonormal(2, x) - (x * x - 1.0) / 2f64.sqrt()).abs() < 1e-13);
            assert!(
                (hermite_orthonormal(3, x) - (x.powi(3) - 3.0 * x) / 6f64.sqrt()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn hermite_orthonormality_under_gauss_hermite() {
        let rule = QuadratureRule::gauss_hermite(24).unwrap();
        for j in 0..=6 {
            for k in 0..=6 {
                let ip = rule.integrate(|x| hermite_orthonormal(j, x) * hermite_orthonormal(k, x));
                let want = if j == k { 1.0 } else { 0.0 };
                assert!((ip - want).abs() < 1e-9, "<ψ{j}, ψ{k}> = {ip}");
            }
        }
    }

    #[test]
    fn multi_index_counts_match_binomial() {
        // |{α : |α| ≤ p}| = C(d+p, p).
        let cases = [(1, 4, 5), (2, 3, 10), (3, 2, 10), (12, 2, 91)];
        for (d, p, want) in cases {
            let set = MultiIndexSet::total_degree(d, p).unwrap();
            assert_eq!(set.len(), want, "d={d}, p={p}");
            assert_eq!(set.indices()[0], vec![0; d], "zero index first");
            assert!(!set.is_empty());
            assert_eq!(set.dim(), d);
            assert_eq!(set.degree(), p);
        }
        assert!(MultiIndexSet::total_degree(0, 2).is_err());
    }

    #[test]
    fn projection_recovers_cubic_exactly() {
        // x³ = √6 ψ₃ + 3 ψ₁ → mean 0, variance 9 + 6 = 15.
        let model = fit_projection_1d(|x| x.powi(3), 3, 6).unwrap();
        let c = model.coefficients();
        assert!(c[0].abs() < 1e-12);
        assert!((c[1] - 3.0).abs() < 1e-12);
        assert!(c[2].abs() < 1e-12);
        assert!((c[3] - 6f64.sqrt()).abs() < 1e-12);
        assert!((model.mean()).abs() < 1e-12);
        assert!((model.variance() - 15.0).abs() < 1e-10);
        // The surrogate reproduces the cubic pointwise.
        for &x in &[-1.5, 0.0, 0.3, 2.0] {
            assert!((model.eval(&[x]) - x.powi(3)).abs() < 1e-10);
        }
    }

    #[test]
    fn projection_converges_exponentially_for_exp() {
        // f(ξ) = exp(σξ): mean e^{σ²/2}, variance e^{σ²}(e^{σ²} − 1).
        let sigma: f64 = 0.3;
        let exact_mean = (sigma * sigma / 2.0).exp();
        let exact_var = (sigma * sigma).exp() * ((sigma * sigma).exp() - 1.0);
        let mut prev_err = f64::INFINITY;
        for degree in [1, 3, 5, 7] {
            let model = fit_projection_1d(|x| (sigma * x).exp(), degree, 32).unwrap();
            let err = (model.mean() - exact_mean).abs() + (model.variance() - exact_var).abs();
            assert!(err < prev_err || err < 1e-12, "degree {degree}: {err}");
            prev_err = err;
        }
        assert!(prev_err < 1e-9, "final error {prev_err}");
    }

    #[test]
    fn tensor_projection_recovers_bivariate_polynomial() {
        // f = 2 + 3ξ₁ + ξ₂² = 2 + 3ψ₁⁽¹⁾ + √2 ψ₂⁽²⁾ + 1 → mean 3, var 9 + 2.
        let model =
            fit_tensor_projection(|xi| 2.0 + 3.0 * xi[0] + xi[1] * xi[1], 2, 2, 4, 10_000)
                .unwrap();
        assert!((model.mean() - 3.0).abs() < 1e-11);
        assert!((model.variance() - 11.0).abs() < 1e-10);
        // Sobol: ξ₁ carries 9/11, ξ₂ carries 2/11, no interactions.
        assert!((model.sobol_first(0) - 9.0 / 11.0).abs() < 1e-10);
        assert!((model.sobol_first(1) - 2.0 / 11.0).abs() < 1e-10);
        assert!((model.sobol_total(0) - 9.0 / 11.0).abs() < 1e-10);
        assert!((model.sobol_total(1) - 2.0 / 11.0).abs() < 1e-10);
    }

    #[test]
    fn tensor_projection_guards_grid_size() {
        let err = fit_tensor_projection(|_| 0.0, 12, 2, 3, 100_000);
        assert!(err.is_err(), "3^12 grid must be rejected");
    }

    #[test]
    fn interaction_terms_show_in_total_indices() {
        // f = ξ₁ ξ₂: variance 1, no first-order effects, all interaction.
        let model = fit_tensor_projection(|xi| xi[0] * xi[1], 2, 2, 4, 10_000).unwrap();
        assert!((model.variance() - 1.0).abs() < 1e-10);
        assert!(model.sobol_first(0).abs() < 1e-10);
        assert!(model.sobol_first(1).abs() < 1e-10);
        assert!((model.sobol_total(0) - 1.0).abs() < 1e-10);
        assert!((model.sobol_total(1) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sparse_projection_matches_tensor_projection() {
        // Smooth trivariate QoI: both projections must agree closely.
        let f = |xi: &[f64]| (0.3 * xi[0] + 0.2 * xi[1] - 0.1 * xi[2]).exp();
        let tensor = fit_tensor_projection(f, 3, 2, 6, 10_000).unwrap();
        let sparse = fit_sparse_projection(f, 3, 2, 5).unwrap();
        assert!(
            (tensor.mean() - sparse.mean()).abs() < 1e-4,
            "means {} vs {}",
            tensor.mean(),
            sparse.mean()
        );
        assert!(
            (tensor.std_dev() - sparse.std_dev()).abs() < 1e-3,
            "stds {} vs {}",
            tensor.std_dev(),
            sparse.std_dev()
        );
    }

    #[test]
    fn sparse_projection_recovers_quadratic_exactly() {
        let f = |xi: &[f64]| 1.0 + 2.0 * xi[0] + xi[1] * xi[1];
        let model = fit_sparse_projection(f, 2, 2, 3).unwrap();
        assert!((model.mean() - 2.0).abs() < 1e-10, "mean {}", model.mean());
        // Var = 4 + 2 (ψ₂ coefficient √2 squared).
        assert!(
            (model.variance() - 6.0).abs() < 1e-9,
            "var {}",
            model.variance()
        );
        assert!(fit_sparse_projection(|_: &[f64]| 0.0, 2, 3, 3).is_err());
    }

    #[test]
    fn regression_recovers_polynomial_from_samples() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 400;
        let dim = 3;
        let xi: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| sample_normal(&mut rng)).collect())
            .collect();
        let truth = |x: &[f64]| 1.0 + 2.0 * x[0] - x[1] + 0.5 * x[2] * x[2];
        let y: Vec<f64> = xi.iter().map(|x| truth(x)).collect();
        let model = fit_regression(&xi, &y, dim, 2).unwrap();
        // Exact representation: mean = 1 + 0.5, variance = 4 + 1 + 0.25·2.
        assert!((model.mean() - 1.5).abs() < 1e-8, "mean {}", model.mean());
        assert!(
            (model.variance() - 5.5).abs() < 1e-7,
            "var {}",
            model.variance()
        );
        for x in xi.iter().take(10) {
            assert!((model.eval(x) - truth(x)).abs() < 1e-7);
        }
    }

    #[test]
    fn regression_rejects_underdetermined_fits() {
        let xi = vec![vec![0.0, 0.0]; 3];
        let y = vec![0.0; 3];
        assert!(fit_regression(&xi, &y, 2, 2).is_err());
        // Mismatched lengths and dimensions.
        assert!(fit_regression(&xi, &[0.0; 2], 2, 0).is_err());
        let bad = vec![vec![0.0]; 5];
        assert!(fit_regression(&bad, &[0.0; 5], 2, 1).is_err());
    }

    #[test]
    fn model_validation() {
        let basis = MultiIndexSet::total_degree(1, 1).unwrap();
        assert!(PceModel::from_coefficients(basis.clone(), vec![1.0]).is_err());
        let model = PceModel::from_coefficients(basis, vec![2.0, 0.0]).unwrap();
        assert_eq!(model.mean(), 2.0);
        assert_eq!(model.variance(), 0.0);
        assert_eq!(model.sobol_first(0), 0.0);
        assert_eq!(model.sobol_total(0), 0.0);
        assert_eq!(model.basis().dim(), 1);
    }

    #[test]
    fn projection_argument_validation() {
        assert!(fit_projection_1d(|x| x, 3, 3).is_err());
        assert!(fit_tensor_projection(|_: &[f64]| 0.0, 2, 3, 3, 10_000).is_err());
    }

    /// Box–Muller on a plain RNG (avoids depending on rand_distr in tests).
    fn sample_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}
