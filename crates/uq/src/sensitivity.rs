//! Global sensitivity measures: correlation/SRC screening and
//! variance-based Sobol' indices.
//!
//! The paper motivates the study as a *global sensitivity* analysis of the
//! wire temperatures w.r.t. the geometric parameters. For the (nearly
//! linear) length→temperature map, Pearson correlation coefficients and
//! standardized regression coefficients (SRC) between the sampled inputs
//! and outputs are the appropriate cheap estimators on top of the existing
//! Monte Carlo sample set. For nonlinear responses, [`sobol_saltelli`]
//! estimates first-order and total Sobol' indices by the Saltelli
//! pick-freeze design, and [`crate::pce::PceModel`] yields the same indices
//! analytically from a chaos surrogate.

/// Pearson correlation coefficient between two equally long samples.
///
/// Returns 0 for degenerate (constant) inputs.
///
/// # Panics
///
/// Panics if lengths differ or fewer than two samples are given.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    assert!(x.len() >= 2, "pearson: need at least two samples");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

/// Standardized regression coefficients of a linear surrogate
/// `y ≈ β₀ + Σ βᵢ xᵢ`, rescaled by `std(xᵢ)/std(y)`.
///
/// `inputs[k]` is the k-th sample's input vector. Solved via the normal
/// equations (inputs are few — the paper has 12).
///
/// Returns one SRC per input dimension; their squares approximately sum to
/// the coefficient of determination `R²` for independent inputs.
///
/// # Panics
///
/// Panics on inconsistent dimensions, on a singular normal matrix (e.g.
/// perfectly collinear inputs), or when there are fewer samples than
/// regression unknowns (`n ≤ d + 1`), which would make the surrogate
/// underdetermined and the coefficients meaningless.
pub fn standardized_regression_coefficients(inputs: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    assert_eq!(inputs.len(), y.len(), "src: sample count mismatch");
    assert!(inputs.len() >= 2, "src: need at least two samples");
    let d = inputs[0].len();
    assert!(inputs.iter().all(|x| x.len() == d), "src: ragged inputs");
    assert!(
        inputs.len() > d + 1,
        "src: need more than {} samples for {} inputs (got {})",
        d + 1,
        d,
        inputs.len()
    );
    let n = inputs.len();

    // Build the (d+1)×(d+1) normal equations for [1, x].
    let mut ata = vec![vec![0.0f64; d + 1]; d + 1];
    let mut atb = vec![0.0f64; d + 1];
    for (x, &yi) in inputs.iter().zip(y) {
        let mut row = Vec::with_capacity(d + 1);
        row.push(1.0);
        row.extend_from_slice(x);
        for i in 0..=d {
            for j in 0..=d {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * yi;
        }
    }
    let rows: Vec<&[f64]> = ata.iter().map(|r| r.as_slice()).collect();
    let a = etherm_numerics::dense::DenseMatrix::from_rows(&rows).expect("square system");
    let beta = a.solve(&atb).expect("normal equations solvable");

    // Standardize.
    let my = y.iter().sum::<f64>() / n as f64;
    let sy = (y.iter().map(|v| (v - my).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt();
    (0..d)
        .map(|i| {
            let mx = inputs.iter().map(|x| x[i]).sum::<f64>() / n as f64;
            let sx = (inputs.iter().map(|x| (x[i] - mx).powi(2)).sum::<f64>()
                / (n - 1) as f64)
                .sqrt();
            if sy == 0.0 {
                0.0
            } else {
                beta[i + 1] * sx / sy
            }
        })
        .collect()
}

/// First-order (`s_first`) and total (`s_total`) Sobol' indices per input.
#[derive(Debug, Clone, PartialEq)]
pub struct SobolIndices {
    /// First-order indices `S_i = Var(E[Y|X_i]) / Var(Y)`.
    pub s_first: Vec<f64>,
    /// Total indices `S_Ti = 1 − Var(E[Y|X_∼i]) / Var(Y)`.
    pub s_total: Vec<f64>,
    /// Sample variance of the response over the combined design.
    pub variance: f64,
    /// Number of model evaluations spent: `n (d + 2)`.
    pub evaluations: usize,
}

/// Estimates Sobol' sensitivity indices by the Saltelli pick-freeze scheme.
///
/// `f` maps a point of the unit hypercube `[0,1)ᵈ` to the scalar quantity of
/// interest (quantile transforms to physical inputs happen inside `f`, like
/// in [`crate::montecarlo`]). Two independent `n × d` designs `A` and `B`
/// are drawn; for each input `i` the hybrid matrix `AB_i` (columns of `A`
/// with column `i` from `B`) is evaluated, giving the Jansen estimators
///
/// ```text
/// S_i  = 1 − Σ (f(B) − f(AB_i))² / (2n V̂),
/// S_Ti =     Σ (f(A) − f(AB_i))² / (2n V̂).
/// ```
///
/// Cost: `n (d + 2)` model evaluations.
///
/// # Errors
///
/// Returns [`crate::UqError::InvalidArgument`] if `n < 8`, `dim == 0`, or the
/// response is (numerically) constant.
pub fn sobol_saltelli<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    dim: usize,
    n: usize,
    seed: u64,
) -> Result<SobolIndices, crate::UqError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    if dim == 0 || n < 8 {
        return Err(crate::UqError::InvalidArgument(format!(
            "sobol_saltelli: need dim ≥ 1 and n ≥ 8 (got {dim}, {n})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let draw = |rng: &mut StdRng| -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect()
    };
    let a = draw(&mut rng);
    let b = draw(&mut rng);
    let fa: Vec<f64> = a.iter().map(|x| f(x)).collect();
    let fb: Vec<f64> = b.iter().map(|x| f(x)).collect();

    // Total variance over the pooled A ∪ B evaluations.
    let pooled: Vec<f64> = fa.iter().chain(&fb).copied().collect();
    let mean = pooled.iter().sum::<f64>() / pooled.len() as f64;
    let variance =
        pooled.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (pooled.len() - 1) as f64;
    if variance <= f64::EPSILON * mean.abs().max(1.0) {
        return Err(crate::UqError::InvalidArgument(
            "sobol_saltelli: response variance is zero".into(),
        ));
    }

    let mut s_first = vec![0.0; dim];
    let mut s_total = vec![0.0; dim];
    let mut hybrid = vec![0.0; dim];
    for i in 0..dim {
        let mut num_first = 0.0;
        let mut num_total = 0.0;
        for k in 0..n {
            hybrid.copy_from_slice(&a[k]);
            hybrid[i] = b[k][i];
            let fab = f(&hybrid);
            num_first += (fb[k] - fab) * (fb[k] - fab);
            num_total += (fa[k] - fab) * (fa[k] - fab);
        }
        s_first[i] = 1.0 - num_first / (2.0 * n as f64 * variance);
        s_total[i] = num_total / (2.0 * n as f64 * variance);
    }
    Ok(SobolIndices {
        s_first,
        s_total,
        variance,
        evaluations: n * (dim + 2),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yneg = [-2.0, -4.0, -6.0, -8.0];
        assert!((pearson(&x, &yneg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn pearson_uncorrelated() {
        // x symmetric, y = x²: Pearson correlation is zero by symmetry.
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        assert!(pearson(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn src_recovers_linear_model() {
        // y = 3x₀ − 2x₁ + 5 with deterministic inputs.
        let inputs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, ((i * 3) % 5) as f64])
            .collect();
        let y: Vec<f64> = inputs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 5.0).collect();
        let src = standardized_regression_coefficients(&inputs, &y);
        // Exact linear model: SRC² sums to 1 (R² = 1) and signs match.
        assert!(src[0] > 0.0 && src[1] < 0.0);
        let r2: f64 = src.iter().map(|s| s * s).sum();
        // Inputs are slightly correlated so allow tolerance.
        assert!((r2 - 1.0).abs() < 0.2, "R² from SRC = {r2}");
    }

    #[test]
    #[should_panic(expected = "need more than")]
    fn src_rejects_underdetermined_regression() {
        let inputs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64; 8]).collect();
        let y = vec![0.0; 5];
        let _ = standardized_regression_coefficients(&inputs, &y);
    }

    #[test]
    fn saltelli_recovers_additive_model_indices() {
        // Y = 4 U₁ + 2 U₂ (uniform inputs): Var = 16/12 + 4/12,
        // S₁ = 0.8, S₂ = 0.2, no interactions so S_T = S.
        let f = |u: &[f64]| 4.0 * u[0] + 2.0 * u[1];
        let ind = sobol_saltelli(f, 2, 4096, 42).unwrap();
        assert!((ind.s_first[0] - 0.8).abs() < 0.05, "{:?}", ind.s_first);
        assert!((ind.s_first[1] - 0.2).abs() < 0.05, "{:?}", ind.s_first);
        assert!((ind.s_total[0] - 0.8).abs() < 0.05, "{:?}", ind.s_total);
        assert!((ind.s_total[1] - 0.2).abs() < 0.05, "{:?}", ind.s_total);
        assert!((ind.variance - 20.0 / 12.0).abs() < 0.1);
        assert_eq!(ind.evaluations, 4096 * 4);
    }

    #[test]
    fn saltelli_detects_pure_interaction() {
        // Y = (U₁ − ½)(U₂ − ½): all variance is interaction, so first-order
        // indices ≈ 0 while totals ≈ 1.
        let f = |u: &[f64]| (u[0] - 0.5) * (u[1] - 0.5);
        let ind = sobol_saltelli(f, 2, 8192, 7).unwrap();
        assert!(ind.s_first[0].abs() < 0.05, "{:?}", ind.s_first);
        assert!(ind.s_first[1].abs() < 0.05, "{:?}", ind.s_first);
        assert!((ind.s_total[0] - 1.0).abs() < 0.1, "{:?}", ind.s_total);
        assert!((ind.s_total[1] - 1.0).abs() < 0.1, "{:?}", ind.s_total);
    }

    #[test]
    fn saltelli_inert_input_has_zero_indices() {
        let f = |u: &[f64]| u[0].powi(2);
        let ind = sobol_saltelli(f, 3, 4096, 3).unwrap();
        assert!((ind.s_total[1]).abs() < 0.02);
        assert!((ind.s_total[2]).abs() < 0.02);
        assert!(ind.s_total[0] > 0.9);
    }

    #[test]
    fn saltelli_validation() {
        assert!(sobol_saltelli(|_| 0.0, 0, 100, 1).is_err());
        assert!(sobol_saltelli(|_| 0.0, 2, 4, 1).is_err());
        // Constant response.
        assert!(sobol_saltelli(|_| 5.0, 2, 64, 1).is_err());
    }

    #[test]
    fn src_larger_influence_larger_coefficient() {
        let inputs: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                vec![
                    ((i * 13) % 17) as f64 / 17.0,
                    ((i * 7) % 19) as f64 / 19.0,
                    ((i * 11) % 23) as f64 / 23.0,
                ]
            })
            .collect();
        let y: Vec<f64> = inputs
            .iter()
            .map(|x| 10.0 * x[0] + 1.0 * x[1] + 0.1 * x[2])
            .collect();
        let src = standardized_regression_coefficients(&inputs, &y);
        assert!(src[0].abs() > src[1].abs());
        assert!(src[1].abs() > src[2].abs());
    }
}
