//! Statistics: running moments, histograms, normal fits, goodness of fit.

use crate::dist::Distribution;

/// Numerically stable running mean/variance (Welford's algorithm) with
/// min/max tracking.
///
/// # Example
///
/// ```
/// use etherm_uq::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.sample_std() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (ddof = 0).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (ddof = 1; 0 with fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation (ddof = 1).
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum seen (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum seen (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Monte Carlo standard error `σ/√M` of the mean estimate (paper Eq. 6).
    pub fn mc_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fits a normal distribution by moment matching: returns
/// `(mean, sample_std)` (ddof = 1) — exactly what the paper does with its 12
/// measured elongations to obtain `N(0.17, 0.048)`.
///
/// # Panics
///
/// Panics with fewer than two samples.
pub fn fit_normal(samples: &[f64]) -> (f64, f64) {
    assert!(samples.len() >= 2, "fit_normal needs at least 2 samples");
    let mut s = RunningStats::new();
    for &x in samples {
        s.push(x);
    }
    (s.mean(), s.sample_std())
}

/// A uniform-bin histogram with probability-density normalization.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    n_total: usize,
    n_outside: usize,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `hi ≤ lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            n_total: 0,
            n_outside: 0,
        }
    }

    /// Histogram spanning the sample range with the given bin count.
    ///
    /// # Panics
    ///
    /// Panics on empty input or degenerate range.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "histogram from empty samples");
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let pad = ((hi - lo) * 1e-9).max(1e-12);
        let mut h = Histogram::new(lo, hi + pad, bins);
        for &x in samples {
            h.add(x);
        }
        h
    }

    /// Adds a sample (values outside the range are counted separately).
    pub fn add(&mut self, x: f64) {
        self.n_total += 1;
        if x < self.lo || x >= self.hi {
            self.n_outside += 1;
            return;
        }
        let f = (x - self.lo) / (self.hi - self.lo);
        let b = ((f * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[b] += 1;
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.counts.len()
    }

    /// Total samples added (including out-of-range ones).
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Samples that fell outside the range.
    pub fn n_outside(&self) -> usize {
        self.n_outside
    }

    /// Raw count of bin `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn count(&self, b: usize) -> usize {
        self.counts[b]
    }

    /// Center coordinate of bin `b`.
    pub fn bin_center(&self, b: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (b as f64 + 0.5) * w
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Probability-density value of bin `b` (so the histogram integrates to
    /// the in-range fraction).
    pub fn density(&self, b: usize) -> f64 {
        if self.n_total == 0 {
            return 0.0;
        }
        self.counts[b] as f64 / (self.n_total as f64 * self.bin_width())
    }

    /// All `(center, density)` pairs.
    pub fn densities(&self) -> Vec<(f64, f64)> {
        (0..self.n_bins())
            .map(|b| (self.bin_center(b), self.density(b)))
            .collect()
    }
}

/// Kolmogorov–Smirnov statistic `D = sup |F_n(x) − F(x)|` of samples against
/// a reference distribution.
///
/// # Panics
///
/// Panics on empty input.
pub fn ks_statistic<D: Distribution + ?Sized>(samples: &[f64], dist: &D) -> f64 {
    assert!(!samples.is_empty(), "ks_statistic on empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let fn_hi = (i + 1) as f64 / n;
        let fn_lo = i as f64 / n;
        d = d.max((fn_hi - f).abs()).max((f - fn_lo).abs());
    }
    d
}

/// Asymptotic Kolmogorov p-value `P(D > d)` via the Kolmogorov distribution
/// `Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}` with the small-sample Stephens
/// correction.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    if d <= 0.0 {
        return 1.0;
    }
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    let mut p = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64 * lambda).powi(2)).exp();
        p += if k % 2 == 1 { 2.0 * term } else { -2.0 * term };
        if term < 1e-16 {
            break;
        }
    }
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Normal, Uniform};

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.count(), 100);
        assert!(s.min() <= s.max());
    }

    #[test]
    fn empty_and_single_sample() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.mc_error(), 0.0);
        let mut s1 = RunningStats::new();
        s1.push(5.0);
        assert_eq!(s1.mean(), 5.0);
        assert_eq!(s1.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 3.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        // Merging empty is a no-op.
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn mc_error_scaling() {
        // error = σ/√M.
        let mut s = RunningStats::new();
        for i in 0..400 {
            s.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let sigma = s.sample_std();
        assert!((s.mc_error() - sigma / 20.0).abs() < 1e-12);
    }

    #[test]
    fn fit_normal_recovers_parameters() {
        let n = Normal::new(0.17, 0.048).unwrap();
        // Deterministic stratified "samples" via quantiles.
        let samples: Vec<f64> = (0..500)
            .map(|i| n.quantile((i as f64 + 0.5) / 500.0))
            .collect();
        let (mu, sigma) = fit_normal(&samples);
        assert!((mu - 0.17).abs() < 1e-3);
        assert!((sigma - 0.048).abs() < 1e-3);
    }

    #[test]
    fn histogram_counts_and_density() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for &x in &[0.1, 0.3, 0.35, 0.8, -0.5, 1.5] {
            h.add(x);
        }
        assert_eq!(h.n_total(), 6);
        assert_eq!(h.n_outside(), 2);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.bin_width(), 0.25);
        assert_eq!(h.bin_center(0), 0.125);
        // Density integrates to in-range fraction 4/6.
        let integral: f64 = (0..4).map(|b| h.density(b) * h.bin_width()).sum();
        assert!((integral - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_from_samples_covers_range() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let h = Histogram::from_samples(&xs, 3);
        assert_eq!(h.n_outside(), 0);
        assert_eq!(h.n_total(), 4);
        let pairs = h.densities();
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn ks_accepts_correct_distribution() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let samples: Vec<f64> = (0..200)
            .map(|i| n.quantile((i as f64 + 0.5) / 200.0))
            .collect();
        let d = ks_statistic(&samples, &n);
        assert!(d < 0.01, "D = {d}");
        assert!(ks_p_value(d, 200) > 0.9);
    }

    #[test]
    fn ks_rejects_wrong_distribution() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        let n = Normal::new(0.0, 1.0).unwrap();
        let samples: Vec<f64> = (0..200)
            .map(|i| u.quantile((i as f64 + 0.5) / 200.0))
            .collect();
        let d = ks_statistic(&samples, &n);
        assert!(d > 0.3, "D = {d}");
        assert!(ks_p_value(d, 200) < 1e-6);
    }

    #[test]
    fn ks_p_value_edge_cases() {
        assert_eq!(ks_p_value(0.0, 10), 1.0);
        assert!(ks_p_value(0.9, 100) < 1e-10);
    }
}
