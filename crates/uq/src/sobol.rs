//! Sobol' low-discrepancy sequence (digital (t, s)-sequence in base 2).
//!
//! Gray-code implementation with embedded direction numbers for up to 16
//! dimensions (enough for the paper's 12 wires). The per-dimension
//! initial numbers `m_i` are odd and satisfy `m_i < 2^i`, which guarantees
//! each one-dimensional projection is a (0,1)-sequence: every prefix of
//! `2^k` points hits each dyadic interval of length `2^{−k}` exactly once —
//! a property the tests verify directly.

use crate::sampling::SampleGenerator;

/// Primitive-polynomial data per dimension: `(degree s, encoded
/// coefficients a, initial direction numbers m)` (Joe & Kuo style).
/// Dimension 0 is the van-der-Corput sequence (all m = 1).
const POLY: [(u32, u32, [u32; 6]); 16] = [
    (0, 0, [1, 1, 1, 1, 1, 1]), // dim 0: special-cased
    (1, 0, [1, 0, 0, 0, 0, 0]),
    (2, 1, [1, 3, 0, 0, 0, 0]),
    (3, 1, [1, 3, 1, 0, 0, 0]),
    (3, 2, [1, 1, 1, 0, 0, 0]),
    (4, 1, [1, 1, 3, 3, 0, 0]),
    (4, 4, [1, 3, 5, 13, 0, 0]),
    (5, 2, [1, 1, 5, 5, 17, 0]),
    (5, 4, [1, 1, 5, 5, 5, 0]),
    (5, 7, [1, 1, 7, 11, 19, 0]),
    (5, 11, [1, 1, 5, 1, 1, 0]),
    (5, 13, [1, 1, 1, 3, 11, 0]),
    (5, 14, [1, 3, 5, 5, 31, 0]),
    (6, 1, [1, 3, 3, 9, 7, 49]),
    (6, 13, [1, 1, 1, 15, 21, 21]),
    (6, 16, [1, 3, 1, 13, 27, 49]),
];

/// Number of bits of the generated integers.
const BITS: usize = 52;

/// The Sobol' sequence generator.
///
/// # Example
///
/// ```
/// use etherm_uq::sampling::SampleGenerator;
/// use etherm_uq::sobol::Sobol;
///
/// let mut s = Sobol::new(1); // skip the origin point
/// let pts = s.generate(4, 2);
/// // First dimension is the van-der-Corput sequence 1/2, 3/4, 1/4, ...
/// assert!((pts[0][0] - 0.5).abs() < 1e-15);
/// ```
#[derive(Debug, Clone)]
pub struct Sobol {
    /// Index of the next point (Gray-code recursion state per dimension).
    index: u64,
    /// Current integer state per dimension (lazily initialized).
    state: Vec<u64>,
    /// Direction numbers per dimension (computed on first use).
    directions: Vec<[u64; BITS]>,
    /// Points to skip at the start (burn-in).
    skip: usize,
}

impl Sobol {
    /// Creates a Sobol generator skipping the first `skip` points.
    pub fn new(skip: usize) -> Self {
        Sobol {
            index: 0,
            state: Vec::new(),
            directions: Vec::new(),
            skip,
        }
    }

    /// Maximum supported dimension.
    pub const MAX_DIM: usize = POLY.len();

    fn ensure_dims(&mut self, d: usize) {
        assert!(
            d <= Self::MAX_DIM,
            "Sobol supports up to {} dimensions, requested {d}",
            Self::MAX_DIM
        );
        while self.directions.len() < d {
            let dim = self.directions.len();
            self.directions.push(Self::direction_numbers(dim));
            self.state.push(0);
        }
    }

    /// Computes the 52 direction numbers of dimension `dim`.
    fn direction_numbers(dim: usize) -> [u64; BITS] {
        let mut v = [0u64; BITS];
        if dim == 0 {
            for (i, vi) in v.iter_mut().enumerate() {
                *vi = 1u64 << (BITS - 1 - i);
            }
            return v;
        }
        let (s, a, m) = POLY[dim];
        let s = s as usize;
        // Seed with the initial m values.
        let mut mm = [0u64; BITS];
        for i in 0..s {
            mm[i] = m[i] as u64;
        }
        // Recurrence: m_k = 2·a₁·m_{k−1} ⊕ 2²·a₂·m_{k−2} ⊕ … ⊕ 2^s·m_{k−s} ⊕ m_{k−s}.
        for k in s..BITS {
            let mut val = mm[k - s] ^ (mm[k - s] << s);
            for j in 1..s {
                let bit = (a >> (s - 1 - j)) & 1;
                if bit == 1 {
                    val ^= mm[k - j] << j;
                }
            }
            mm[k] = val;
        }
        for (i, vi) in v.iter_mut().enumerate() {
            *vi = mm[i] << (BITS - 1 - i);
        }
        v
    }

    /// Next raw point of dimension `d`. Point 0 is the origin, as in the
    /// standard Sobol' construction — required for the dyadic
    /// stratification property of every `2^k` prefix.
    fn next_point(&mut self, d: usize) -> Vec<f64> {
        self.ensure_dims(d);
        let scale = 1.0 / (1u64 << BITS) as f64;
        let point: Vec<f64> = (0..d).map(|dim| self.state[dim] as f64 * scale).collect();
        // Gray-code update towards the next point: flip the direction of
        // the lowest zero bit of the current index.
        let c = (self.index).trailing_ones() as usize;
        self.index += 1;
        for dim in 0..self.state.len() {
            self.state[dim] ^= self.directions[dim][c.min(BITS - 1)];
        }
        point
    }
}

impl Default for Sobol {
    fn default() -> Self {
        Sobol::new(0)
    }
}

impl SampleGenerator for Sobol {
    fn generate(&mut self, n: usize, d: usize) -> Vec<Vec<f64>> {
        self.ensure_dims(d);
        while self.skip > 0 {
            let _ = self.next_point(d);
            self.skip -= 1;
        }
        (0..n).map(|_| self.next_point(d)).collect()
    }

    fn name(&self) -> &'static str {
        "sobol"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_dimension_is_van_der_corput() {
        let mut s = Sobol::new(0);
        let pts = s.generate(8, 1);
        let want = [0.0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125];
        for (p, w) in pts.iter().zip(want) {
            assert!((p[0] - w).abs() < 1e-15, "{} vs {w}", p[0]);
        }
    }

    #[test]
    fn one_dimensional_projections_are_stratified() {
        // Every dimension: the first 2^k points hit each dyadic bin once.
        for d in 1..=Sobol::MAX_DIM {
            let mut s = Sobol::new(0);
            let n = 64;
            let pts = s.generate(n, d);
            for dim in 0..d {
                let mut hits = vec![0usize; n];
                for p in &pts {
                    let bin = (p[dim] * n as f64) as usize;
                    hits[bin.min(n - 1)] += 1;
                }
                assert!(
                    hits.iter().all(|&h| h == 1),
                    "dim {dim} of {d} not stratified: {hits:?}"
                );
            }
        }
    }

    #[test]
    fn pairwise_mean_converges_fast() {
        // E[u_i] = 1/2 per dimension with O(log n / n) error.
        let mut s = Sobol::new(0);
        let n = 1024;
        let d = 12;
        let pts = s.generate(n, d);
        for dim in 0..d {
            let mean: f64 = pts.iter().map(|p| p[dim]).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 0.01, "dim {dim}: mean {mean}");
        }
    }

    #[test]
    fn skip_advances_the_sequence() {
        let mut a = Sobol::new(3);
        let mut b = Sobol::new(0);
        let _ = b.generate(3, 2);
        assert_eq!(a.generate(2, 2), b.generate(2, 2));
    }

    #[test]
    fn sequence_continues_across_calls() {
        let mut a = Sobol::new(0);
        let first = a.generate(4, 3);
        let second = a.generate(4, 3);
        let mut b = Sobol::new(0);
        let all = b.generate(8, 3);
        assert_eq!(first[3], all[3]);
        assert_eq!(second[0], all[4]);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn too_many_dimensions_panics() {
        let mut s = Sobol::new(0);
        let _ = s.generate(1, 17);
    }

    #[test]
    fn values_in_unit_interval() {
        let mut s = Sobol::new(0);
        for p in s.generate(500, 8) {
            for &c in &p {
                assert!((0.0..1.0).contains(&c));
            }
        }
    }
}
