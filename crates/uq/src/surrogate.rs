//! Error-controlled PCE surrogate: a strict regression fit plus a
//! cross-validated error model, the building block of the microsecond
//! QoI-serving tier.
//!
//! A [`Surrogate`] wraps one scalar QoI: it is fitted from germ samples
//! `ξ ~ N(0, I)` and observed responses by [`crate::pce::fit_regression_strict`]
//! on a deterministic training split, and calibrates an error model from the
//! held-out residuals:
//!
//! ```text
//! err(ξ) = safety · max_heldout |y − ŷ| · max(1, max_j |ξ_j| / b_j)^(p+1)
//! ```
//!
//! where `b_j` is the largest `|ξ_j|` seen in the design and `p` the PCE
//! degree. Inside the training hull the estimate is the (safety-inflated)
//! worst held-out residual; outside it grows at the rate of the first
//! untracked polynomial order, so extrapolation is flagged rather than
//! silently served. By construction every held-out residual is bounded by
//! the estimate at its own sample (`safety ≥ 1`, inflation `≥ 1`), which is
//! the property the consumer tier relies on when it serves a prediction
//! whose `err(ξ)` is within tolerance and falls back to the full solver
//! otherwise.
//!
//! The surrogate retains its training data so fallback points can be folded
//! back in with [`Surrogate::refit_with`] (active-learning refinement): the
//! model, split and error calibration are rebuilt deterministically from the
//! extended design.

use crate::error::UqError;
use crate::pce::{fit_regression_strict, PceModel};

/// Minimum design half-width used by the inflation factor, so a germ
/// direction with a pathologically narrow design does not blow up the
/// estimate through a division by ~0.
const MIN_DESIGN_BOUND: f64 = 1e-6;

/// Knobs for [`Surrogate::fit`].
#[derive(Debug, Clone)]
pub struct SurrogateOptions {
    /// Total degree of the PCE basis.
    pub degree: usize,
    /// Every `holdout_every`-th sample is held out of the regression and
    /// used to calibrate the error model (must be ≥ 2; 5 holds out 20 %).
    pub holdout_every: usize,
    /// Multiplier on the worst held-out residual (must be ≥ 1).
    pub safety: f64,
}

impl Default for SurrogateOptions {
    fn default() -> Self {
        SurrogateOptions {
            degree: 2,
            holdout_every: 5,
            safety: 2.0,
        }
    }
}

/// A fitted per-QoI surrogate with a cross-validated error model.
#[derive(Debug, Clone)]
pub struct Surrogate {
    model: PceModel,
    /// `safety × max |held-out residual|` — the error estimate inside the
    /// training hull.
    cv_error: f64,
    /// Per-dimension design bounds `b_j = max_i |ξ_i[j]|`.
    design_bounds: Vec<f64>,
    options: SurrogateOptions,
    xi: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl Surrogate {
    /// Fits a surrogate from germ samples `xi` (standard-normal space) and
    /// responses `y`, splitting off every `holdout_every`-th sample for
    /// error calibration. The split is deterministic, so identical inputs
    /// produce a bit-identical surrogate.
    ///
    /// # Errors
    ///
    /// [`UqError::InvalidArgument`] on shape/option problems (including too
    /// few samples for the basis plus at least one held-out point, or
    /// non-finite responses); [`UqError::DegenerateDesign`] when the
    /// training design is numerically rank deficient.
    pub fn fit(
        xi: &[Vec<f64>],
        y: &[f64],
        dim: usize,
        options: SurrogateOptions,
    ) -> Result<Self, UqError> {
        Self::fit_owned(xi.to_vec(), y.to_vec(), dim, options)
    }

    fn fit_owned(
        xi: Vec<Vec<f64>>,
        y: Vec<f64>,
        dim: usize,
        options: SurrogateOptions,
    ) -> Result<Self, UqError> {
        if options.holdout_every < 2 {
            return Err(UqError::InvalidArgument(format!(
                "Surrogate::fit: holdout_every must be ≥ 2 (got {})",
                options.holdout_every
            )));
        }
        if !options.safety.is_finite() || options.safety < 1.0 {
            return Err(UqError::InvalidArgument(format!(
                "Surrogate::fit: safety must be ≥ 1 (got {})",
                options.safety
            )));
        }
        if xi.len() != y.len() {
            return Err(UqError::InvalidArgument(format!(
                "Surrogate::fit: {} samples but {} responses",
                xi.len(),
                y.len()
            )));
        }
        if xi.len() < options.holdout_every {
            return Err(UqError::InvalidArgument(format!(
                "Surrogate::fit: need at least holdout_every = {} samples for a \
                 non-empty held-out set (got {})",
                options.holdout_every,
                xi.len()
            )));
        }
        if let Some(bad) = y.iter().find(|v| !v.is_finite()) {
            return Err(UqError::InvalidArgument(format!(
                "Surrogate::fit: non-finite response {bad}"
            )));
        }

        let mut train_xi = Vec::with_capacity(xi.len());
        let mut train_y = Vec::with_capacity(y.len());
        let mut held = Vec::new();
        for (i, (sample, &yi)) in xi.iter().zip(&y).enumerate() {
            if (i + 1) % options.holdout_every == 0 {
                held.push((sample.clone(), yi));
            } else {
                train_xi.push(sample.clone());
                train_y.push(yi);
            }
        }
        let model = fit_regression_strict(&train_xi, &train_y, dim, options.degree)?;

        let mut worst = 0.0f64;
        for (sample, yi) in &held {
            worst = worst.max((yi - model.eval(sample)).abs());
        }
        let cv_error = options.safety * worst;

        let mut design_bounds = vec![MIN_DESIGN_BOUND; dim];
        for sample in &xi {
            for (b, &v) in design_bounds.iter_mut().zip(sample) {
                *b = b.max(v.abs());
            }
        }

        Ok(Surrogate {
            model,
            cv_error,
            design_bounds,
            options,
            xi,
            y,
        })
    }

    /// Evaluates the surrogate at germ point `xi`.
    pub fn predict(&self, xi: &[f64]) -> f64 {
        self.model.eval(xi)
    }

    /// The error estimate at germ point `xi`: the cross-validated bound
    /// inflated by `max(1, max_j |ξ_j|/b_j)^(degree+1)` outside the training
    /// design.
    pub fn error_estimate(&self, xi: &[f64]) -> f64 {
        self.cv_error * self.inflation(xi)
    }

    /// Prediction and error estimate in one call.
    pub fn predict_with_error(&self, xi: &[f64]) -> (f64, f64) {
        (self.predict(xi), self.error_estimate(xi))
    }

    fn inflation(&self, xi: &[f64]) -> f64 {
        let mut rho = 1.0f64;
        for (&v, &b) in xi.iter().zip(&self.design_bounds) {
            rho = rho.max(v.abs() / b);
        }
        rho.powi(self.options.degree as i32 + 1)
    }

    /// Folds additional (germ, response) pairs into the design and refits
    /// model, split and error calibration from scratch — the active-learning
    /// refinement step. On error the surrogate is left unchanged.
    ///
    /// # Errors
    ///
    /// As for [`Surrogate::fit`] on the extended design.
    pub fn refit_with(&mut self, xi_extra: &[Vec<f64>], y_extra: &[f64]) -> Result<(), UqError> {
        if xi_extra.len() != y_extra.len() {
            return Err(UqError::InvalidArgument(format!(
                "Surrogate::refit_with: {} samples but {} responses",
                xi_extra.len(),
                y_extra.len()
            )));
        }
        let mut xi = self.xi.clone();
        let mut y = self.y.clone();
        xi.extend(xi_extra.iter().cloned());
        y.extend_from_slice(y_extra);
        let dim = self.design_bounds.len();
        let refit = Self::fit_owned(xi, y, dim, self.options.clone())?;
        *self = refit;
        Ok(())
    }

    /// The fitted PCE (moments, Sobol' indices, coefficients).
    pub fn model(&self) -> &PceModel {
        &self.model
    }

    /// `safety × max |held-out residual|` — the error estimate inside the
    /// training design.
    pub fn cv_error(&self) -> f64 {
        self.cv_error
    }

    /// Per-dimension design bounds `b_j = max_i |ξ_i[j]|`.
    pub fn design_bounds(&self) -> &[f64] {
        &self.design_bounds
    }

    /// Germ dimension.
    pub fn dim(&self) -> usize {
        self.design_bounds.len()
    }

    /// Number of samples in the current design (training + held out).
    pub fn n_samples(&self) -> usize {
        self.xi.len()
    }

    /// The fit options this surrogate was built with.
    pub fn options(&self) -> &SurrogateOptions {
        &self.options
    }

    /// The retained design: germ samples and responses, in insertion order.
    pub fn design(&self) -> (&[Vec<f64>], &[f64]) {
        (&self.xi, &self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A degree-2 polynomial in 2 germ dimensions, exactly representable.
    fn truth(xi: &[f64]) -> f64 {
        1.5 + 0.7 * xi[0] - 1.2 * xi[1] + 0.3 * xi[0] * xi[1] + 0.9 * xi[0] * xi[0]
    }

    /// Small deterministic low-discrepancy-ish design on [-2, 2]^2.
    fn design(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = ((i * 7 + 3) % 17) as f64 / 16.0;
                let b = ((i * 5 + 1) % 13) as f64 / 12.0;
                vec![4.0 * a - 2.0, 4.0 * b - 2.0]
            })
            .collect()
    }

    #[test]
    fn recovers_polynomial_and_reports_tiny_cv_error() {
        let xi = design(24);
        let y: Vec<f64> = xi.iter().map(|p| truth(p)).collect();
        let s = Surrogate::fit(&xi, &y, 2, SurrogateOptions::default()).expect("fit");
        assert!(s.cv_error() < 1e-9, "cv_error = {}", s.cv_error());
        for p in &design(9) {
            assert!((s.predict(p) - truth(p)).abs() < 1e-9);
        }
        assert_eq!(s.dim(), 2);
        assert_eq!(s.n_samples(), 24);
    }

    #[test]
    fn heldout_residuals_bounded_by_error_estimate() {
        // Truth has a cubic term the degree-2 basis cannot represent, so
        // held-out residuals are nonzero; the calibrated estimate must bound
        // every one of them by construction.
        let xi = design(30);
        let y: Vec<f64> = xi.iter().map(|p| truth(p) + 0.05 * p[0].powi(3)).collect();
        let opts = SurrogateOptions::default();
        let k = opts.holdout_every;
        let s = Surrogate::fit(&xi, &y, 2, opts).expect("fit");
        assert!(s.cv_error() > 0.0);
        let mut checked = 0;
        for (i, (p, &yi)) in xi.iter().zip(&y).enumerate() {
            if (i + 1) % k == 0 {
                let (pred, err) = s.predict_with_error(p);
                assert!((pred - yi).abs() <= err, "held-out residual above estimate");
                checked += 1;
            }
        }
        assert_eq!(checked, 30 / k);
    }

    #[test]
    fn inflation_grows_outside_design_bounds() {
        let xi = design(24);
        let y: Vec<f64> = xi.iter().map(|p| truth(p) + 0.05 * p[0].powi(3)).collect();
        let s = Surrogate::fit(&xi, &y, 2, SurrogateOptions::default()).expect("fit");
        let inside = s.error_estimate(&[0.0, 0.0]);
        let outside = s.error_estimate(&[6.0, 0.0]);
        assert_eq!(inside, s.cv_error());
        assert!(outside > 3.0 * inside, "inside {inside}, outside {outside}");
    }

    #[test]
    fn degenerate_design_is_structured_error() {
        // Every sample identical: rank-1 design for a 6-term basis.
        let xi = vec![vec![0.5, -0.25]; 40];
        let y = vec![1.0; 40];
        match Surrogate::fit(&xi, &y, 2, SurrogateOptions::default()) {
            Err(UqError::DegenerateDesign(msg)) => {
                assert!(msg.contains("rank deficient") || msg.contains("no energy"));
            }
            other => panic!("expected DegenerateDesign, got {other:?}"),
        }
    }

    #[test]
    fn refit_extends_design_deterministically() {
        let xi = design(24);
        let y: Vec<f64> = xi.iter().map(|p| truth(p)).collect();
        let mut s = Surrogate::fit(&xi, &y, 2, SurrogateOptions::default()).expect("fit");
        let extra = design(32);
        let extra = &extra[24..];
        let ye: Vec<f64> = extra.iter().map(|p| truth(p)).collect();
        s.refit_with(extra, &ye).expect("refit");
        assert_eq!(s.n_samples(), 32);

        // A one-shot fit over the concatenated design is bit-identical.
        let mut all = xi.clone();
        all.extend(extra.iter().cloned());
        let mut all_y = y.clone();
        all_y.extend_from_slice(&ye);
        let direct = Surrogate::fit(&all, &all_y, 2, SurrogateOptions::default()).expect("fit");
        assert_eq!(
            format!("{:?}", s.model().coefficients()),
            format!("{:?}", direct.model().coefficients())
        );
        assert_eq!(s.cv_error().to_bits(), direct.cv_error().to_bits());
    }

    #[test]
    fn invalid_options_are_rejected() {
        let xi = design(24);
        let y = vec![0.0; 24];
        let bad = SurrogateOptions {
            holdout_every: 1,
            ..SurrogateOptions::default()
        };
        assert!(Surrogate::fit(&xi, &y, 2, bad).is_err());
        let bad = SurrogateOptions {
            safety: 0.5,
            ..SurrogateOptions::default()
        };
        assert!(Surrogate::fit(&xi, &y, 2, bad).is_err());
        let nan_y: Vec<f64> = (0..24).map(|i| if i == 7 { f64::NAN } else { 0.0 }).collect();
        assert!(Surrogate::fit(&xi, &nan_y, 2, SurrogateOptions::default()).is_err());
        assert!(Surrogate::fit(&xi[..3], &y[..3], 2, SurrogateOptions::default()).is_err());
    }
}
