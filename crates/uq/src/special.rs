//! Special functions for Gaussian statistics, implemented from scratch.

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// Error function `erf(x)` to near machine precision.
///
/// Uses the Maclaurin series `erf(x) = 2/√π · Σ (−1)ⁿ x^{2n+1}/(n!(2n+1))`
/// for `|x| < 3` (converges quickly there) and the Legendre continued
/// fraction of `erfc` for larger arguments, giving ≲ 10⁻¹⁴ relative error
/// across the real line.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    if x >= 3.0 {
        return 1.0 - erfc_large(x);
    }
    // Series: term_{n} = (−1)ⁿ x^{2n+1}/(n!(2n+1)).
    let x2 = x * x;
    let mut term = x; // n = 0: x
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-17 * sum.abs() {
            break;
        }
    }
    (2.0 / PI.sqrt() * sum).clamp(-1.0, 1.0)
}

/// `erfc(x)` for `x ≥ 3` via the Legendre continued fraction
/// `erfc(x) = e^{−x²}/√π · 1/(x + ½/(x + 1/(x + 3⁄2/(x + 2/(x + …)))))`,
/// evaluated by backward recurrence.
fn erfc_large(x: f64) -> f64 {
    if x > 27.0 {
        return 0.0; // e^{−729} underflows f64 anyway
    }
    let mut cf = 0.0f64;
    for k in (1..=80).rev() {
        cf = 0.5 * k as f64 / (x + cf);
    }
    (-x * x).exp() / PI.sqrt() / (x + cf)
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal probability density `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * FRAC_1_SQRT_2)
}

/// Inverse standard normal CDF `Φ⁻¹(p)` (Acklam's algorithm, |ε| < 1.2e-9,
/// plus one Newton polish step → close to machine precision).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile: p = {p} outside (0, 1)");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Newton polish: x ← x − (Φ(x) − p)/φ(x).
    let e = normal_cdf(x) - p;
    x - e / normal_pdf(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values (Abramowitz & Stegun tables).
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {}", erf(x));
            assert!((erf(-x) + want).abs() < 2e-7);
        }
        assert_eq!(erf(10.0), 1.0);
    }

    #[test]
    fn erfc_complement() {
        for x in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn cdf_symmetry_and_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.1586552539).abs() < 1e-6);
        assert!((normal_cdf(1.959963985) - 0.975).abs() < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-9,
                "Φ(Φ⁻¹({p})) = {}",
                normal_cdf(x)
            );
        }
        assert!((normal_quantile(0.975) - 1.959963985).abs() < 1e-6);
        assert!(normal_quantile(0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn quantile_rejects_bad_p() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn pdf_properties() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((normal_pdf(1.0) - normal_pdf(-1.0)).abs() < 1e-15);
        // Coarse quadrature of the pdf ≈ 1.
        let n = 4000;
        let mut s = 0.0;
        for i in 0..n {
            let x = -8.0 + 16.0 * (i as f64 + 0.5) / n as f64;
            s += normal_pdf(x) * 16.0 / n as f64;
        }
        assert!((s - 1.0).abs() < 1e-6);
    }
}
