//! Univariate probability distributions.

use crate::special::{normal_cdf, normal_pdf, normal_quantile};
use std::f64::consts::PI;

/// A univariate distribution defined through its quantile function, so that
/// any uniform design (iid Monte Carlo, Latin Hypercube, Halton) transforms
/// into it by inversion sampling.
///
/// `Send + Sync` is a supertrait so `Box<dyn Distribution>` marginals can
/// cross thread boundaries — ensemble workers and the serving front end
/// both hold trained surrogates (which own their marginals) behind shared
/// state. Implementations are plain parameter structs, so the bound costs
/// nothing.
pub trait Distribution: Send + Sync {
    /// Quantile (inverse CDF) at `u ∈ (0, 1)`.
    fn quantile(&self, u: f64) -> f64;

    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Standard deviation of the distribution.
    fn std_dev(&self) -> f64;

    /// Isoprobabilistic transform from standard-normal space:
    /// `x = F⁻¹(Φ(z))`. This is the per-marginal map the rare-event
    /// reliability engine samples in — subset simulation runs its Markov
    /// chains on `z` and pushes each state through this transform before
    /// the model evaluation. The default goes through [`Distribution::cdf`]
    /// / [`Distribution::quantile`]; distributions with a closed form
    /// (e.g. [`Normal`]) override it exactly.
    // Not a constructor: `from` here is the transform's domain, symmetric
    // with `to_std_normal`.
    #[allow(clippy::wrong_self_convention)]
    fn from_std_normal(&self, z: f64) -> f64 {
        self.quantile(normal_cdf(z).clamp(f64::MIN_POSITIVE, 1.0 - 1e-16))
    }

    /// Inverse of [`Distribution::from_std_normal`]: `z = Φ⁻¹(F(x))`.
    fn to_std_normal(&self, x: f64) -> f64 {
        normal_quantile(self.cdf(x).clamp(f64::MIN_POSITIVE, 1.0 - 1e-16))
    }
}

/// Normal distribution `N(µ, σ²)`.
///
/// The paper identifies `δ ~ N(µ = 0.17, σ = 0.048)` for the relative wire
/// elongation (Fig. 5).
///
/// # Example
///
/// ```
/// use etherm_uq::{Distribution, Normal};
///
/// let delta = Normal::new(0.17, 0.048).unwrap();
/// assert!((delta.cdf(0.17) - 0.5).abs() < 1e-12);
/// assert!((delta.quantile(0.5) - 0.17).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mu, sigma²)`.
    ///
    /// # Errors
    ///
    /// Returns an error string if `sigma` is not positive/finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, String> {
        if !(sigma > 0.0 && sigma.is_finite() && mu.is_finite()) {
            return Err(format!("invalid normal parameters mu={mu}, sigma={sigma}"));
        }
        Ok(Normal { mu, sigma })
    }

    /// Mean parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for Normal {
    fn quantile(&self, u: f64) -> f64 {
        self.mu + self.sigma * normal_quantile(u)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_std_normal(&self, z: f64) -> f64 {
        self.mu + self.sigma * z
    }

    fn to_std_normal(&self, x: f64) -> f64 {
        (x - self.mu) / self.sigma
    }

    fn pdf(&self, x: f64) -> f64 {
        normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mu) / self.sigma)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn std_dev(&self) -> f64 {
        self.sigma
    }
}

/// Uniform distribution on `[a, b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Creates `U[a, b]`.
    ///
    /// # Errors
    ///
    /// Returns an error string if `b ≤ a` or bounds are not finite.
    pub fn new(a: f64, b: f64) -> Result<Self, String> {
        if !(a.is_finite() && b.is_finite() && b > a) {
            return Err(format!("invalid uniform bounds [{a}, {b}]"));
        }
        Ok(Uniform { a, b })
    }
}

impl Distribution for Uniform {
    fn quantile(&self, u: f64) -> f64 {
        self.a + u * (self.b - self.a)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x >= self.a && x <= self.b {
            1.0 / (self.b - self.a)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / (self.b - self.a)).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn std_dev(&self) -> f64 {
        (self.b - self.a) / 12f64.sqrt()
    }
}

/// Log-normal distribution: `ln X ~ N(µ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu_log: f64,
    sigma_log: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-space parameters.
    ///
    /// # Errors
    ///
    /// Returns an error string for invalid parameters.
    pub fn new(mu_log: f64, sigma_log: f64) -> Result<Self, String> {
        if !(sigma_log > 0.0 && sigma_log.is_finite() && mu_log.is_finite()) {
            return Err(format!(
                "invalid lognormal parameters mu={mu_log}, sigma={sigma_log}"
            ));
        }
        Ok(LogNormal { mu_log, sigma_log })
    }
}

impl Distribution for LogNormal {
    fn quantile(&self, u: f64) -> f64 {
        (self.mu_log + self.sigma_log * normal_quantile(u)).exp()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu_log) / self.sigma_log;
        (-0.5 * z * z).exp() / (x * self.sigma_log * (2.0 * PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        normal_cdf((x.ln() - self.mu_log) / self.sigma_log)
    }

    fn mean(&self) -> f64 {
        (self.mu_log + 0.5 * self.sigma_log * self.sigma_log).exp()
    }

    fn std_dev(&self) -> f64 {
        let s2 = self.sigma_log * self.sigma_log;
        ((s2.exp() - 1.0) * (2.0 * self.mu_log + s2).exp()).sqrt()
    }
}

/// Normal distribution truncated to `[lo, hi]` (by CDF inversion).
///
/// Used to keep sampled relative elongations `δ` inside a physical range
/// (`δ < 1` — a wire cannot be infinitely long).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    base: Normal,
    lo: f64,
    hi: f64,
    cdf_lo: f64,
    cdf_hi: f64,
}

impl TruncatedNormal {
    /// Truncates `N(mu, sigma²)` to `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error string if the interval is empty or carries
    /// (numerically) zero probability mass.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> Result<Self, String> {
        let base = Normal::new(mu, sigma)?;
        if hi.is_nan() || lo.is_nan() || hi <= lo {
            return Err(format!("empty truncation interval [{lo}, {hi}]"));
        }
        let cdf_lo = base.cdf(lo);
        let cdf_hi = base.cdf(hi);
        if cdf_hi - cdf_lo < 1e-12 {
            return Err("truncation interval carries no probability mass".into());
        }
        Ok(TruncatedNormal {
            base,
            lo,
            hi,
            cdf_lo,
            cdf_hi,
        })
    }

    /// Truncation bounds.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

impl Distribution for TruncatedNormal {
    fn quantile(&self, u: f64) -> f64 {
        let p = self.cdf_lo + u * (self.cdf_hi - self.cdf_lo);
        self.base
            .quantile(p.clamp(1e-16, 1.0 - 1e-16))
            .clamp(self.lo, self.hi)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        self.base.pdf(x) / (self.cdf_hi - self.cdf_lo)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (self.base.cdf(x) - self.cdf_lo) / (self.cdf_hi - self.cdf_lo)
        }
    }

    fn mean(&self) -> f64 {
        // φ-based closed form.
        let a = (self.lo - self.base.mu()) / self.base.sigma();
        let b = (self.hi - self.base.mu()) / self.base.sigma();
        let z = self.cdf_hi - self.cdf_lo;
        self.base.mu() + self.base.sigma() * (normal_pdf(a) - normal_pdf(b)) / z
    }

    fn std_dev(&self) -> f64 {
        let a = (self.lo - self.base.mu()) / self.base.sigma();
        let b = (self.hi - self.base.mu()) / self.base.sigma();
        let z = self.cdf_hi - self.cdf_lo;
        let pa = normal_pdf(a);
        let pb = normal_pdf(b);
        let term1 = (a * pa - b * pb) / z;
        let term2 = ((pa - pb) / z).powi(2);
        (self.base.sigma().powi(2) * (1.0 + term1 - term2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_roundtrip_and_moments() {
        let n = Normal::new(0.17, 0.048).unwrap();
        assert_eq!(n.mean(), 0.17);
        assert_eq!(n.std_dev(), 0.048);
        for u in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = n.quantile(u);
            assert!((n.cdf(x) - u).abs() < 1e-9);
        }
        // pdf integrates to ~1 over ±6σ.
        let steps = 2000;
        let (lo, hi) = (0.17 - 6.0 * 0.048, 0.17 + 6.0 * 0.048);
        let h = (hi - lo) / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| n.pdf(lo + (i as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-6);
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn uniform_properties() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(u.mean(), 4.0);
        assert!((u.std_dev() - 4.0 / 12f64.sqrt()).abs() < 1e-12);
        assert_eq!(u.quantile(0.0), 2.0);
        assert_eq!(u.quantile(1.0), 6.0);
        assert_eq!(u.cdf(1.0), 0.0);
        assert_eq!(u.cdf(7.0), 1.0);
        assert_eq!(u.pdf(4.0), 0.25);
        assert_eq!(u.pdf(7.0), 0.0);
        assert!(Uniform::new(1.0, 1.0).is_err());
    }

    #[test]
    fn lognormal_properties() {
        let ln = LogNormal::new(0.0, 0.5).unwrap();
        // Median is e^µ = 1.
        assert!((ln.quantile(0.5) - 1.0).abs() < 1e-9);
        assert!((ln.mean() - (0.125f64).exp()).abs() < 1e-12);
        assert!(ln.pdf(-1.0) == 0.0 && ln.cdf(-1.0) == 0.0);
        assert!(ln.std_dev() > 0.0);
        for u in [0.1, 0.5, 0.9] {
            let x = ln.quantile(u);
            assert!((ln.cdf(x) - u).abs() < 1e-9);
        }
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let t = TruncatedNormal::new(0.17, 0.048, 0.0, 0.5).unwrap();
        for u in [1e-6, 0.1, 0.5, 0.9, 1.0 - 1e-6] {
            let x = t.quantile(u);
            assert!((0.0..=0.5).contains(&x), "quantile({u}) = {x}");
        }
        assert_eq!(t.cdf(-1.0), 0.0);
        assert_eq!(t.cdf(1.0), 1.0);
        assert_eq!(t.pdf(-0.1), 0.0);
        // Mild truncation barely changes the moments.
        assert!((t.mean() - 0.17).abs() < 1e-3);
        assert!((t.std_dev() - 0.048).abs() < 1e-3);
        assert_eq!(t.bounds(), (0.0, 0.5));
    }

    #[test]
    fn truncated_normal_severe_truncation() {
        // Keep only the right tail: mean must exceed µ.
        let t = TruncatedNormal::new(0.0, 1.0, 1.0, 10.0).unwrap();
        assert!(t.mean() > 1.0);
        assert!(t.std_dev() < 1.0);
        assert!(TruncatedNormal::new(0.0, 1.0, 2.0, 1.0).is_err());
        assert!(TruncatedNormal::new(0.0, 1.0, 50.0, 60.0).is_err());
    }

    #[test]
    fn std_normal_transform_roundtrips_and_matches_closed_form() {
        // Normal: exact affine map.
        let n = Normal::new(0.17, 0.048).unwrap();
        assert_eq!(n.from_std_normal(0.0), 0.17);
        assert_eq!(n.from_std_normal(2.0), 0.17 + 2.0 * 0.048);
        assert_eq!(n.to_std_normal(0.17 - 0.048), -1.0);
        // Generic (default) path on the truncated normal and lognormal:
        // roundtrip and monotonicity.
        let t = TruncatedNormal::new(0.17, 0.048, 0.0, 0.5).unwrap();
        let ln = LogNormal::new(0.0, 0.5).unwrap();
        // Roundtrip in the body of the distribution (deep truncated tails
        // lose digits to CDF cancellation, by construction).
        for z in [-2.0, -0.3, 0.0, 1.0, 2.0] {
            let x = t.from_std_normal(z);
            assert!((0.0..=0.5).contains(&x));
            assert!((t.to_std_normal(x) - z).abs() < 1e-6, "z = {z}");
            let y = ln.from_std_normal(z);
            assert!((ln.to_std_normal(y) - z).abs() < 1e-6, "z = {z}");
        }
        // Tails stay inside the support and monotone.
        for z in [-6.0, -4.0, 4.0, 6.0] {
            let x = t.from_std_normal(z);
            assert!((0.0..=0.5).contains(&x), "z = {z} -> {x}");
        }
        assert!(t.from_std_normal(-6.0) < t.from_std_normal(-4.0));
        assert!(t.from_std_normal(4.0) < t.from_std_normal(6.0));
        // Median maps to the median.
        assert!((t.from_std_normal(0.0) - t.quantile(0.5)).abs() < 1e-12);
        // Deep tails stay finite (the engine may wander past ±8).
        assert!(t.from_std_normal(-40.0).is_finite());
        assert!(t.from_std_normal(40.0).is_finite());
        assert!(ln.from_std_normal(-40.0) >= 0.0);
    }

    #[test]
    fn truncated_cdf_quantile_roundtrip() {
        let t = TruncatedNormal::new(0.17, 0.048, 0.05, 0.35).unwrap();
        for u in [0.05, 0.3, 0.6, 0.95] {
            let x = t.quantile(u);
            assert!((t.cdf(x) - u).abs() < 1e-8);
        }
    }
}
