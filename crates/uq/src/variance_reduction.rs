//! Variance-reduction estimators: antithetic variates, control variates and
//! stratified sampling.
//!
//! The paper's plain Monte Carlo error `σ/√M` (Eq. 6) is the baseline; these
//! estimators cut the constant `σ` without touching the simulation code.
//! They operate on the same `[0, 1)ᵈ` designs as [`crate::sampling`], so the
//! coupled electrothermal solve remains a black box `f(u)`.

use crate::stats::RunningStats;
use crate::UqError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a variance-reduced estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VrEstimate {
    /// Estimated expectation of the quantity of interest.
    pub mean: f64,
    /// Standard error of the mean estimate.
    pub std_error: f64,
    /// Number of function evaluations spent.
    pub evaluations: usize,
}

impl std::fmt::Display for VrEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.6} ± {:.2e} ({} evals)",
            self.mean, self.std_error, self.evaluations
        )
    }
}

/// Antithetic-variates estimator of `E[f(U)]`, `U ~ U[0,1)ᵈ`.
///
/// Each pair evaluates `f(u)` and `f(1 − u)`; their average is one
/// realization. For quantities monotone in the inputs (the hottest-wire
/// temperature is monotone in each wire elongation) the pair correlation is
/// negative and the variance strictly drops versus `2·n_pairs` iid samples.
///
/// # Errors
///
/// Returns [`UqError::InvalidArgument`] if `n_pairs == 0` or `dim == 0`.
pub fn antithetic<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    dim: usize,
    n_pairs: usize,
    seed: u64,
) -> Result<VrEstimate, UqError> {
    if n_pairs == 0 || dim == 0 {
        return Err(UqError::InvalidArgument(format!(
            "antithetic: need n_pairs ≥ 1 and dim ≥ 1 (got {n_pairs}, {dim})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RunningStats::new();
    let mut u = vec![0.0; dim];
    let mut v = vec![0.0; dim];
    for _ in 0..n_pairs {
        for j in 0..dim {
            u[j] = rng.gen::<f64>();
            v[j] = 1.0 - u[j];
        }
        stats.push(0.5 * (f(&u) + f(&v)));
    }
    Ok(VrEstimate {
        mean: stats.mean(),
        std_error: stats.sample_std() / (n_pairs as f64).sqrt(),
        evaluations: 2 * n_pairs,
    })
}

/// Control-variates post-processing: given paired observations of the
/// quantity of interest `y_i` and a control `c_i` with *known* mean
/// `E[c] = c_mean`, returns the adjusted estimator
/// `ȳ − β̂ (c̄ − E[c])` with the variance-optimal `β̂ = Ĉov(y,c)/V̂ar(c)`.
///
/// A cheap control for the wire problem is the analytic 1D fin temperature
/// evaluated at the sampled length, whose mean is computable by quadrature.
///
/// # Errors
///
/// Returns [`UqError::InvalidArgument`] if fewer than 3 pairs are supplied,
/// lengths mismatch, or the control is (numerically) constant.
pub fn control_variate(y: &[f64], c: &[f64], c_mean: f64) -> Result<VrEstimate, UqError> {
    if y.len() != c.len() {
        return Err(UqError::InvalidArgument(format!(
            "control_variate: {} responses vs {} controls",
            y.len(),
            c.len()
        )));
    }
    let n = y.len();
    if n < 3 {
        return Err(UqError::InvalidArgument(
            "control_variate: need at least 3 paired samples".into(),
        ));
    }
    let nf = n as f64;
    let y_bar = y.iter().sum::<f64>() / nf;
    let c_bar = c.iter().sum::<f64>() / nf;
    let mut cov_yc = 0.0;
    let mut var_c = 0.0;
    for i in 0..n {
        cov_yc += (y[i] - y_bar) * (c[i] - c_bar);
        var_c += (c[i] - c_bar) * (c[i] - c_bar);
    }
    cov_yc /= nf - 1.0;
    var_c /= nf - 1.0;
    if var_c <= f64::EPSILON * c_bar.abs().max(1.0) {
        return Err(UqError::InvalidArgument(
            "control_variate: control variable is constant".into(),
        ));
    }
    let beta = cov_yc / var_c;
    // Residual variance of the adjusted samples.
    let mut var_adj = 0.0;
    for i in 0..n {
        let adj = y[i] - beta * (c[i] - c_mean);
        let mean_adj = y_bar - beta * (c_bar - c_mean);
        var_adj += (adj - mean_adj) * (adj - mean_adj);
    }
    var_adj /= nf - 1.0;
    Ok(VrEstimate {
        mean: y_bar - beta * (c_bar - c_mean),
        std_error: (var_adj / nf).sqrt(),
        evaluations: n,
    })
}

/// Stratified sampling of `E[f(U)]` for scalar `U ~ U[0,1)`: the unit
/// interval is split into `n_strata` equal strata with `per_stratum`
/// uniform draws each.
///
/// # Errors
///
/// Returns [`UqError::InvalidArgument`] if `n_strata == 0` or
/// `per_stratum < 2` (two draws per stratum are needed for a variance
/// estimate).
pub fn stratified<F: FnMut(f64) -> f64>(
    mut f: F,
    n_strata: usize,
    per_stratum: usize,
    seed: u64,
) -> Result<VrEstimate, UqError> {
    if n_strata == 0 || per_stratum < 2 {
        return Err(UqError::InvalidArgument(format!(
            "stratified: need n_strata ≥ 1 and per_stratum ≥ 2 (got {n_strata}, {per_stratum})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let width = 1.0 / n_strata as f64;
    let mut mean = 0.0;
    let mut var_of_mean = 0.0;
    for s in 0..n_strata {
        let lo = s as f64 * width;
        let mut stats = RunningStats::new();
        for _ in 0..per_stratum {
            let u = lo + width * rng.gen::<f64>();
            stats.push(f(u));
        }
        // Equal-probability strata: weights 1/n_strata.
        mean += stats.mean() / n_strata as f64;
        let sem = stats.sample_std() / (per_stratum as f64).sqrt();
        var_of_mean += (sem / n_strata as f64).powi(2);
    }
    Ok(VrEstimate {
        mean,
        std_error: var_of_mean.sqrt(),
        evaluations: n_strata * per_stratum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain MC reference estimator for comparisons.
    fn plain_mc<F: FnMut(&[f64]) -> f64>(mut f: F, dim: usize, n: usize, seed: u64) -> VrEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = RunningStats::new();
        let mut u = vec![0.0; dim];
        for _ in 0..n {
            for uj in u.iter_mut() {
                *uj = rng.gen::<f64>();
            }
            stats.push(f(&u));
        }
        VrEstimate {
            mean: stats.mean(),
            std_error: stats.sample_std() / (n as f64).sqrt(),
            evaluations: n,
        }
    }

    #[test]
    fn antithetic_is_exact_for_linear_integrands() {
        // f(u) = 3u − 1: antithetic pairs average to exactly E[f] = 1/2.
        let est = antithetic(|u| 3.0 * u[0] - 1.0, 1, 50, 7).unwrap();
        assert!((est.mean - 0.5).abs() < 1e-12);
        assert!(est.std_error < 1e-12);
        assert_eq!(est.evaluations, 100);
    }

    #[test]
    fn antithetic_beats_plain_mc_on_monotone_integrand() {
        // E[u³] = 1/4; u³ is monotone so antithetic pairing helps.
        let f = |u: &[f64]| u[0] * u[0] * u[0];
        let anti = antithetic(f, 1, 500, 11).unwrap();
        let plain = plain_mc(f, 1, 1000, 11);
        assert!((anti.mean - 0.25).abs() < 0.01);
        assert!(
            anti.std_error < plain.std_error,
            "antithetic {} vs plain {}",
            anti.std_error,
            plain.std_error
        );
    }

    #[test]
    fn control_variate_shrinks_error_with_correlated_control() {
        // y = e^u with control c = u, E[c] = 1/2; corr(y, c) ≈ 0.99.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let us: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = us.iter().map(|&u| u.exp()).collect();
        let est = control_variate(&y, &us, 0.5).unwrap();
        let exact = std::f64::consts::E - 1.0;
        assert!((est.mean - exact).abs() < 5e-3, "mean {}", est.mean);
        // Plain MC std error for comparison.
        let mut stats = RunningStats::new();
        for &v in &y {
            stats.push(v);
        }
        let plain_sem = stats.sample_std() / (n as f64).sqrt();
        assert!(
            est.std_error < plain_sem / 5.0,
            "cv {} vs plain {}",
            est.std_error,
            plain_sem
        );
    }

    #[test]
    fn control_variate_validation() {
        assert!(control_variate(&[1.0, 2.0], &[1.0], 0.0).is_err());
        assert!(control_variate(&[1.0, 2.0], &[1.0, 2.0], 0.0).is_err());
        assert!(control_variate(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0], 5.0).is_err());
    }

    #[test]
    fn stratified_beats_plain_mc_on_smooth_integrand() {
        // E[sin(πu)] = 2/π.
        let f = |u: f64| (std::f64::consts::PI * u).sin();
        let strat = stratified(f, 50, 4, 5).unwrap();
        let plain = plain_mc(|u| f(u[0]), 1, 200, 5);
        let exact = 2.0 / std::f64::consts::PI;
        assert!((strat.mean - exact).abs() < 5e-3);
        assert_eq!(strat.evaluations, 200);
        assert!(
            strat.std_error < plain.std_error,
            "stratified {} vs plain {}",
            strat.std_error,
            plain.std_error
        );
    }

    #[test]
    fn stratified_validation_and_display() {
        assert!(stratified(|u| u, 0, 4, 1).is_err());
        assert!(stratified(|u| u, 4, 1, 1).is_err());
        let est = stratified(|u| u, 4, 2, 1).unwrap();
        let s = est.to_string();
        assert!(s.contains("evals"), "{s}");
    }

    #[test]
    fn antithetic_validation() {
        assert!(antithetic(|_| 0.0, 0, 10, 1).is_err());
        assert!(antithetic(|_| 0.0, 1, 0, 1).is_err());
    }

    #[test]
    fn estimators_are_reproducible() {
        let a = antithetic(|u| u[0], 2, 20, 99).unwrap();
        let b = antithetic(|u| u[0], 2, 20, 99).unwrap();
        assert_eq!(a, b);
    }
}
