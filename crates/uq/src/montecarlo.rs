//! The Monte Carlo driver (paper §IV-C).
//!
//! Repeatedly solves a user-supplied model for random input sets and
//! accumulates per-output running statistics. Outputs are vectors (e.g. one
//! wire-temperature time series per wire, flattened), so a single run
//! yields every `E_j(t)`, `σ_j(t)` and the `σ/√M` error estimate of Eq. 6.

use crate::dist::Distribution;
use crate::sampling::SampleGenerator;
use crate::stats::RunningStats;
use std::sync::mpsc;

/// Options for [`run_monte_carlo`].
#[derive(Debug, Clone, Copy, Default)]
pub struct McOptions {
    /// Keep every per-sample output vector (needed for histograms /
    /// quantiles; costs `M × n_outputs` doubles).
    pub keep_samples: bool,
    /// Serialized progress callback `(samples_done, total)`. Both drivers
    /// invoke it on the coordinating thread as results are accumulated in
    /// sample order, so progress output never interleaves — workers must
    /// not print from their model closures.
    pub progress: Option<fn(usize, usize)>,
}

/// Accumulated results of a Monte Carlo study.
#[derive(Debug, Clone)]
pub struct McResult {
    /// Per-output running statistics.
    pub outputs: Vec<RunningStats>,
    /// Number of samples evaluated.
    pub n_samples: usize,
    /// Raw inputs per sample (always kept; inputs are few).
    pub inputs: Vec<Vec<f64>>,
    /// Raw outputs per sample (only with [`McOptions::keep_samples`]).
    pub samples: Option<Vec<Vec<f64>>>,
}

impl McResult {
    /// Mean per output.
    pub fn means(&self) -> Vec<f64> {
        self.outputs.iter().map(RunningStats::mean).collect()
    }

    /// Sample standard deviation per output.
    pub fn std_devs(&self) -> Vec<f64> {
        self.outputs.iter().map(RunningStats::sample_std).collect()
    }

    /// Monte Carlo error `σ/√M` per output (paper Eq. 6).
    pub fn mc_errors(&self) -> Vec<f64> {
        self.outputs.iter().map(RunningStats::mc_error).collect()
    }

    /// Statistics of output `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn output(&self, k: usize) -> &RunningStats {
        &self.outputs[k]
    }

    /// Accumulates pre-computed, sample-ordered outputs (e.g. from
    /// `etherm_core::run_ensemble`) into an [`McResult`]. Statistics are
    /// pushed in sample order, so the result is bit-identical to
    /// [`run_monte_carlo`] evaluating the same outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `outputs` differ in length or the output
    /// length changes between samples.
    pub fn from_ordered(
        inputs: Vec<Vec<f64>>,
        outputs: Vec<Vec<f64>>,
        options: McOptions,
    ) -> McResult {
        assert_eq!(inputs.len(), outputs.len(), "one output vector per sample");
        let n = outputs.len();
        let mut stats: Vec<RunningStats> = Vec::new();
        let mut samples = options.keep_samples.then(|| Vec::with_capacity(n));
        for y in outputs {
            if stats.is_empty() {
                stats = vec![RunningStats::new(); y.len()];
            }
            assert_eq!(
                y.len(),
                stats.len(),
                "model output length changed between samples"
            );
            for (stat, &v) in stats.iter_mut().zip(&y) {
                stat.push(v);
            }
            if let Some(s) = samples.as_mut() {
                s.push(y);
            }
        }
        McResult {
            outputs: stats,
            n_samples: n,
            inputs,
            samples,
        }
    }
}

/// Maps `n` points from `generator` through the `dists` quantiles
/// (inversion sampling) — the shared design-drawing step of both Monte
/// Carlo drivers, exposed so campaign engines can draw the same design and
/// evaluate it elsewhere (e.g. `etherm_core::run_ensemble`).
///
/// # Panics
///
/// Panics if `dists` is empty.
pub fn draw_samples(
    generator: &mut dyn SampleGenerator,
    dists: &[&dyn Distribution],
    n: usize,
) -> Vec<Vec<f64>> {
    assert!(!dists.is_empty(), "draw_samples: no input distributions");
    generator
        .generate(n, dists.len())
        .into_iter()
        .map(|u| {
            u.iter()
                .zip(dists)
                .map(|(&ui, dist)| dist.quantile(ui.clamp(1e-15, 1.0 - 1e-15)))
                .collect()
        })
        .collect()
}

/// Runs a Monte Carlo study: draws `n` points from `generator`, maps each
/// through the `dists` quantiles (inversion sampling) and evaluates
/// `model(sample_index, inputs) → outputs`.
///
/// The output length must be identical across samples.
///
/// # Errors
///
/// Propagates the first error returned by `model` (already-accumulated
/// statistics are discarded).
///
/// # Panics
///
/// Panics if `model` returns inconsistent output lengths, or `dists` is
/// empty.
///
/// # Example
///
/// ```
/// use etherm_uq::{run_monte_carlo, McOptions, MonteCarloSampler, Normal};
///
/// let delta = Normal::new(0.17, 0.048).unwrap();
/// let mut gen = MonteCarloSampler::new(7);
/// let dists: Vec<&dyn etherm_uq::Distribution> = vec![&delta, &delta];
/// let result = run_monte_carlo(
///     &mut gen,
///     &dists,
///     1000,
///     McOptions::default(),
///     |_i, x| Ok::<_, std::convert::Infallible>(vec![x[0] + x[1]]),
/// )
/// .unwrap();
/// assert!((result.means()[0] - 0.34).abs() < 0.01);
/// ```
pub fn run_monte_carlo<F, E>(
    generator: &mut dyn SampleGenerator,
    dists: &[&dyn Distribution],
    n: usize,
    options: McOptions,
    mut model: F,
) -> Result<McResult, E>
where
    F: FnMut(usize, &[f64]) -> Result<Vec<f64>, E>,
{
    assert!(!dists.is_empty(), "run_monte_carlo: no input distributions");
    let points = draw_samples(generator, dists, n);
    let mut outputs: Vec<RunningStats> = Vec::new();
    let mut inputs = Vec::with_capacity(n);
    let mut samples = if options.keep_samples {
        Some(Vec::with_capacity(n))
    } else {
        None
    };

    for (i, x) in points.into_iter().enumerate() {
        let y = model(i, &x)?;
        if outputs.is_empty() {
            outputs = vec![RunningStats::new(); y.len()];
        }
        assert_eq!(
            y.len(),
            outputs.len(),
            "model output length changed between samples"
        );
        for (stat, &v) in outputs.iter_mut().zip(&y) {
            stat.push(v);
        }
        inputs.push(x);
        if let Some(s) = samples.as_mut() {
            s.push(y);
        }
        if let Some(progress) = options.progress {
            progress(i + 1, n);
        }
    }

    Ok(McResult {
        outputs,
        n_samples: n,
        inputs,
        samples,
    })
}

/// Parallel variant of [`run_monte_carlo`]: the design is drawn once (so
/// results are *identical* to the serial driver for the same generator and
/// seed, regardless of `n_threads`), then the model evaluations are split
/// across `n_threads` OS threads. Each thread gets its own model instance
/// from `model_factory` — the coupled electrothermal solver is stateful
/// (cached matrices, warm starts), so sharing one instance is not an option.
///
/// Completed samples stream back to the coordinating thread, which pushes
/// them into the running statistics *in sample index order* (bit-identical
/// to serial) and frees each vector as soon as it is merged. Without
/// [`McOptions::keep_samples`] the peak memory is therefore the
/// out-of-order window (typically a few samples per thread), not all `n`
/// QoI vectors at once.
///
/// # Errors
///
/// Propagates the first error (by sample index) returned by any model.
///
/// # Panics
///
/// Panics if `dists` is empty, `n_threads == 0`, or the models return
/// inconsistent output lengths.
///
/// # Example
///
/// ```
/// use etherm_uq::montecarlo::{run_monte_carlo_parallel, McOptions};
/// use etherm_uq::{MonteCarloSampler, Normal};
///
/// let delta = Normal::new(0.17, 0.048).unwrap();
/// let mut gen = MonteCarloSampler::new(7);
/// let dists: Vec<&dyn etherm_uq::Distribution> = vec![&delta, &delta];
/// let result = run_monte_carlo_parallel(
///     &mut gen,
///     &dists,
///     1000,
///     McOptions::default(),
///     4,
///     || |_i: usize, x: &[f64]| Ok::<_, std::convert::Infallible>(vec![x[0] + x[1]]),
/// )
/// .unwrap();
/// assert!((result.means()[0] - 0.34).abs() < 0.01);
/// ```
pub fn run_monte_carlo_parallel<F, E, MF>(
    generator: &mut dyn SampleGenerator,
    dists: &[&dyn Distribution],
    n: usize,
    options: McOptions,
    n_threads: usize,
    model_factory: MF,
) -> Result<McResult, E>
where
    F: FnMut(usize, &[f64]) -> Result<Vec<f64>, E>,
    E: Send,
    MF: Fn() -> F + Sync,
{
    assert!(!dists.is_empty(), "run_monte_carlo_parallel: no inputs");
    assert!(n_threads > 0, "run_monte_carlo_parallel: need ≥ 1 thread");
    let inputs = draw_samples(generator, dists, n);

    // Evaluate in contiguous index chunks and stream each completed sample
    // back; the coordinator below merges strictly in sample order, so the
    // statistics are bit-identical to serial for any thread count.
    let chunk = n.div_ceil(n_threads).max(1);
    let (tx, rx) = mpsc::channel::<(usize, Result<Vec<f64>, E>)>();
    let merged = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, block) in inputs.chunks(chunk).enumerate() {
            let factory = &model_factory;
            let tx = tx.clone();
            handles.push(scope.spawn(move || {
                let mut model = factory();
                for (k, x) in block.iter().enumerate() {
                    let i = c * chunk + k;
                    let r = model(i, x);
                    let failed = r.is_err();
                    if tx.send((i, r)).is_err() || failed {
                        // Receiver gone or chunk failed: stop this worker
                        // (matching the serial driver, which aborts the
                        // remaining samples of a failing sweep).
                        break;
                    }
                }
            }));
        }
        drop(tx);

        // Ordered streaming merge: push into the running statistics as the
        // in-order frontier advances, dropping each merged vector.
        let mut pending: std::collections::BTreeMap<usize, Vec<f64>> =
            std::collections::BTreeMap::new();
        let mut next = 0usize;
        let mut outputs: Vec<RunningStats> = Vec::new();
        let mut samples = options.keep_samples.then(|| Vec::with_capacity(n));
        let mut first_error: Option<(usize, E)> = None;
        let push = |outputs: &mut Vec<RunningStats>,
                        samples: &mut Option<Vec<Vec<f64>>>,
                        y: Vec<f64>| {
            if outputs.is_empty() {
                *outputs = vec![RunningStats::new(); y.len()];
            }
            assert_eq!(
                y.len(),
                outputs.len(),
                "model output length changed between samples"
            );
            for (stat, &v) in outputs.iter_mut().zip(&y) {
                stat.push(v);
            }
            if let Some(s) = samples.as_mut() {
                s.push(y);
            }
        };
        for (i, r) in rx {
            match r {
                Ok(y) => {
                    if i == next {
                        push(&mut outputs, &mut samples, y);
                        next += 1;
                        while let Some(y) = pending.remove(&next) {
                            push(&mut outputs, &mut samples, y);
                            next += 1;
                        }
                        if let Some(progress) = options.progress {
                            progress(next, n);
                        }
                    } else {
                        pending.insert(i, y);
                    }
                }
                Err(e) => {
                    if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_error = Some((i, e));
                    }
                }
            }
        }
        // Surface a worker's own panic payload before the completeness
        // check, so a panicking model closure is not masked by the
        // "all samples evaluated" assertion below.
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        if let Some((_, e)) = first_error {
            return Err(e);
        }
        assert_eq!(next, n, "all samples evaluated");
        Ok((outputs, samples))
    });
    let (outputs, samples) = merged?;

    Ok(McResult {
        outputs,
        n_samples: n,
        inputs,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Normal, Uniform};
    use crate::sampling::{Halton, LatinHypercube, MonteCarloSampler};

    #[test]
    fn estimates_linear_functional() {
        // E[3X + 2Y] with X ~ N(1, 0.5), Y ~ U[0, 2] → 3·1 + 2·1 = 5.
        let x = Normal::new(1.0, 0.5).unwrap();
        let y = Uniform::new(0.0, 2.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&x, &y];
        let mut gen = MonteCarloSampler::new(3);
        let r = run_monte_carlo(&mut gen, &dists, 4000, McOptions::default(), |_, v| {
            Ok::<_, std::convert::Infallible>(vec![3.0 * v[0] + 2.0 * v[1]])
        })
        .unwrap();
        assert_eq!(r.n_samples, 4000);
        assert!((r.means()[0] - 5.0).abs() < 3.0 * r.mc_errors()[0] + 0.05);
        // Known variance: 9·0.25 + 4·(4/12) = 2.25 + 4/3.
        let want_std = (2.25f64 + 4.0 / 3.0).sqrt();
        assert!((r.std_devs()[0] - want_std).abs() < 0.1);
    }

    #[test]
    fn mc_error_shrinks_with_samples() {
        let x = Normal::new(0.0, 1.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&x];
        let run = |n: usize| {
            let mut gen = MonteCarloSampler::new(11);
            run_monte_carlo(&mut gen, &dists, n, McOptions::default(), |_, v| {
                Ok::<_, std::convert::Infallible>(vec![v[0]])
            })
            .unwrap()
            .mc_errors()[0]
        };
        let e100 = run(100);
        let e10000 = run(10_000);
        // σ/√M: factor ~10 reduction.
        assert!(e10000 < e100 / 5.0, "{e100} vs {e10000}");
    }

    #[test]
    fn lhs_beats_mc_on_smooth_functional() {
        // Variance of the LHS estimate of E[sum of inputs] is far below MC.
        let x = Normal::new(0.0, 1.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&x, &x, &x];
        let estimate = |gen: &mut dyn SampleGenerator, seed_shift: u64| -> f64 {
            let _ = seed_shift;
            run_monte_carlo(gen, &dists, 200, McOptions::default(), |_, v| {
                Ok::<_, std::convert::Infallible>(vec![v.iter().sum()])
            })
            .unwrap()
            .means()[0]
        };
        let mut mc_errs = Vec::new();
        let mut lhs_errs = Vec::new();
        for seed in 0..20 {
            let mut mc = MonteCarloSampler::new(seed);
            let mut lhs = LatinHypercube::new(seed);
            mc_errs.push(estimate(&mut mc, seed).abs());
            lhs_errs.push(estimate(&mut lhs, seed).abs());
        }
        let mc_rms: f64 =
            (mc_errs.iter().map(|e| e * e).sum::<f64>() / mc_errs.len() as f64).sqrt();
        let lhs_rms: f64 =
            (lhs_errs.iter().map(|e| e * e).sum::<f64>() / lhs_errs.len() as f64).sqrt();
        assert!(
            lhs_rms < 0.5 * mc_rms,
            "LHS rms {lhs_rms} not better than MC rms {mc_rms}"
        );
    }

    #[test]
    fn halton_integrates_smooth_function_accurately() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&u, &u];
        let mut h = Halton::default();
        let r = run_monte_carlo(&mut h, &dists, 2000, McOptions::default(), |_, v| {
            Ok::<_, std::convert::Infallible>(vec![v[0] * v[1]])
        })
        .unwrap();
        // E[XY] = 1/4 for independent U(0,1).
        assert!((r.means()[0] - 0.25).abs() < 1e-3);
    }

    #[test]
    fn keeps_samples_when_requested() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&u];
        let mut gen = MonteCarloSampler::new(1);
        let r = run_monte_carlo(
            &mut gen,
            &dists,
            10,
            McOptions { keep_samples: true, ..Default::default() },
            |i, v| Ok::<_, std::convert::Infallible>(vec![v[0], i as f64]),
        )
        .unwrap();
        let samples = r.samples.as_ref().unwrap();
        assert_eq!(samples.len(), 10);
        assert_eq!(samples[3][1], 3.0);
        assert_eq!(r.inputs.len(), 10);
        assert_eq!(r.output(1).count(), 10);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let x = Normal::new(1.0, 0.5).unwrap();
        let y = Uniform::new(0.0, 2.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&x, &y];
        let model = |_i: usize, v: &[f64]| {
            Ok::<_, std::convert::Infallible>(vec![3.0 * v[0] + 2.0 * v[1], v[0] * v[1]])
        };
        let mut gen_a = MonteCarloSampler::new(3);
        let serial =
            run_monte_carlo(&mut gen_a, &dists, 500, McOptions::default(), model).unwrap();
        for threads in [1, 2, 4, 7] {
            let mut gen_b = MonteCarloSampler::new(3);
            let par = run_monte_carlo_parallel(
                &mut gen_b,
                &dists,
                500,
                McOptions::default(),
                threads,
                || model,
            )
            .unwrap();
            assert_eq!(par.n_samples, serial.n_samples);
            for k in 0..2 {
                assert_eq!(par.means()[k], serial.means()[k], "threads={threads}");
                assert_eq!(par.std_devs()[k], serial.std_devs()[k]);
            }
            assert_eq!(par.inputs, serial.inputs);
        }
    }

    #[test]
    fn progress_is_ordered_and_serialized() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static LAST_DONE: AtomicUsize = AtomicUsize::new(0);
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        fn progress(done: usize, total: usize) {
            assert_eq!(total, 40);
            // The merge frontier is monotone: `done` never decreases.
            let prev = LAST_DONE.swap(done, Ordering::SeqCst);
            assert!(done >= prev, "progress went backwards: {prev} -> {done}");
            CALLS.fetch_add(1, Ordering::SeqCst);
        }
        let u = Uniform::new(0.0, 1.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&u];
        let mut gen = MonteCarloSampler::new(5);
        let options = McOptions {
            progress: Some(progress),
            ..Default::default()
        };
        run_monte_carlo_parallel(&mut gen, &dists, 40, options, 4, || {
            |_: usize, v: &[f64]| Ok::<_, std::convert::Infallible>(vec![v[0]])
        })
        .unwrap();
        assert_eq!(LAST_DONE.load(Ordering::SeqCst), 40);
        assert!(CALLS.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn from_ordered_matches_serial_accumulation() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&u, &u];
        let mut gen = MonteCarloSampler::new(9);
        let serial = run_monte_carlo(&mut gen, &dists, 200, McOptions::default(), |_, v| {
            Ok::<_, std::convert::Infallible>(vec![v[0] * v[1], v[0] + v[1]])
        })
        .unwrap();
        let mut gen = MonteCarloSampler::new(9);
        let inputs = draw_samples(&mut gen, &dists, 200);
        let outputs: Vec<Vec<f64>> = inputs
            .iter()
            .map(|v| vec![v[0] * v[1], v[0] + v[1]])
            .collect();
        let rebuilt = McResult::from_ordered(inputs, outputs, McOptions::default());
        assert_eq!(rebuilt.n_samples, serial.n_samples);
        assert_eq!(rebuilt.means(), serial.means());
        assert_eq!(rebuilt.std_devs(), serial.std_devs());
        assert_eq!(rebuilt.inputs, serial.inputs);
    }

    #[test]
    fn parallel_propagates_error_and_keeps_samples() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&u];
        let mut gen = MonteCarloSampler::new(1);
        let r = run_monte_carlo_parallel(
            &mut gen,
            &dists,
            32,
            McOptions::default(),
            4,
            || |i: usize, _: &[f64]| if i == 17 { Err("boom") } else { Ok(vec![0.0]) },
        );
        assert_eq!(r.unwrap_err(), "boom");

        let mut gen = MonteCarloSampler::new(1);
        let r = run_monte_carlo_parallel(
            &mut gen,
            &dists,
            10,
            McOptions { keep_samples: true, ..Default::default() },
            3,
            || |i: usize, v: &[f64]| Ok::<_, std::convert::Infallible>(vec![v[0], i as f64]),
        )
        .unwrap();
        let samples = r.samples.as_ref().unwrap();
        assert_eq!(samples.len(), 10);
        // Sample order is preserved despite chunked parallel evaluation.
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s[1], i as f64);
        }
    }

    #[test]
    fn propagates_model_error() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        let dists: Vec<&dyn Distribution> = vec![&u];
        let mut gen = MonteCarloSampler::new(1);
        let r = run_monte_carlo(&mut gen, &dists, 10, McOptions::default(), |i, _| {
            if i == 5 {
                Err("boom")
            } else {
                Ok(vec![0.0])
            }
        });
        assert_eq!(r.unwrap_err(), "boom");
    }
}
