//! Error type for the UQ crate.

use std::fmt;

/// Errors produced by UQ estimators and surrogate builders.
#[derive(Debug, Clone, PartialEq)]
pub enum UqError {
    /// An argument was invalid (bad degree, sample/basis mismatch, ...).
    InvalidArgument(String),
    /// An underlying linear-algebra routine failed.
    Numerics(etherm_numerics::NumericsError),
    /// A regression design matrix is (numerically) rank deficient: the
    /// samples do not determine the requested basis. Strict surrogate fits
    /// report this instead of silently ridging the normal equations.
    DegenerateDesign(String),
}

impl fmt::Display for UqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UqError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            UqError::Numerics(e) => write!(f, "numerics failure: {e}"),
            UqError::DegenerateDesign(msg) => write!(f, "degenerate design: {msg}"),
        }
    }
}

impl std::error::Error for UqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UqError::Numerics(e) => Some(e),
            UqError::InvalidArgument(_) | UqError::DegenerateDesign(_) => None,
        }
    }
}

impl From<etherm_numerics::NumericsError> for UqError {
    fn from(e: etherm_numerics::NumericsError) -> Self {
        UqError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = UqError::InvalidArgument("bad degree".into());
        assert!(e.to_string().contains("bad degree"));
        let inner = etherm_numerics::NumericsError::InvalidArgument("x".into());
        let e = UqError::from(inner);
        assert!(e.to_string().contains("numerics"));
        assert!(std::error::Error::source(&e).is_some());
        let e = UqError::DegenerateDesign("rank 3 < 5 basis terms".into());
        assert!(e.to_string().contains("degenerate design"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UqError>();
    }
}
