//! Uncertainty quantification: distributions, sampling designs, Monte Carlo
//! drivers and statistics (paper §IV).
//!
//! The paper quantifies the effect of uncertain bonding-wire elongations
//! `δ ~ N(0.17, 0.048)` by plain Monte Carlo with `M = 1000` samples and the
//! error estimator `error_MC = σ_MC/√M` (Eq. 6), noting that "the
//! application of other methods is straightforward" — hence this crate also
//! ships Latin Hypercube and Halton quasi-Monte Carlo designs for the A6
//! convergence ablation.
//!
//! * [`special`] — `erf`/`erfc`, normal pdf/cdf and the Acklam inverse
//!   normal CDF, implemented from scratch (no external stats crates),
//! * [`dist`] — [`Distribution`] trait with Normal, truncated Normal,
//!   Uniform and LogNormal,
//! * [`sampling`] — [`SampleGenerator`]: iid Monte Carlo, Latin Hypercube,
//!   Halton,
//! * [`stats`] — Welford running moments, histograms, normal fits,
//!   Kolmogorov–Smirnov goodness of fit,
//! * [`montecarlo`] — the sampling driver with per-output running stats and
//!   the `σ/√M` error estimate,
//! * [`sensitivity`] — correlation / standardized-regression screening and
//!   Saltelli variance-based Sobol' indices,
//! * [`pce`] — Wiener–Hermite polynomial chaos expansions (projection and
//!   regression) with analytic moments and Sobol' indices,
//! * [`surrogate`] — [`Surrogate`]: strict (un-ridged) PCE regression with a
//!   cross-validated error model and deterministic refit, the basis of the
//!   error-controlled fast-serving tier,
//! * [`variance_reduction`] — antithetic variates, control variates and
//!   stratified sampling on top of the same unit-hypercube designs.

#![forbid(unsafe_code)]

pub mod dist;
pub mod error;
pub mod montecarlo;
pub mod pce;
pub mod sampling;
pub mod sensitivity;
pub mod sobol;
pub mod sparse_grid;
pub mod special;
pub mod stats;
pub mod surrogate;
pub mod variance_reduction;

pub use dist::{Distribution, LogNormal, Normal, TruncatedNormal, Uniform};
pub use error::UqError;
pub use montecarlo::{draw_samples, run_monte_carlo, run_monte_carlo_parallel, McOptions, McResult};
pub use pce::{
    fit_projection_1d, fit_regression, fit_regression_strict, fit_sparse_projection,
    fit_tensor_projection, MultiIndexSet, PceModel,
};
pub use sampling::{Halton, LatinHypercube, MonteCarloSampler, SampleGenerator};
pub use sensitivity::{sobol_saltelli, SobolIndices};
pub use sobol::Sobol;
pub use sparse_grid::SparseGrid;
pub use stats::{fit_normal, Histogram, RunningStats};
pub use surrogate::{Surrogate, SurrogateOptions};
pub use variance_reduction::{antithetic, control_variate, stratified, VrEstimate};
