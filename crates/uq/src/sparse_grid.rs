//! Smolyak sparse quadrature grids for moderate-dimensional expectations.
//!
//! Tensor Gauss–Hermite grids grow as `nᵈ` and die of the curse of
//! dimensionality well before the paper's `d = 12` wire elongations; plain
//! Monte Carlo converges as `1/√M` regardless of smoothness. The Smolyak
//! combination technique sits in between: for a smooth quantity of interest
//! it retains near-spectral accuracy with a point count that grows only
//! polynomially in the dimension,
//!
//! ```text
//! Q_q^d f = Σ_{max(d, q−d+1) ≤ |ℓ|₁ ≤ q} (−1)^{q−|ℓ|₁} C(d−1, q−|ℓ|₁) (Q_{ℓ₁} ⊗ … ⊗ Q_{ℓ_d}) f,
//! ```
//!
//! built from one-dimensional probabilists' Gauss–Hermite rules with linear
//! growth (`ℓ` points at level `ℓ`). Points shared by several tensor terms
//! are merged, so each model evaluation is spent once.

use crate::UqError;
use etherm_numerics::quadrature::QuadratureRule;
use std::collections::BTreeMap;

/// A sparse quadrature rule: points in `ℝᵈ` with (possibly negative)
/// combination weights, normalized so that constants integrate exactly.
///
/// # Example
///
/// ```
/// use etherm_uq::sparse_grid::SparseGrid;
///
/// # fn main() -> Result<(), etherm_uq::UqError> {
/// // E[ξ₁² + ξ₂²] = 2 for ξ ~ N(0, I₂).
/// let grid = SparseGrid::gauss_hermite(2, 3)?;
/// let got = grid.integrate(|x| x[0] * x[0] + x[1] * x[1]);
/// assert!((got - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGrid {
    dim: usize,
    level: usize,
    points: Vec<Vec<f64>>,
    weights: Vec<f64>,
}

impl SparseGrid {
    /// Builds the Smolyak Gauss–Hermite grid of the given `level ≥ 1` in
    /// `dim ≥ 1` dimensions (level 1 is the single-point mean rule; higher
    /// levels add polynomial exactness).
    ///
    /// # Errors
    ///
    /// Returns [`UqError::InvalidArgument`] if `dim == 0` or `level == 0`,
    /// and propagates quadrature construction failures.
    pub fn gauss_hermite(dim: usize, level: usize) -> Result<Self, UqError> {
        if dim == 0 || level == 0 {
            return Err(UqError::InvalidArgument(format!(
                "sparse grid needs dim ≥ 1 and level ≥ 1 (got {dim}, {level})"
            )));
        }
        // 1D rules with linear growth: level ℓ uses ℓ Gauss–Hermite points.
        let rules: Vec<QuadratureRule> = (1..=level)
            .map(QuadratureRule::gauss_hermite)
            .collect::<Result<_, _>>()?;

        // Smolyak sum over multi-levels ℓ ∈ [1, level]^d with the sparse
        // constraint |ℓ|₁ ≤ q, q = level + d − 1. A BTreeMap (not a
        // HashMap) keyed by coordinate bit patterns makes the merged node
        // enumeration order a pure function of the grid parameters — the
        // default hasher would randomize it per process, silently breaking
        // every bit-identity guarantee downstream of a sparse-grid sweep.
        let q = level + dim - 1;
        let mut merged: BTreeMap<Vec<u64>, (Vec<f64>, f64)> = BTreeMap::new();
        let mut ml = vec![1usize; dim];
        loop {
            let l1: usize = ml.iter().sum();
            if l1 <= q && q - l1 < dim {
                // Combination coefficient (−1)^{q−|ℓ|} C(d−1, q−|ℓ|).
                let k = q - l1;
                let coeff = if k.is_multiple_of(2) { 1.0 } else { -1.0 } * binomial(dim - 1, k);
                tensor_accumulate(&rules, &ml, coeff, &mut merged);
            }
            // Odometer over [1, level]^d.
            let mut j = 0;
            loop {
                if j == dim {
                    let (points, weights): (Vec<Vec<f64>>, Vec<f64>) =
                        merged.into_values().unzip();
                    return Ok(SparseGrid {
                        dim,
                        level,
                        points,
                        weights,
                    });
                }
                ml[j] += 1;
                if ml[j] <= level {
                    break;
                }
                ml[j] = 1;
                j += 1;
            }
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Smolyak level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of distinct quadrature points (model evaluations needed).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The quadrature points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The combination weights (sum to 1; individual weights may be
    /// negative — that is inherent to Smolyak grids).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Approximates `E[f(ξ)]`, `ξ ~ N(0, I_d)`.
    pub fn integrate<F: FnMut(&[f64]) -> f64>(&self, mut f: F) -> f64 {
        self.points
            .iter()
            .zip(&self.weights)
            .map(|(x, &w)| w * f(x))
            .sum()
    }
}

/// Accumulates the tensor rule `⊗ Q_{ℓᵢ}` scaled by `coeff` into the merged
/// point map (keyed by the bit patterns of the coordinates — tensor grids
/// built from the same 1D rules reproduce coordinates bit-exactly).
fn tensor_accumulate(
    rules: &[QuadratureRule],
    ml: &[usize],
    coeff: f64,
    merged: &mut BTreeMap<Vec<u64>, (Vec<f64>, f64)>,
) {
    let dim = ml.len();
    let mut idx = vec![0usize; dim];
    loop {
        let mut point = Vec::with_capacity(dim);
        let mut weight = coeff;
        let mut key = Vec::with_capacity(dim);
        for (j, &lj) in ml.iter().enumerate() {
            let rule = &rules[lj - 1];
            let x = rule.nodes()[idx[j]];
            point.push(x);
            weight *= rule.weights()[idx[j]];
            key.push(x.to_bits());
        }
        match merged.entry(key) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().1 += weight;
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((point, weight));
            }
        }
        // Odometer over the tensor index space.
        let mut j = 0;
        loop {
            if j == dim {
                return;
            }
            idx[j] += 1;
            if idx[j] < rules[ml[j] - 1].len() {
                break;
            }
            idx[j] = 0;
            j += 1;
        }
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        for dim in 1..=4 {
            for level in 1..=4 {
                let g = SparseGrid::gauss_hermite(dim, level).unwrap();
                let s: f64 = g.weights().iter().sum();
                assert!((s - 1.0).abs() < 1e-10, "d={dim} ℓ={level}: Σw = {s}");
                assert_eq!(g.dim(), dim);
                assert_eq!(g.level(), level);
                assert!(!g.is_empty());
            }
        }
    }

    #[test]
    fn one_dimensional_grid_reduces_to_gauss_hermite() {
        let g = SparseGrid::gauss_hermite(1, 5).unwrap();
        // In 1D the combination collapses to exactly the level-5 rule.
        let rule = QuadratureRule::gauss_hermite(5).unwrap();
        assert_eq!(g.len(), rule.len());
        let got = g.integrate(|x| x[0].powi(8));
        let want = rule.integrate(|x| x.powi(8));
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn integrates_low_degree_polynomials_exactly() {
        // Level ℓ Smolyak with linear growth is exact for total degree
        // ≤ 2ℓ − 1 (cross terms included up to the sparse constraint).
        let g = SparseGrid::gauss_hermite(3, 3).unwrap();
        // E[1] = 1, E[ξᵢ] = 0, E[ξᵢ²] = 1, E[ξᵢξⱼ] = 0, E[ξᵢ³] = 0,
        // E[ξᵢ²ξⱼ] = 0, E[ξ⁴] = 3.
        assert!((g.integrate(|_| 1.0) - 1.0).abs() < 1e-12);
        for i in 0..3 {
            assert!(g.integrate(|x| x[i]).abs() < 1e-10);
            assert!((g.integrate(|x| x[i] * x[i]) - 1.0).abs() < 1e-10);
            assert!(g.integrate(|x| x[i].powi(3)).abs() < 1e-9);
            assert!((g.integrate(|x| x[i].powi(4)) - 3.0).abs() < 1e-8);
        }
        assert!(g.integrate(|x| x[0] * x[1]).abs() < 1e-10);
        assert!(g.integrate(|x| x[0] * x[1] * x[2]).abs() < 1e-10);
        assert!((g.integrate(|x| x[0] * x[0] * x[1] * x[1]) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn sparse_is_much_smaller_than_tensor() {
        let level = 4;
        let dim = 6;
        let g = SparseGrid::gauss_hermite(dim, level).unwrap();
        let tensor_count = level.pow(dim as u32);
        assert!(
            g.len() * 10 < tensor_count,
            "sparse {} vs tensor {tensor_count}",
            g.len()
        );
    }

    #[test]
    fn converges_on_smooth_function() {
        // E[exp(0.2·Σξᵢ)] = exp(0.2²·d/2) for d = 4.
        let dim = 4;
        let exact = (0.04f64 * dim as f64 / 2.0).exp();
        let mut prev_err = f64::INFINITY;
        for level in 1..=5 {
            let g = SparseGrid::gauss_hermite(dim, level).unwrap();
            let got = g.integrate(|x| (0.2 * x.iter().sum::<f64>()).exp());
            let err = (got - exact).abs();
            assert!(
                err < prev_err || err < 1e-12,
                "level {level}: err {err} (prev {prev_err})"
            );
            prev_err = err;
        }
        assert!(prev_err < 1e-7, "final error {prev_err}");
    }

    #[test]
    fn twelve_dimensional_grid_is_feasible() {
        // The paper's 12 wires at level 2: 2d+1 = 25 points (mean rule plus
        // two symmetric points per axis) — trivially cheap.
        let g = SparseGrid::gauss_hermite(12, 2).unwrap();
        assert!(g.len() <= 25, "level-2 grid has {} points", g.len());
        // Exact on total degree ≤ 3.
        let got = g.integrate(|x| x.iter().map(|v| v * v).sum::<f64>());
        assert!((got - 12.0).abs() < 1e-9, "{got}");
    }

    #[test]
    fn invalid_arguments_rejected() {
        assert!(SparseGrid::gauss_hermite(0, 2).is_err());
        assert!(SparseGrid::gauss_hermite(2, 0).is_err());
    }

    #[test]
    fn node_enumeration_order_is_deterministic() {
        // Two independent constructions must enumerate nodes identically —
        // order included, because ensemble engines assign samples (and RNG
        // substreams) by node index. With the BTreeMap merge the order is
        // the ascending lexicographic order of the coordinate bit-pattern
        // keys, a pure function of the grid parameters; the previous
        // HashMap merge only looked deterministic within one process
        // (std's RandomState is seeded once per thread) and differed
        // across processes.
        for (dim, level) in [(1, 4), (3, 3), (5, 3), (12, 2)] {
            let a = SparseGrid::gauss_hermite(dim, level).unwrap();
            let b = SparseGrid::gauss_hermite(dim, level).unwrap();
            assert_eq!(a.points(), b.points(), "d={dim} ℓ={level}: point order");
            assert_eq!(
                a.weights().iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                b.weights().iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                "d={dim} ℓ={level}: weight order"
            );
            // Cross-process determinism: the enumeration equals the
            // canonical sorted-key order, independent of any hasher state.
            let keys: Vec<Vec<u64>> = a
                .points()
                .iter()
                .map(|p| p.iter().map(|x| x.to_bits()).collect())
                .collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "d={dim} ℓ={level}: not in canonical order");
        }
    }

    #[test]
    fn negative_weights_exist_but_cancel() {
        let g = SparseGrid::gauss_hermite(3, 3).unwrap();
        assert!(
            g.weights().iter().any(|&w| w < 0.0),
            "Smolyak grids have negative combination weights"
        );
        let s: f64 = g.weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-10);
    }
}
