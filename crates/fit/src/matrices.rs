//! Diagonal FIT material matrices with volumetric averaging.
//!
//! On the mutually orthogonal grid pair every primary edge `i` crosses one
//! dual facet, so the conductance matrices are diagonal with entries
//! `Mσ,ii = σᵢ Ãᵢ / ℓᵢ` and `Mλ,ii = λᵢ Ãᵢ / ℓᵢ` (paper §III-A). The edge
//! property `σᵢ` is the volumetric average of the (staircase) cell
//! properties over the ≤ 4 primary cells touching the edge; the nodal heat
//! capacity `Mρc,jj = ρcⱼ Ṽⱼ` averages over the ≤ 8 cells touching the dual
//! cell.

use etherm_grid::{CellPaint, Grid3};
use etherm_materials::MaterialTable;

/// Which scalar conductivity to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// Electrical conductivity `σ(T)`.
    Electrical,
    /// Thermal conductivity `λ(T)`.
    Thermal,
}

/// Mean temperature of every primary cell (average of its 8 corner nodes).
///
/// # Panics
///
/// Panics if `t_nodes.len() != grid.n_nodes()`.
pub fn cell_temperatures(grid: &Grid3, t_nodes: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    cell_temperatures_into(grid, t_nodes, &mut out);
    out
}

/// In-place variant of [`cell_temperatures`] for the per-Picard-iterate hot
/// path; `out` is resized (reusing its capacity) and overwritten.
///
/// # Panics
///
/// Panics if `t_nodes.len() != grid.n_nodes()`.
pub fn cell_temperatures_into(grid: &Grid3, t_nodes: &[f64], out: &mut Vec<f64>) {
    assert_eq!(t_nodes.len(), grid.n_nodes(), "cell_temperatures: length");
    out.clear();
    out.extend((0..grid.n_cells()).map(|c| {
        let nodes = grid.cell_nodes(c);
        nodes.iter().map(|&n| t_nodes[n]).sum::<f64>() / 8.0
    }));
}

/// Evaluates the chosen conductivity per cell at the given cell
/// temperatures.
///
/// # Panics
///
/// Panics on length mismatch or an unknown material id.
pub fn cell_property(
    grid: &Grid3,
    paint: &CellPaint,
    table: &MaterialTable,
    cell_temps: &[f64],
    property: Property,
) -> Vec<f64> {
    let mut out = Vec::new();
    cell_property_into(grid, paint, table, cell_temps, property, &mut out);
    out
}

/// In-place variant of [`cell_property`]; `out` is resized (reusing its
/// capacity) and overwritten.
///
/// # Panics
///
/// Panics on length mismatch or an unknown material id.
pub fn cell_property_into(
    grid: &Grid3,
    paint: &CellPaint,
    table: &MaterialTable,
    cell_temps: &[f64],
    property: Property,
    out: &mut Vec<f64>,
) {
    assert_eq!(cell_temps.len(), grid.n_cells(), "cell_property: length");
    assert_eq!(paint.n_cells(), grid.n_cells(), "cell_property: paint size");
    out.clear();
    out.extend((0..grid.n_cells()).map(|c| {
        let mat = table.get(paint.material(c).0 as usize);
        match property {
            Property::Electrical => mat.sigma(cell_temps[c]),
            Property::Thermal => mat.lambda(cell_temps[c]),
        }
    }));
}

/// Builds the diagonal of the edge material matrix `M = diag(vᵢ Ãᵢ / ℓᵢ)`
/// from per-cell property values `v`, volumetrically averaged onto edges.
///
/// # Panics
///
/// Panics if `cell_values.len() != grid.n_cells()`.
pub fn edge_material_diagonal(grid: &Grid3, cell_values: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    edge_material_diagonal_into(grid, cell_values, &mut out);
    out
}

/// In-place variant of [`edge_material_diagonal`]; `out` is resized (reusing
/// its capacity) and overwritten. Uses the grid's allocation-free
/// cell-touching visitor, so the whole averaging pass performs no heap
/// allocation once `out` has warmed up.
///
/// # Panics
///
/// Panics if `cell_values.len() != grid.n_cells()`.
pub fn edge_material_diagonal_into(grid: &Grid3, cell_values: &[f64], out: &mut Vec<f64>) {
    assert_eq!(
        cell_values.len(),
        grid.n_cells(),
        "edge_material_diagonal: length"
    );
    out.clear();
    out.extend((0..grid.n_edges()).map(|e| {
        let mut num = 0.0;
        let mut den = 0.0;
        grid.for_each_cell_touching_edge(e, |c, w| {
            num += w * cell_values[c];
            den += w;
        });
        let avg = num / den;
        avg * grid.dual_area(e) / grid.edge_length(e)
    }));
}

/// Builds the diagonal of the thermal capacitance matrix
/// `Mρc = diag(ρcⱼ Ṽⱼ)` (J/K per node). Temperature-independent, so compute
/// once per model.
///
/// # Panics
///
/// Panics on paint/grid size mismatch or an unknown material id.
pub fn node_capacitance_diagonal(
    grid: &Grid3,
    paint: &CellPaint,
    table: &MaterialTable,
) -> Vec<f64> {
    assert_eq!(paint.n_cells(), grid.n_cells(), "node_capacitance: paint");
    (0..grid.n_nodes())
        .map(|n| {
            // Σ over touching cells of (octant volume)·ρc — this *is*
            // ρc̄ⱼ·Ṽⱼ with the volumetric average ρc̄.
            grid.cells_touching_node(n)
                .iter()
                .map(|&(c, w)| w * table.get(paint.material(c).0 as usize).rho_c())
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_grid::{Axis, BoxRegion, MaterialId};
    use etherm_materials::{library, Material, TemperatureModel};

    fn uniform_grid() -> Grid3 {
        Grid3::new(
            Axis::uniform(0.0, 1.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 2).unwrap(),
        )
    }

    fn simple_table() -> MaterialTable {
        let mut t = MaterialTable::new();
        t.add(Material::new(
            "a",
            TemperatureModel::Constant(2.0),
            TemperatureModel::Constant(4.0),
            10.0,
        ));
        t.add(Material::new(
            "b",
            TemperatureModel::Constant(6.0),
            TemperatureModel::Constant(8.0),
            20.0,
        ));
        t
    }

    #[test]
    fn cell_temperatures_average_corners() {
        let g = uniform_grid();
        // T = z coordinate → cell temp = mean of corner z = center z.
        let t: Vec<f64> = (0..g.n_nodes()).map(|n| g.node_position(n).2).collect();
        let ct = cell_temperatures(&g, &t);
        for c in 0..g.n_cells() {
            assert!((ct[c] - g.cell_center(c).2).abs() < 1e-14);
        }
    }

    #[test]
    fn homogeneous_edge_matrix_is_exact() {
        let g = uniform_grid();
        let paint = CellPaint::new(&g, MaterialId(0));
        let table = simple_table();
        let ct = vec![300.0; g.n_cells()];
        let sig = cell_property(&g, &paint, &table, &ct, Property::Electrical);
        assert!(sig.iter().all(|&v| v == 2.0));
        let m = edge_material_diagonal(&g, &sig);
        for e in 0..g.n_edges() {
            let expect = 2.0 * g.dual_area(e) / g.edge_length(e);
            assert!((m[e] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn two_material_edge_averages_by_volume() {
        // Split the unit cube at x = 0.5: material a left, b right. An edge
        // on the interface plane (y- or z-directed at x = 0.5) sees a 50/50
        // volumetric average.
        let g = uniform_grid();
        let mut paint = CellPaint::new(&g, MaterialId(0));
        paint.paint(
            &g,
            &BoxRegion::new((0.5, 0.0, 0.0), (1.0, 1.0, 1.0)),
            MaterialId(1),
        );
        let table = simple_table();
        let ct = vec![300.0; g.n_cells()];
        let lam = cell_property(&g, &paint, &table, &ct, Property::Thermal);
        let m = edge_material_diagonal(&g, &lam);
        // y-edge at (i=1 (x=0.5), j=0, k=1 (z=0.5, interior)):
        let e = g.y_edge_index(1, 0, 1);
        let expect_avg = 0.5 * (4.0 + 8.0);
        let expect = expect_avg * g.dual_area(e) / g.edge_length(e);
        assert!((m[e] - expect).abs() < 1e-12, "{} vs {expect}", m[e]);
    }

    #[test]
    fn capacitance_sums_to_total_heat_capacity() {
        let g = uniform_grid();
        let mut paint = CellPaint::new(&g, MaterialId(0));
        paint.paint(
            &g,
            &BoxRegion::new((0.0, 0.0, 0.0), (0.5, 1.0, 1.0)),
            MaterialId(1),
        );
        let table = simple_table();
        let cap = node_capacitance_diagonal(&g, &paint, &table);
        let total: f64 = cap.iter().sum();
        // Total = Σ_cells ρc · V_cell = 0.5·20 + 0.5·10.
        assert!((total - 15.0).abs() < 1e-12);
        assert!(cap.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn temperature_dependence_propagates_to_edges() {
        let g = uniform_grid();
        let paint = CellPaint::new(&g, MaterialId(0));
        let mut table = MaterialTable::new();
        table.add(library::copper());
        let hot = vec![500.0; g.n_cells()];
        let cold = vec![300.0; g.n_cells()];
        let m_hot = edge_material_diagonal(
            &g,
            &cell_property(&g, &paint, &table, &hot, Property::Electrical),
        );
        let m_cold = edge_material_diagonal(
            &g,
            &cell_property(&g, &paint, &table, &cold, Property::Electrical),
        );
        for e in 0..g.n_edges() {
            assert!(m_hot[e] < m_cold[e]);
        }
    }
}
