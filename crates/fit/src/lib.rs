//! Finite Integration Technique (FIT) discretization of the coupled
//! electrothermal problem (paper §III-A).
//!
//! Discrete unknowns live on the primary grid nodes: potentials `Φ` and
//! temperatures `T`. This crate turns a painted grid plus a material table
//! into the diagonal FIT material matrices and the operators of the discrete
//! electrothermal "house" (paper Fig. 1):
//!
//! * [`matrices`] — `Mσ`, `Mλ` (edge diagonal, `σᵢÃᵢ/ℓᵢ`) with volumetric
//!   averaging of cell properties, and `Mρc` (node diagonal, `ρcⱼṼⱼ`),
//! * [`dofmap`] — Dirichlet (PEC) elimination and the reduced-system
//!   [`Stamper`],
//! * [`boundary`] — convective (Robin) and radiative boundary operators with
//!   the exact algebraic linearization
//!   `T⁴ − T∞⁴ = (T² + T∞²)(T + T∞)(T − T∞)`,
//! * [`joule`] — the cell-based Joule power `Q_el` of the paper (voltages
//!   interpolated to cell centers, powers scattered to nodes) and an
//!   edge-based variant for the ablation study,
//! * [`eqs`] — the electroquasistatic generalization (paper §II-A:
//!   "straightforward"): displacement currents via `Mε`, implicit-Euler
//!   charge-relaxation transients, and the stationary limit.

#![forbid(unsafe_code)]

pub mod boundary;
pub mod dofmap;
pub mod eqs;
pub mod joule;
pub mod matrices;

pub use dofmap::{Assembler, CachedStamper, DofMap, Stamper};
pub use eqs::{charge_relaxation_time, EqsSolver, EPSILON_0};
