//! Electroquasistatic (EQS) field problem.
//!
//! The paper treats the *stationary* current problem `−∇·σ(T)∇φ = 0` and
//! notes that "a generalization to electroquasistatics is straightforward"
//! (§II-A). This module is that generalization: capacitive displacement
//! currents are retained,
//!
//! ```text
//! −∇·( σ ∇φ  +  ∂/∂t ε ∇φ ) = 0,
//! ```
//!
//! which after FIT discretization becomes
//! `S̃ Mσ S̃ᵀ Φ + d/dt (S̃ Mε S̃ᵀ Φ) = 0` with the permittivity matrix `Mε`
//! built by exactly the same edge/dual-facet averaging as `Mσ` (paper
//! §III-A). Time is discretized by the implicit Euler method, consistent
//! with the thermal transient.
//!
//! The EQS problem matters for packages whenever the mold compound's charge
//! relaxation time `ε/σ` is *not* negligible — for epoxy
//! (`σ = 1e−6 S/m`, `ε_r ≈ 4`) it is ~35 µs, far below the 50 s thermal
//! transient, which *justifies* the paper's stationary-current assumption.
//! The [`charge_relaxation_time`] helper and the `eqs_validation`
//! integration test quantify that argument.

use crate::dofmap::{DofMap, Stamper};
use crate::matrices::edge_material_diagonal;
use etherm_grid::{CellPaint, Grid3};
use etherm_numerics::solvers::{pcg, CgOptions, JacobiPrecond, SolveReport};
use etherm_numerics::NumericsError;

/// Vacuum permittivity `ε₀` in F/m.
pub const EPSILON_0: f64 = 8.854_187_812_8e-12;

/// Per-cell absolute permittivity `ε = ε₀ ε_r` from a relative-permittivity
/// table indexed by material id.
///
/// # Panics
///
/// Panics if the paint size mismatches the grid or a material id exceeds
/// the table.
pub fn cell_permittivity(grid: &Grid3, paint: &CellPaint, eps_r: &[f64]) -> Vec<f64> {
    assert_eq!(paint.n_cells(), grid.n_cells(), "cell_permittivity: paint");
    (0..grid.n_cells())
        .map(|c| {
            let id = paint.material(c).0 as usize;
            assert!(
                id < eps_r.len(),
                "cell_permittivity: material id {id} has no ε_r entry"
            );
            EPSILON_0 * eps_r[id]
        })
        .collect()
}

/// Charge relaxation time `τ = ε/σ` of a homogeneous medium in seconds.
///
/// When `τ` is small against the timescale of interest, the EQS problem
/// collapses to the stationary current problem the paper uses.
pub fn charge_relaxation_time(eps: f64, sigma: f64) -> f64 {
    eps / sigma
}

/// An implicit-Euler electroquasistatic field solver on a fixed grid with
/// frozen material coefficients.
///
/// The conductivity may come from the current temperature field (the EQS
/// problem is usually stepped inside a thermal transient where `σ(T)` is
/// lagged); rebuild the solver when the coefficients change.
#[derive(Debug, Clone)]
pub struct EqsSolver {
    /// Edge conductances `Mσ,ii = σᵢ Ãᵢ/ℓᵢ` (S).
    g_sigma: Vec<f64>,
    /// Edge capacitances `Mε,ii = εᵢ Ãᵢ/ℓᵢ` (F).
    c_eps: Vec<f64>,
    /// Edge endpoints (full node numbering).
    endpoints: Vec<(usize, usize)>,
    n_nodes: usize,
}

impl EqsSolver {
    /// Builds the solver from per-cell conductivity and permittivity fields.
    ///
    /// # Panics
    ///
    /// Panics if the property vectors do not have one entry per grid cell.
    pub fn new(grid: &Grid3, sigma_cell: &[f64], eps_cell: &[f64]) -> Self {
        assert_eq!(sigma_cell.len(), grid.n_cells(), "EqsSolver: sigma length");
        assert_eq!(eps_cell.len(), grid.n_cells(), "EqsSolver: eps length");
        let g_sigma = edge_material_diagonal(grid, sigma_cell);
        let c_eps = edge_material_diagonal(grid, eps_cell);
        let endpoints = (0..grid.n_edges()).map(|e| grid.edge_endpoints(e)).collect();
        EqsSolver {
            g_sigma,
            c_eps,
            endpoints,
            n_nodes: grid.n_nodes(),
        }
    }

    /// Number of grid nodes (full DoFs).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Advances one implicit-Euler step of length `dt`:
    /// `(Kσ + Kε/Δt) Φⁿ⁺¹ = (Kε/Δt) Φⁿ` with the Dirichlet constraints of
    /// `map` imposed at the *new* time level.
    ///
    /// Returns the full potential vector at the new time and the linear
    /// solve report.
    ///
    /// # Errors
    ///
    /// Returns an error if the PCG solve fails (the system is SPD, so this
    /// indicates a degenerate grid or non-positive coefficients).
    ///
    /// # Panics
    ///
    /// Panics if `phi_old.len() != n_nodes()` / map size mismatch, or if
    /// `dt` is not positive.
    pub fn step(
        &self,
        map: &DofMap,
        phi_old: &[f64],
        dt: f64,
    ) -> Result<(Vec<f64>, SolveReport), NumericsError> {
        assert_eq!(phi_old.len(), self.n_nodes, "EqsSolver::step: phi length");
        assert_eq!(map.n_full(), self.n_nodes, "EqsSolver::step: map size");
        assert!(dt > 0.0 && dt.is_finite(), "EqsSolver::step: dt must be > 0");

        let mut st = Stamper::new(map);
        for (e, &(a, b)) in self.endpoints.iter().enumerate() {
            let g_eff = self.g_sigma[e] + self.c_eps[e] / dt;
            st.add_conductance(a, b, g_eff);
            // RHS: (Kε/Δt) Φⁿ, stamped edge by edge:
            // (K Φ)_a = Σ g (Φ_a − Φ_b), (K Φ)_b = −(K Φ)_a.
            let i_cap = self.c_eps[e] / dt * (phi_old[a] - phi_old[b]);
            st.add_rhs(a, i_cap);
            st.add_rhs(b, -i_cap);
        }
        let (a_mat, rhs) = st.finish();
        let precond = JacobiPrecond::new(&a_mat)?;
        // Warm start from the restricted previous potential.
        let mut x = map.restrict(phi_old);
        let report = pcg(&a_mat, &rhs, &mut x, &precond, &CgOptions::default())?;
        Ok((map.expand(&x), report))
    }

    /// Solves the stationary limit `Kσ Φ = 0` with the given Dirichlet
    /// constraints (the paper's §II-A problem; the `t → ∞` state of the EQS
    /// transient).
    ///
    /// # Errors
    ///
    /// Returns an error if the PCG solve fails.
    ///
    /// # Panics
    ///
    /// Panics if the map size mismatches the grid.
    pub fn stationary(&self, map: &DofMap) -> Result<(Vec<f64>, SolveReport), NumericsError> {
        assert_eq!(map.n_full(), self.n_nodes, "EqsSolver::stationary: map");
        let mut st = Stamper::new(map);
        for (e, &(a, b)) in self.endpoints.iter().enumerate() {
            st.add_conductance(a, b, self.g_sigma[e]);
        }
        let (a_mat, rhs) = st.finish();
        let precond = JacobiPrecond::new(&a_mat)?;
        let mut x = vec![0.0; map.n_reduced()];
        let report = pcg(&a_mat, &rhs, &mut x, &precond, &CgOptions::default())?;
        Ok((map.expand(&x), report))
    }

    /// Instantaneous capacitive response: the `Δt → 0` limit
    /// `Kε Φ = Kε Φⁿ`, i.e. the potential right after a voltage step, before
    /// any conduction current has flowed.
    ///
    /// # Errors
    ///
    /// Returns an error if the PCG solve fails.
    ///
    /// # Panics
    ///
    /// Panics on size mismatches.
    pub fn capacitive_snapshot(
        &self,
        map: &DofMap,
        phi_old: &[f64],
    ) -> Result<(Vec<f64>, SolveReport), NumericsError> {
        assert_eq!(phi_old.len(), self.n_nodes, "capacitive_snapshot: phi");
        assert_eq!(map.n_full(), self.n_nodes, "capacitive_snapshot: map");
        let mut st = Stamper::new(map);
        for (e, &(a, b)) in self.endpoints.iter().enumerate() {
            st.add_conductance(a, b, self.c_eps[e]);
            let q = self.c_eps[e] * (phi_old[a] - phi_old[b]);
            st.add_rhs(a, q);
            st.add_rhs(b, -q);
        }
        let (a_mat, rhs) = st.finish();
        let precond = JacobiPrecond::new(&a_mat)?;
        let mut x = map.restrict(phi_old);
        let report = pcg(&a_mat, &rhs, &mut x, &precond, &CgOptions::default())?;
        Ok((map.expand(&x), report))
    }

    /// Total conduction current (A) flowing out of the node set `nodes`
    /// for potential `phi` — the discrete `∮ σ∇φ · dA` over the set's dual
    /// surface. Used to audit terminal currents.
    ///
    /// # Panics
    ///
    /// Panics if `phi.len() != n_nodes()` or a node index is out of bounds.
    pub fn terminal_current(&self, nodes: &[usize], phi: &[f64]) -> f64 {
        assert_eq!(phi.len(), self.n_nodes, "terminal_current: phi length");
        let mut inset = vec![false; self.n_nodes];
        for &n in nodes {
            assert!(n < self.n_nodes, "terminal_current: node {n} out of range");
            inset[n] = true;
        }
        let mut current = 0.0;
        for (e, &(a, b)) in self.endpoints.iter().enumerate() {
            match (inset[a], inset[b]) {
                (true, false) => current += self.g_sigma[e] * (phi[a] - phi[b]),
                (false, true) => current += self.g_sigma[e] * (phi[b] - phi[a]),
                _ => {}
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_grid::Axis;

    /// 1D bar of `n` cells along x (one cell in y and z).
    fn bar_grid(n: usize) -> Grid3 {
        Grid3::new(
            Axis::uniform(0.0, 1.0, n).unwrap(),
            Axis::uniform(0.0, 1.0, 1).unwrap(),
            Axis::uniform(0.0, 1.0, 1).unwrap(),
        )
    }

    /// Dirichlet map fixing the x=0 plane to `v0` and the x=1 plane to `v1`.
    fn end_plane_map(grid: &Grid3, v0: f64, v1: f64) -> DofMap {
        let (nx, _, _) = grid.node_dims();
        let mut fixed = Vec::new();
        for n in 0..grid.n_nodes() {
            let (i, _, _) = grid.node_coords_of(n);
            if i == 0 {
                fixed.push((n, v0));
            } else if i == nx - 1 {
                fixed.push((n, v1));
            }
        }
        DofMap::new(grid.n_nodes(), &fixed)
    }

    #[test]
    fn stationary_limit_is_linear_potential() {
        let grid = bar_grid(8);
        let sigma = vec![3.0; grid.n_cells()];
        let eps = vec![1.0; grid.n_cells()];
        let solver = EqsSolver::new(&grid, &sigma, &eps);
        let map = end_plane_map(&grid, 0.0, 1.0);
        let (phi, rep) = solver.stationary(&map).unwrap();
        assert!(rep.converged);
        for n in 0..grid.n_nodes() {
            let (x, _, _) = grid.node_position(n);
            assert!((phi[n] - x).abs() < 1e-8, "node {n}: {} vs {x}", phi[n]);
        }
    }

    #[test]
    fn homogeneous_medium_has_no_transient() {
        // With σ and ε proportional, Kσ and Kε share eigenvectors and the
        // potential is stationary from the first step.
        let grid = bar_grid(6);
        let sigma = vec![2.0; grid.n_cells()];
        let eps = vec![5.0; grid.n_cells()];
        let solver = EqsSolver::new(&grid, &sigma, &eps);
        let map = end_plane_map(&grid, 0.0, 2.0);
        let phi0 = vec![0.0; grid.n_nodes()];
        let (phi1, _) = solver.step(&map, &phi0, 1e-3).unwrap();
        let (phi2, _) = solver.step(&map, &phi1, 1e-3).unwrap();
        for n in 0..grid.n_nodes() {
            assert!((phi1[n] - phi2[n]).abs() < 1e-8, "node {n}");
        }
    }

    #[test]
    fn two_layer_bar_relaxes_with_maxwell_wagner_time() {
        // Layer 1 on [0, 0.5]: σ1, ε1; layer 2 on [0.5, 1]: σ2, ε2.
        // Interface potential: u(t) = u∞ + (u0 − u∞) e^{−t/τ},
        // u0 = V·C2/(C1+C2), u∞ = V·G2/(G1+G2), τ = (C1+C2)/(G1+G2).
        let n = 8; // even → interface at a node plane
        let grid = bar_grid(n);
        let (s1, s2) = (1.0, 4.0);
        let (e1, e2) = (3.0, 1.0);
        let sigma: Vec<f64> = (0..grid.n_cells())
            .map(|c| if grid.cell_center(c).0 < 0.5 { s1 } else { s2 })
            .collect();
        let eps: Vec<f64> = (0..grid.n_cells())
            .map(|c| if grid.cell_center(c).0 < 0.5 { e1 } else { e2 })
            .collect();
        let solver = EqsSolver::new(&grid, &sigma, &eps);
        let v = 1.0;
        let map = end_plane_map(&grid, 0.0, v);

        // Per-layer lumped parameters (unit area, lengths 0.5).
        let (g1, g2) = (s1 / 0.5, s2 / 0.5);
        let (c1, c2) = (e1 / 0.5, e2 / 0.5);
        let u0 = v * c2 / (c1 + c2);
        let u_inf = v * g2 / (g1 + g2);
        let tau = (c1 + c2) / (g1 + g2);

        // Interface node on the centerline.
        let interface = grid.nearest_node(0.5, 0.0, 0.0);
        assert!((grid.node_position(interface).0 - 0.5).abs() < 1e-12);

        // Step with dt << τ; compare against the analytic relaxation.
        let dt = tau / 400.0;
        let mut phi = vec![0.0; grid.n_nodes()];
        let mut t = 0.0;
        // Skip the very first instants (the discrete capacitive jump needs
        // a few steps), then track the decay over ~2τ.
        let mut checked = 0;
        for step in 1..=800 {
            let (next, rep) = solver.step(&map, &phi, dt).unwrap();
            assert!(rep.converged);
            phi = next;
            t += dt;
            if step % 100 == 0 {
                let exact = u_inf + (u0 - u_inf) * (-t / tau).exp();
                let got = phi[interface];
                assert!(
                    (got - exact).abs() < 0.01 * v,
                    "t/τ = {:.2}: got {got:.5}, exact {exact:.5}",
                    t / tau
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 8);
        // At t = 2τ the decay retains e⁻² ≈ 13.5 % of the initial offset.
        let exact_end = u_inf + (u0 - u_inf) * (-t / tau).exp();
        assert!((phi[interface] - exact_end).abs() < 0.01 * v);
    }

    #[test]
    fn capacitive_snapshot_matches_divider() {
        let n = 8;
        let grid = bar_grid(n);
        let (e1, e2) = (3.0, 1.0);
        let sigma = vec![1.0; grid.n_cells()];
        let eps: Vec<f64> = (0..grid.n_cells())
            .map(|c| if grid.cell_center(c).0 < 0.5 { e1 } else { e2 })
            .collect();
        let solver = EqsSolver::new(&grid, &sigma, &eps);
        let v = 2.0;
        let map = end_plane_map(&grid, 0.0, v);
        let phi0 = vec![0.0; grid.n_nodes()];
        let (phi, rep) = solver.capacitive_snapshot(&map, &phi0).unwrap();
        assert!(rep.converged);
        let interface = grid.nearest_node(0.5, 0.0, 0.0);
        let (c1, c2) = (e1 / 0.5, e2 / 0.5);
        let u0 = v * c2 / (c1 + c2);
        assert!(
            (phi[interface] - u0).abs() < 1e-6,
            "{} vs {u0}",
            phi[interface]
        );
    }

    #[test]
    fn terminal_current_matches_ohms_law() {
        let grid = bar_grid(10);
        let sigma = vec![2.0; grid.n_cells()];
        let eps = vec![1.0; grid.n_cells()];
        let solver = EqsSolver::new(&grid, &sigma, &eps);
        let map = end_plane_map(&grid, 0.0, 1.0);
        let (phi, _) = solver.stationary(&map).unwrap();
        // Left terminal: x=0 plane nodes. Bar: R = L/(σA) = 1/2 → I = 2.
        let left: Vec<usize> = (0..grid.n_nodes())
            .filter(|&n| grid.node_coords_of(n).0 == 0)
            .collect();
        let i = solver.terminal_current(&left, &phi);
        assert!((i + 2.0).abs() < 1e-8, "current {i}"); // flows *into* x=0
        let right: Vec<usize> = (0..grid.n_nodes())
            .filter(|&n| grid.node_coords_of(n).0 == grid.node_dims().0 - 1)
            .collect();
        let i = solver.terminal_current(&right, &phi);
        assert!((i - 2.0).abs() < 1e-8, "current {i}");
    }

    #[test]
    fn relaxation_time_helper() {
        // Epoxy: τ = ε0·4 / 1e-6 ≈ 35 µs.
        let tau = charge_relaxation_time(4.0 * EPSILON_0, 1e-6);
        assert!(tau > 3e-5 && tau < 4e-5, "τ = {tau}");
    }

    #[test]
    fn cell_permittivity_maps_material_ids() {
        use etherm_grid::{BoxRegion, CellPaint, MaterialId};
        let grid = bar_grid(2);
        let mut paint = CellPaint::new(&grid, MaterialId(0));
        paint.paint(
            &grid,
            &BoxRegion::new((0.5, 0.0, 0.0), (1.0, 1.0, 1.0)),
            MaterialId(1),
        );
        let eps = cell_permittivity(&grid, &paint, &[1.0, 4.0]);
        let lo = grid
            .cell_center(0)
            .0
            .min(grid.cell_center(1).0);
        for c in 0..grid.n_cells() {
            let want = if (grid.cell_center(c).0 - lo).abs() < 1e-12 {
                EPSILON_0
            } else {
                4.0 * EPSILON_0
            };
            assert!((eps[c] - want).abs() < 1e-24);
        }
    }

    #[test]
    #[should_panic(expected = "dt must be > 0")]
    fn step_rejects_bad_dt() {
        let grid = bar_grid(2);
        let solver = EqsSolver::new(&grid, &[1.0; 2], &[1.0; 2]);
        let map = DofMap::unconstrained(grid.n_nodes());
        let phi = vec![0.0; grid.n_nodes()];
        let _ = solver.step(&map, &phi, 0.0);
    }
}
