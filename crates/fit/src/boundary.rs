//! Convective and radiative thermal boundary conditions.
//!
//! The paper models heat exchange with the environment through boundary dual
//! facets (§II-B):
//!
//! * convection: `q_conv = h (T_bnd − T∞)` per unit area,
//! * radiation: `q_rad = ε σ_SB (T_bnd⁴ − T∞⁴)` per unit area.
//!
//! Convection is linear and stamps `h·Ã` onto the diagonal plus `h·Ã·T∞`
//! onto the RHS (a Robin condition). Radiation is nonlinear; we use the
//! exact factorization `T⁴ − T∞⁴ = (T² + T∞²)(T + T∞)(T − T∞)` and lag the
//! first two factors at the previous Picard iterate, which yields a
//! Robin-type stamp with the effective coefficient
//! `h_rad(T*) = ε σ_SB (T*² + T∞²)(T* + T∞)` — unconditionally positive, so
//! the system stays SPD.

use crate::dofmap::Assembler;
use etherm_grid::{Face, Grid3};
use etherm_materials::STEFAN_BOLTZMANN;

/// Thermal boundary condition applied on a set of outer faces.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalBoundary {
    /// Heat transfer coefficient `h` in W/(m²·K); 0 disables convection.
    pub heat_transfer_coefficient: f64,
    /// Emissivity `ε ∈ [0, 1]`; 0 disables radiation.
    pub emissivity: f64,
    /// Ambient temperature `T∞` (K).
    pub ambient: f64,
    /// Faces the condition applies to (all six in the paper).
    pub faces: Vec<Face>,
    /// Effective cooled-area fraction ∈ (0, 1]. Mounting fixtures, sockets
    /// and neighboring boards shade part of the surface; the paper does not
    /// publish its thermal environment, so this single scale factor is the
    /// calibration knob of the reproduction (see DESIGN.md §4). Default 1.
    pub area_scale: f64,
}

impl ThermalBoundary {
    /// The paper's configuration: convection with `h = 25 W/(m²K)` and
    /// radiation with `ε = 0.2475` on all faces, `T∞ = 300 K`.
    pub fn paper_default() -> Self {
        ThermalBoundary {
            heat_transfer_coefficient: 25.0,
            emissivity: 0.2475,
            ambient: 300.0,
            faces: Face::ALL.to_vec(),
            area_scale: 1.0,
        }
    }

    /// Adiabatic boundary (no heat exchange).
    pub fn adiabatic() -> Self {
        ThermalBoundary {
            heat_transfer_coefficient: 0.0,
            emissivity: 0.0,
            ambient: 300.0,
            faces: Face::ALL.to_vec(),
            area_scale: 1.0,
        }
    }

    /// Convection only (no radiation).
    pub fn convective(h: f64, ambient: f64) -> Self {
        ThermalBoundary {
            heat_transfer_coefficient: h,
            emissivity: 0.0,
            ambient,
            faces: Face::ALL.to_vec(),
            area_scale: 1.0,
        }
    }

    /// Whether this boundary exchanges any heat.
    pub fn is_active(&self) -> bool {
        (self.heat_transfer_coefficient > 0.0 || self.emissivity > 0.0)
            && !self.faces.is_empty()
    }

    /// Effective radiative Robin coefficient `ε σ_SB (T*²+T∞²)(T*+T∞)` at
    /// the lagged boundary temperature `t_star`.
    pub fn radiation_coefficient(&self, t_star: f64) -> f64 {
        if self.emissivity == 0.0 {
            return 0.0;
        }
        let t = t_star.max(0.0);
        let ta = self.ambient;
        self.emissivity * STEFAN_BOLTZMANN * (t * t + ta * ta) * (t + ta)
    }

    /// Stamps the linearized boundary operator into the thermal system.
    ///
    /// `t_star` is the previous Picard iterate of the *full* temperature
    /// vector (used only for the radiation linearization; pass the ambient
    /// temperature vector on the first iteration).
    ///
    /// # Panics
    ///
    /// Panics if `t_star.len() != grid.n_nodes()` or the assembler's DoF map
    /// does not cover the grid nodes.
    pub fn stamp<A: Assembler>(&self, grid: &Grid3, t_star: &[f64], stamper: &mut A) {
        assert_eq!(t_star.len(), grid.n_nodes(), "ThermalBoundary::stamp: t_star");
        if !self.is_active() {
            return;
        }
        let h = self.heat_transfer_coefficient;
        let ta = self.ambient;
        for n in 0..grid.n_nodes() {
            if !grid.is_boundary_node(n) {
                continue;
            }
            let mut area = 0.0;
            for &face in &self.faces {
                area += grid.boundary_area(n, face);
            }
            area *= self.area_scale;
            if area == 0.0 {
                continue;
            }
            let coeff = (h + self.radiation_coefficient(t_star[n])) * area;
            stamper.add_diag(n, coeff);
            stamper.add_rhs(n, coeff * ta);
        }
    }

    /// Total outgoing boundary heat flow (W) for a given temperature field —
    /// the *exact* nonlinear expression, used for energy-balance checks and
    /// reporting.
    ///
    /// # Panics
    ///
    /// Panics if `t.len() != grid.n_nodes()`.
    pub fn outgoing_power(&self, grid: &Grid3, t: &[f64]) -> f64 {
        assert_eq!(t.len(), grid.n_nodes(), "outgoing_power: length");
        let mut total = 0.0;
        for n in 0..grid.n_nodes() {
            if !grid.is_boundary_node(n) {
                continue;
            }
            let mut area = 0.0;
            for &face in &self.faces {
                area += grid.boundary_area(n, face);
            }
            area *= self.area_scale;
            if area == 0.0 {
                continue;
            }
            let conv = self.heat_transfer_coefficient * (t[n] - self.ambient);
            let rad = self.emissivity
                * STEFAN_BOLTZMANN
                * (t[n].powi(4) - self.ambient.powi(4));
            total += area * (conv + rad);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dofmap::{DofMap, Stamper};
    use etherm_grid::Axis;

    fn grid() -> Grid3 {
        Grid3::new(
            Axis::uniform(0.0, 1.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 2).unwrap(),
        )
    }

    #[test]
    fn paper_default_matches_table_ii() {
        let b = ThermalBoundary::paper_default();
        assert_eq!(b.heat_transfer_coefficient, 25.0);
        assert_eq!(b.emissivity, 0.2475);
        assert_eq!(b.ambient, 300.0);
        assert_eq!(b.faces.len(), 6);
        assert!(b.is_active());
    }

    #[test]
    fn adiabatic_is_inactive() {
        let b = ThermalBoundary::adiabatic();
        assert!(!b.is_active());
        let g = grid();
        let map = DofMap::unconstrained(g.n_nodes());
        let mut st = Stamper::new(&map);
        b.stamp(&g, &vec![300.0; g.n_nodes()], &mut st);
        let (a, rhs) = st.finish();
        assert!(a.diag().iter().all(|&d| d == 0.0));
        assert!(rhs.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn convection_stamp_balances_at_ambient() {
        // At T = T∞ everywhere, the stamped system satisfies A·T∞ = rhs on
        // boundary nodes: coeff·T∞ == coeff·T∞.
        let g = grid();
        let b = ThermalBoundary::convective(25.0, 300.0);
        let map = DofMap::unconstrained(g.n_nodes());
        let mut st = Stamper::new(&map);
        let t = vec![300.0; g.n_nodes()];
        b.stamp(&g, &t, &mut st);
        let (a, rhs) = st.finish();
        let at = a.matvec(&t);
        for i in 0..t.len() {
            assert!((at[i] - rhs[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn convection_coefficients_sum_to_h_times_surface() {
        let g = grid();
        let b = ThermalBoundary::convective(25.0, 300.0);
        let map = DofMap::unconstrained(g.n_nodes());
        let mut st = Stamper::new(&map);
        b.stamp(&g, &vec![300.0; g.n_nodes()], &mut st);
        let (a, _) = st.finish();
        let total: f64 = a.diag().iter().sum();
        assert!((total - 25.0 * 6.0).abs() < 1e-9); // unit cube surface = 6
    }

    #[test]
    fn radiation_coefficient_is_positive_and_monotone() {
        let b = ThermalBoundary::paper_default();
        let c300 = b.radiation_coefficient(300.0);
        let c500 = b.radiation_coefficient(500.0);
        assert!(c300 > 0.0);
        assert!(c500 > c300);
        // Exact linearization identity: h_rad(T)·(T − T∞) = εσ(T⁴ − T∞⁴).
        let t = 450.0;
        let lhs = b.radiation_coefficient(t) * (t - b.ambient);
        let rhs = b.emissivity * STEFAN_BOLTZMANN * (t.powi(4) - b.ambient.powi(4));
        assert!((lhs - rhs).abs() < 1e-9 * rhs.abs());
    }

    #[test]
    fn outgoing_power_zero_at_ambient() {
        let g = grid();
        let b = ThermalBoundary::paper_default();
        let t = vec![300.0; g.n_nodes()];
        assert_eq!(b.outgoing_power(&g, &t), 0.0);
        let hot = vec![400.0; g.n_nodes()];
        assert!(b.outgoing_power(&g, &hot) > 0.0);
        // Cooler than ambient → net incoming (negative outgoing).
        let cold = vec![250.0; g.n_nodes()];
        assert!(b.outgoing_power(&g, &cold) < 0.0);
    }

    #[test]
    fn face_restriction_limits_area() {
        let g = grid();
        let all = ThermalBoundary::convective(1.0, 300.0);
        let one = ThermalBoundary {
            faces: vec![Face::ZMax],
            ..ThermalBoundary::convective(1.0, 300.0)
        };
        let hot = vec![400.0; g.n_nodes()];
        let p_all = all.outgoing_power(&g, &hot);
        let p_one = one.outgoing_power(&g, &hot);
        assert!((p_all - 6.0 * p_one).abs() < 1e-9);
    }
}
