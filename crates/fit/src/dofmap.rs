//! Dirichlet elimination: mapping between full and reduced unknown vectors
//! and stamping into the reduced system.

use etherm_numerics::sparse::{Coo, Csr};

/// A partition of the full DoF vector into *free* unknowns and *fixed*
/// (Dirichlet) values, e.g. the PEC contact nodes held at `±V_dc`.
///
/// # Example
///
/// ```
/// use etherm_fit::DofMap;
///
/// // 4 DoFs, DoF 0 fixed at 1.0 and DoF 3 at -1.0.
/// let map = DofMap::new(4, &[(0, 1.0), (3, -1.0)]);
/// assert_eq!(map.n_reduced(), 2);
/// let full = map.expand(&[7.0, 8.0]);
/// assert_eq!(full, vec![1.0, 7.0, 8.0, -1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DofMap {
    n_full: usize,
    /// `full_to_reduced[i] = Some(r)` for free DoFs, `None` for fixed.
    full_to_reduced: Vec<Option<usize>>,
    /// Reduced index → full index.
    reduced_to_full: Vec<usize>,
    /// Dirichlet value for fixed DoFs (0 for free, by convention).
    fixed_values: Vec<f64>,
}

impl DofMap {
    /// Creates a map over `n_full` DoFs with the given `(index, value)`
    /// Dirichlet constraints. Duplicate indices keep the last value.
    ///
    /// # Panics
    ///
    /// Panics if a constraint index is out of bounds.
    pub fn new(n_full: usize, fixed: &[(usize, f64)]) -> Self {
        let mut is_fixed = vec![false; n_full];
        let mut fixed_values = vec![0.0; n_full];
        for &(i, v) in fixed {
            assert!(i < n_full, "DofMap: fixed index {i} out of bounds");
            is_fixed[i] = true;
            fixed_values[i] = v;
        }
        let mut full_to_reduced = vec![None; n_full];
        let mut reduced_to_full = Vec::with_capacity(n_full);
        for i in 0..n_full {
            if !is_fixed[i] {
                full_to_reduced[i] = Some(reduced_to_full.len());
                reduced_to_full.push(i);
            }
        }
        DofMap {
            n_full,
            full_to_reduced,
            reduced_to_full,
            fixed_values,
        }
    }

    /// A map with no constraints (identity).
    pub fn unconstrained(n_full: usize) -> Self {
        DofMap::new(n_full, &[])
    }

    /// Number of full DoFs.
    pub fn n_full(&self) -> usize {
        self.n_full
    }

    /// Number of free (reduced) DoFs.
    pub fn n_reduced(&self) -> usize {
        self.reduced_to_full.len()
    }

    /// Whether full DoF `i` is fixed.
    pub fn is_fixed(&self, i: usize) -> bool {
        self.full_to_reduced[i].is_none()
    }

    /// Reduced index of full DoF `i`, `None` when fixed.
    pub fn reduced_index(&self, i: usize) -> Option<usize> {
        self.full_to_reduced[i]
    }

    /// Full index of reduced DoF `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r ≥ n_reduced()`.
    pub fn full_index(&self, r: usize) -> usize {
        self.reduced_to_full[r]
    }

    /// Dirichlet value of full DoF `i` (0 for free DoFs).
    pub fn fixed_value(&self, i: usize) -> f64 {
        self.fixed_values[i]
    }

    /// Expands a reduced vector to the full numbering, inserting the fixed
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `reduced.len() != n_reduced()`.
    pub fn expand(&self, reduced: &[f64]) -> Vec<f64> {
        assert_eq!(reduced.len(), self.n_reduced(), "expand: length mismatch");
        let mut full = self.fixed_values.clone();
        for (r, &i) in self.reduced_to_full.iter().enumerate() {
            full[i] = reduced[r];
        }
        full
    }

    /// In-place variant of [`DofMap::expand`].
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn expand_into(&self, reduced: &[f64], full: &mut [f64]) {
        assert_eq!(reduced.len(), self.n_reduced(), "expand_into: reduced length");
        assert_eq!(full.len(), self.n_full, "expand_into: full length");
        full.copy_from_slice(&self.fixed_values);
        for (r, &i) in self.reduced_to_full.iter().enumerate() {
            full[i] = reduced[r];
        }
    }

    /// [`DofMap::expand_into`] with every fixed (Dirichlet) value multiplied
    /// by `scale` — the expansion counterpart of a load-scaled assembly (see
    /// `CachedStamper::set_dirichlet_scale`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn expand_scaled_into(&self, reduced: &[f64], full: &mut [f64], scale: f64) {
        assert_eq!(
            reduced.len(),
            self.n_reduced(),
            "expand_scaled_into: reduced length"
        );
        assert_eq!(full.len(), self.n_full, "expand_scaled_into: full length");
        for (slot, &v) in full.iter_mut().zip(&self.fixed_values) {
            *slot = scale * v;
        }
        for (r, &i) in self.reduced_to_full.iter().enumerate() {
            full[i] = reduced[r];
        }
    }

    /// Restricts a full vector to the free DoFs.
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != n_full()`.
    pub fn restrict(&self, full: &[f64]) -> Vec<f64> {
        let mut reduced = Vec::new();
        self.restrict_into(full, &mut reduced);
        reduced
    }

    /// In-place variant of [`DofMap::restrict`]; `reduced` is resized
    /// (reusing its capacity) and overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != n_full()`.
    pub fn restrict_into(&self, full: &[f64], reduced: &mut Vec<f64>) {
        assert_eq!(full.len(), self.n_full, "restrict: length mismatch");
        reduced.clear();
        reduced.extend(self.reduced_to_full.iter().map(|&i| full[i]));
    }
}

/// Assembles a symmetric reduced system `A x_f = b` by stamping
/// contributions in *full* DoF numbering; Dirichlet couplings are moved to
/// the right-hand side on the fly (static condensation of the constraint).
///
/// For a conductance `g` between full DoFs `a` (free) and `b` (fixed at
/// `v_b`): the reduced row of `a` gains `+g` on the diagonal and the RHS
/// gains `+g·v_b` — which is exactly the elimination
/// `A_ff x_f = b_f − A_fc x_c`.
#[derive(Debug, Clone)]
pub struct Stamper<'a> {
    map: &'a DofMap,
    coo: Coo,
    rhs: Vec<f64>,
}

impl<'a> Stamper<'a> {
    /// Creates an empty stamper for the given DoF map.
    pub fn new(map: &'a DofMap) -> Self {
        let n = map.n_reduced();
        let mut coo = Coo::with_capacity(n, n, 8 * n);
        // Structural diagonal so `add_diag`-style updates always land.
        for i in 0..n {
            coo.push_structural(i, i, 0.0);
        }
        Stamper {
            map,
            coo,
            rhs: vec![0.0; n],
        }
    }

    /// The DoF map this stamper condenses against.
    pub fn map(&self) -> &DofMap {
        self.map
    }

    /// Stamps a two-terminal conductance `g` between full DoFs `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a`/`b` are out of bounds.
    pub fn add_conductance(&mut self, a: usize, b: usize, g: f64) {
        if g == 0.0 {
            return;
        }
        let ra = self.map.reduced_index(a);
        let rb = self.map.reduced_index(b);
        match (ra, rb) {
            (Some(ia), Some(ib)) => {
                self.coo.stamp_conductance(ia, ib, g);
            }
            (Some(ia), None) => {
                self.coo.push(ia, ia, g);
                self.rhs[ia] += g * self.map.fixed_value(b);
            }
            (None, Some(ib)) => {
                self.coo.push(ib, ib, g);
                self.rhs[ib] += g * self.map.fixed_value(a);
            }
            (None, None) => {}
        }
    }

    /// Adds `v` to the diagonal of full DoF `i` (ignored when fixed).
    pub fn add_diag(&mut self, i: usize, v: f64) {
        if let Some(r) = self.map.reduced_index(i) {
            self.coo.push(r, r, v);
        }
    }

    /// Adds `q` to the right-hand side of full DoF `i` (ignored when fixed).
    pub fn add_rhs(&mut self, i: usize, q: f64) {
        if let Some(r) = self.map.reduced_index(i) {
            self.rhs[r] += q;
        }
    }

    /// Finishes assembly, returning the reduced CSR matrix and RHS.
    pub fn finish(self) -> (Csr, Vec<f64>) {
        (Csr::from_coo(&self.coo), self.rhs)
    }
}

/// A sink for FIT stamping operations, implemented by both the one-shot
/// [`Stamper`] and the pattern-reusing [`CachedStamper`]. Boundary and wire
/// stamps are written against this trait so both assembly paths share one
/// implementation.
pub trait Assembler {
    /// Stamps a two-terminal conductance between full DoFs `a` and `b`.
    fn add_conductance(&mut self, a: usize, b: usize, g: f64);
    /// Adds `v` to the diagonal of full DoF `i` (ignored when fixed).
    fn add_diag(&mut self, i: usize, v: f64);
    /// Adds `q` to the right-hand side of full DoF `i` (ignored when fixed).
    fn add_rhs(&mut self, i: usize, q: f64);
}

impl<'a> Assembler for Stamper<'a> {
    fn add_conductance(&mut self, a: usize, b: usize, g: f64) {
        Stamper::add_conductance(self, a, b, g);
    }
    fn add_diag(&mut self, i: usize, v: f64) {
        Stamper::add_diag(self, i, v);
    }
    fn add_rhs(&mut self, i: usize, q: f64) {
        Stamper::add_rhs(self, i, q);
    }
}

impl Assembler for CachedStamper {
    fn add_conductance(&mut self, a: usize, b: usize, g: f64) {
        CachedStamper::add_conductance(self, a, b, g);
    }
    fn add_diag(&mut self, i: usize, v: f64) {
        CachedStamper::add_diag(self, i, v);
    }
    fn add_rhs(&mut self, i: usize, q: f64) {
        CachedStamper::add_rhs(self, i, q);
    }
}

/// A reusable assembly: records the CSR sparsity pattern and the triplet →
/// value-slot mapping on the first round, then re-fills values in place on
/// every later round without sorting.
///
/// The FIT Picard loop reassembles structurally identical systems dozens of
/// times per time step (only the *values* of the temperature-dependent
/// coefficients change), and a Monte Carlo sweep repeats that for every
/// sample. Recording the stamping order once and scattering values directly
/// into the cached CSR turns each reassembly from `O(nnz log nnz)` sorting
/// into a linear sweep — the dominant cost of the coupled solver on
/// package-sized grids.
///
/// # Usage contract
///
/// Every round must issue the *same sequence* of stamping calls (same
/// entities in the same order); only the numeric values may change. The
/// solver guarantees this because its assembly loops are deterministic.
/// Violations are detected (slot-count mismatch) and panic.
#[derive(Debug, Clone)]
pub struct CachedStamper {
    n_reduced: usize,
    /// Dirichlet metadata copied from the map (owned, so the cache can be
    /// stored inside long-lived solvers without borrowing).
    reduced_index: Vec<Option<usize>>,
    fixed_values: Vec<f64>,
    /// Construction-time Dirichlet values; `fixed_values` is always
    /// `dirichlet_scale ×` this base (see
    /// [`CachedStamper::set_dirichlet_scale`]).
    fixed_values_base: Vec<f64>,
    dirichlet_scale: f64,
    /// Pattern + values once recorded.
    csr: Option<Csr>,
    /// Per emitted triplet: destination slot in `csr.values`.
    slots: Vec<usize>,
    /// First-round recording buffer.
    recording: Option<Coo>,
    recorded_triplets: Vec<(usize, usize)>,
    cursor: usize,
    rhs: Vec<f64>,
}

impl CachedStamper {
    /// Creates a cache for the given DoF map.
    pub fn new(map: &DofMap) -> Self {
        let n = map.n_reduced();
        let fixed_values: Vec<f64> = (0..map.n_full()).map(|i| map.fixed_value(i)).collect();
        CachedStamper {
            n_reduced: n,
            reduced_index: (0..map.n_full()).map(|i| map.reduced_index(i)).collect(),
            fixed_values_base: fixed_values.clone(),
            fixed_values,
            dirichlet_scale: 1.0,
            csr: None,
            slots: Vec::new(),
            recording: None,
            recorded_triplets: Vec::new(),
            cursor: 0,
            rhs: vec![0.0; n],
        }
    }

    /// Rescales every Dirichlet value to `scale ×` its construction-time
    /// value — load scaling without touching the recorded pattern. The
    /// condensed right-hand-side contributions of the *next* assembly round
    /// pick up the new values; a scale of exactly `1.0` restores the base
    /// values bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite.
    pub fn set_dirichlet_scale(&mut self, scale: f64) {
        assert!(scale.is_finite(), "Dirichlet scale must be finite, got {scale}");
        self.dirichlet_scale = scale;
        for (v, &b) in self.fixed_values.iter_mut().zip(&self.fixed_values_base) {
            *v = scale * b;
        }
    }

    /// The current Dirichlet scale (1.0 unless
    /// [`CachedStamper::set_dirichlet_scale`] changed it).
    pub fn dirichlet_scale(&self) -> f64 {
        self.dirichlet_scale
    }

    /// Starts a new assembly round (zeroing values and RHS).
    pub fn begin(&mut self) {
        self.cursor = 0;
        for r in self.rhs.iter_mut() {
            *r = 0.0;
        }
        match self.csr.as_mut() {
            Some(csr) => csr.zero_values(),
            None => {
                let mut coo = Coo::with_capacity(self.n_reduced, self.n_reduced, 8 * self.n_reduced);
                for i in 0..self.n_reduced {
                    coo.push_structural(i, i, 0.0);
                }
                self.recording = Some(coo);
                self.recorded_triplets.clear();
            }
        }
    }

    #[inline]
    fn emit(&mut self, r: usize, c: usize, v: f64) {
        if let Some(coo) = self.recording.as_mut() {
            coo.push_structural(r, c, v);
            self.recorded_triplets.push((r, c));
        } else {
            let csr = self.csr.as_mut().expect("begin() not called");
            assert!(
                self.cursor < self.slots.len(),
                "CachedStamper: more stamps than in the recorded round — \
                 use one CachedStamper per structurally distinct assembly"
            );
            let slot = self.slots[self.cursor];
            csr.values_mut()[slot] += v;
            self.cursor += 1;
        }
    }

    /// Stamps a two-terminal conductance `g` between full DoFs `a` and `b`.
    ///
    /// Unlike [`Stamper::add_conductance`], zero conductances are *not*
    /// skipped — the call sequence must stay structurally identical across
    /// rounds.
    ///
    /// # Panics
    ///
    /// Panics if `a`/`b` are out of bounds of the DoF map.
    pub fn add_conductance(&mut self, a: usize, b: usize, g: f64) {
        let ra = self.reduced_index[a];
        let rb = self.reduced_index[b];
        match (ra, rb) {
            (Some(ia), Some(ib)) => {
                self.emit(ia, ia, g);
                self.emit(ib, ib, g);
                self.emit(ia, ib, -g);
                self.emit(ib, ia, -g);
            }
            (Some(ia), None) => {
                self.emit(ia, ia, g);
                self.rhs[ia] += g * self.fixed_values[b];
            }
            (None, Some(ib)) => {
                self.emit(ib, ib, g);
                self.rhs[ib] += g * self.fixed_values[a];
            }
            (None, None) => {}
        }
    }

    /// Adds `v` to the diagonal of full DoF `i` (ignored when fixed).
    pub fn add_diag(&mut self, i: usize, v: f64) {
        if let Some(r) = self.reduced_index[i] {
            self.emit(r, r, v);
        }
    }

    /// Adds `q` to the right-hand side of full DoF `i` (ignored when fixed).
    pub fn add_rhs(&mut self, i: usize, q: f64) {
        if let Some(r) = self.reduced_index[i] {
            self.rhs[r] += q;
        }
    }

    /// Finishes the round, returning the assembled matrix and RHS.
    ///
    /// # Panics
    ///
    /// Panics if the stamping sequence deviated from the recorded one.
    pub fn finish(&mut self) -> (&Csr, &[f64]) {
        if let Some(coo) = self.recording.take() {
            let csr = Csr::from_coo(&coo);
            // Map every recorded triplet to its value slot.
            self.slots = self
                .recorded_triplets
                .iter()
                .map(|&(r, c)| csr.slot(r, c).expect("triplet present in pattern"))
                .collect();
            self.recorded_triplets = Vec::new();
            self.cursor = self.slots.len();
            self.csr = Some(csr);
        }
        assert_eq!(
            self.cursor,
            self.slots.len(),
            "CachedStamper: stamping sequence changed between rounds"
        );
        (self.csr.as_ref().expect("assembled"), &self.rhs)
    }

    /// The matrix and RHS of the most recently finished round, or `None`
    /// before the first [`CachedStamper::finish`]. Unlike `finish` this
    /// never compiles or mutates — it is a pure read, usable while other
    /// sessions' stampers are borrowed (the batched ensemble path gathers
    /// one assembled system per panel column through this accessor).
    pub fn assembled(&self) -> Option<(&Csr, &[f64])> {
        self.csr.as_ref().map(|a| (a, self.rhs.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexing_roundtrip() {
        let map = DofMap::new(5, &[(1, 2.0), (4, -3.0)]);
        assert_eq!(map.n_full(), 5);
        assert_eq!(map.n_reduced(), 3);
        assert!(map.is_fixed(1) && map.is_fixed(4));
        assert!(!map.is_fixed(0));
        for r in 0..map.n_reduced() {
            assert_eq!(map.reduced_index(map.full_index(r)), Some(r));
        }
        assert_eq!(map.fixed_value(1), 2.0);
        assert_eq!(map.fixed_value(4), -3.0);
        assert_eq!(map.fixed_value(0), 0.0);
    }

    #[test]
    fn expand_restrict_roundtrip() {
        let map = DofMap::new(4, &[(2, 9.0)]);
        let reduced = vec![1.0, 2.0, 3.0];
        let full = map.expand(&reduced);
        assert_eq!(full, vec![1.0, 2.0, 9.0, 3.0]);
        assert_eq!(map.restrict(&full), reduced);
        let mut buf = vec![0.0; 4];
        map.expand_into(&reduced, &mut buf);
        assert_eq!(buf, full);
    }

    #[test]
    fn duplicate_constraints_keep_last() {
        let map = DofMap::new(3, &[(0, 1.0), (0, 5.0)]);
        assert_eq!(map.fixed_value(0), 5.0);
        assert_eq!(map.n_reduced(), 2);
    }

    #[test]
    fn unconstrained_is_identity() {
        let map = DofMap::unconstrained(3);
        assert_eq!(map.n_reduced(), 3);
        assert_eq!(map.expand(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn stamper_matches_manual_elimination() {
        // 3-resistor chain 0-1-2-3 with g = 2, ends fixed: φ0 = 1, φ3 = 0.
        // Unknowns φ1, φ2: exact solution is the linear drop 2/3, 1/3.
        let map = DofMap::new(4, &[(0, 1.0), (3, 0.0)]);
        let mut st = Stamper::new(&map);
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3)] {
            st.add_conductance(a, b, 2.0);
        }
        let (a, b) = st.finish();
        assert!(a.is_symmetric(0.0));
        let x = a.to_dense().solve(&b).unwrap();
        assert!((x[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((x[1] - 1.0 / 3.0).abs() < 1e-12);
        let full = map.expand(&x);
        assert_eq!(full[0], 1.0);
        assert_eq!(full[3], 0.0);
    }

    #[test]
    fn stamps_between_fixed_nodes_are_dropped() {
        let map = DofMap::new(3, &[(0, 1.0), (1, 2.0)]);
        let mut st = Stamper::new(&map);
        st.add_conductance(0, 1, 5.0);
        st.add_diag(0, 7.0);
        st.add_rhs(1, 3.0);
        let (a, b) = st.finish();
        assert_eq!(a.n_rows(), 1);
        assert_eq!(a.get(0, 0), 0.0); // only the structural zero diagonal
        assert_eq!(b, vec![0.0]);
    }

    #[test]
    fn rhs_and_diag_stamping() {
        let map = DofMap::new(2, &[]);
        let mut st = Stamper::new(&map);
        st.add_diag(0, 4.0);
        st.add_diag(1, 5.0);
        st.add_rhs(0, 8.0);
        st.add_rhs(1, 10.0);
        let (a, b) = st.finish();
        let x = a.to_dense().solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn expand_scaled_scales_only_fixed_values() {
        let map = DofMap::new(4, &[(0, 2.0), (3, -1.0)]);
        let mut full = vec![0.0; 4];
        map.expand_scaled_into(&[7.0, 8.0], &mut full, 0.5);
        assert_eq!(full, vec![1.0, 7.0, 8.0, -0.5]);
        // Scale 1.0 is bit-identical to the plain expansion.
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        map.expand_into(&[7.0, 8.0], &mut a);
        map.expand_scaled_into(&[7.0, 8.0], &mut b, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn cached_stamper_dirichlet_scale_rescales_rhs() {
        // Chain 0-1-2 with ends fixed at ±1; the condensed RHS of the free
        // middle node is g·(v₀ + v₂) and must track the scale.
        let map = DofMap::new(3, &[(0, 1.0), (2, -3.0)]);
        let mut st = CachedStamper::new(&map);
        let round = |st: &mut CachedStamper| {
            st.begin();
            st.add_conductance(0, 1, 2.0);
            st.add_conductance(1, 2, 2.0);
            let (_, b) = st.finish();
            b.to_vec()
        };
        let b1 = round(&mut st);
        assert_eq!(b1, vec![2.0 * 1.0 + 2.0 * -3.0]);
        st.set_dirichlet_scale(0.5);
        assert_eq!(st.dirichlet_scale(), 0.5);
        let b_half = round(&mut st);
        assert_eq!(b_half, vec![0.5 * (2.0 * 1.0 + 2.0 * -3.0)]);
        // Restoring scale 1 restores the original RHS bit-for-bit.
        st.set_dirichlet_scale(1.0);
        assert_eq!(round(&mut st), b1);
    }

    #[test]
    fn zero_conductance_is_ignored() {
        let map = DofMap::new(2, &[]);
        let mut st = Stamper::new(&map);
        st.add_conductance(0, 1, 0.0);
        let (a, _) = st.finish();
        assert_eq!(a.nnz(), 2); // structural diagonal only
    }
}
