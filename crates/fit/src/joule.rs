//! Joule heating `Q_el` of the field model.
//!
//! The paper (§III-A) evaluates the Joule loss per primary cell: the edge
//! voltages are interpolated to the cell midpoints giving a cell E-field
//! `~E_k`, the power density is `Q_el,k = σ_k ~E_k · ~E_k`, and the cell
//! powers are averaged onto the primary nodes (each dual cell collects one
//! octant of each touching cell). An edge-based variant
//! (`P_e = Mσ,e · u_e²`, split between the edge endpoints) is provided for
//! the A2 ablation bench; both conserve total power exactly on uniform
//! fields but distribute it differently near material jumps.

use etherm_grid::{Direction, Grid3};

/// Total Joule power per primary cell (W), cell-based scheme.
///
/// `cell_sigma` holds the electrical conductivity per cell (already at the
/// lagged temperature), `phi` the full nodal potential vector.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn cell_joule_powers(grid: &Grid3, cell_sigma: &[f64], phi: &[f64]) -> Vec<f64> {
    assert_eq!(cell_sigma.len(), grid.n_cells(), "cell_joule_powers: sigma");
    assert_eq!(phi.len(), grid.n_nodes(), "cell_joule_powers: phi");
    let mut powers = vec![0.0; grid.n_cells()];
    for c in 0..grid.n_cells() {
        let edges = grid.cell_edges(c);
        // Average E-component over the four parallel edges per direction.
        let mut e2 = 0.0;
        for (block, _dir) in [(0usize, Direction::X), (4, Direction::Y), (8, Direction::Z)] {
            let mut comp = 0.0;
            for &e in &edges[block..block + 4] {
                let (a, b) = grid.edge_endpoints(e);
                comp += (phi[a] - phi[b]) / grid.edge_length(e);
            }
            comp *= 0.25;
            e2 += comp * comp;
        }
        powers[c] = cell_sigma[c] * e2 * grid.cell_volume(c);
    }
    powers
}

/// Scatters cell powers onto nodes: each of the 8 corner nodes receives
/// 1/8 of the cell power. Returns nodal heat (W).
///
/// # Panics
///
/// Panics if `cell_powers.len() != grid.n_cells()`.
pub fn scatter_cell_powers(grid: &Grid3, cell_powers: &[f64]) -> Vec<f64> {
    assert_eq!(cell_powers.len(), grid.n_cells(), "scatter: length");
    let mut q = vec![0.0; grid.n_nodes()];
    for c in 0..grid.n_cells() {
        let p8 = cell_powers[c] / 8.0;
        if p8 == 0.0 {
            continue;
        }
        for &n in &grid.cell_nodes(c) {
            q[n] += p8;
        }
    }
    q
}

/// Cell-based nodal Joule heat (W): [`cell_joule_powers`] followed by
/// [`scatter_cell_powers`].
pub fn joule_heat_cell_based(grid: &Grid3, cell_sigma: &[f64], phi: &[f64]) -> Vec<f64> {
    let mut q = Vec::new();
    joule_heat_cell_based_into(grid, cell_sigma, phi, &mut q);
    q
}

/// In-place variant of [`joule_heat_cell_based`] that fuses the cell-power
/// evaluation with the nodal scatter (no intermediate cell vector); `q` is
/// resized (reusing its capacity) and overwritten.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn joule_heat_cell_based_into(grid: &Grid3, cell_sigma: &[f64], phi: &[f64], q: &mut Vec<f64>) {
    assert_eq!(cell_sigma.len(), grid.n_cells(), "cell_joule_powers: sigma");
    assert_eq!(phi.len(), grid.n_nodes(), "cell_joule_powers: phi");
    q.clear();
    q.resize(grid.n_nodes(), 0.0);
    for c in 0..grid.n_cells() {
        let edges = grid.cell_edges(c);
        let mut e2 = 0.0;
        for block in [0usize, 4, 8] {
            let mut comp = 0.0;
            for &e in &edges[block..block + 4] {
                let (a, b) = grid.edge_endpoints(e);
                comp += (phi[a] - phi[b]) / grid.edge_length(e);
            }
            comp *= 0.25;
            e2 += comp * comp;
        }
        let p8 = cell_sigma[c] * e2 * grid.cell_volume(c) / 8.0;
        if p8 == 0.0 {
            continue;
        }
        for &n in &grid.cell_nodes(c) {
            q[n] += p8;
        }
    }
}

/// Edge-based nodal Joule heat (W): each edge dissipates
/// `P_e = Mσ,e · (φ_a − φ_b)²`, split half/half onto its endpoints.
///
/// `m_sigma` is the diagonal of the edge conductance matrix
/// (see [`crate::matrices::edge_material_diagonal`]).
///
/// # Panics
///
/// Panics on length mismatches.
pub fn joule_heat_edge_based(grid: &Grid3, m_sigma: &[f64], phi: &[f64]) -> Vec<f64> {
    let mut q = Vec::new();
    joule_heat_edge_based_into(grid, m_sigma, phi, &mut q);
    q
}

/// In-place variant of [`joule_heat_edge_based`]; `q` is resized (reusing
/// its capacity) and overwritten.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn joule_heat_edge_based_into(grid: &Grid3, m_sigma: &[f64], phi: &[f64], q: &mut Vec<f64>) {
    assert_eq!(m_sigma.len(), grid.n_edges(), "edge joule: m_sigma");
    assert_eq!(phi.len(), grid.n_nodes(), "edge joule: phi");
    q.clear();
    q.resize(grid.n_nodes(), 0.0);
    for e in 0..grid.n_edges() {
        if m_sigma[e] == 0.0 {
            continue;
        }
        let (a, b) = grid.edge_endpoints(e);
        let u = phi[a] - phi[b];
        let p = m_sigma[e] * u * u;
        q[a] += 0.5 * p;
        q[b] += 0.5 * p;
    }
}

/// Total electrical power dissipated according to the edge-based quadrature
/// `Σ_e Mσ,e u_e²` — identical to `Φᵀ K Φ` with the assembled stiffness, so
/// it is the discretely exact dissipation of the FIT system.
pub fn total_edge_power(grid: &Grid3, m_sigma: &[f64], phi: &[f64]) -> f64 {
    assert_eq!(m_sigma.len(), grid.n_edges(), "total_edge_power: m_sigma");
    let mut p = 0.0;
    for e in 0..grid.n_edges() {
        let (a, b) = grid.edge_endpoints(e);
        let u = phi[a] - phi[b];
        p += m_sigma[e] * u * u;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::edge_material_diagonal;
    use etherm_grid::Axis;

    /// Bar 1 m × 0.5 m × 0.25 m with σ = 4, linear potential along x.
    fn bar() -> (Grid3, Vec<f64>, Vec<f64>) {
        let g = Grid3::new(
            Axis::uniform(0.0, 1.0, 4).unwrap(),
            Axis::uniform(0.0, 0.5, 2).unwrap(),
            Axis::uniform(0.0, 0.25, 2).unwrap(),
        );
        let sigma = vec![4.0; g.n_cells()];
        let phi: Vec<f64> = (0..g.n_nodes())
            .map(|n| 10.0 * (1.0 - g.node_position(n).0))
            .collect();
        (g, sigma, phi)
    }

    #[test]
    fn uniform_field_power_matches_v2_over_r() {
        let (g, sigma, phi) = bar();
        // R = L/(σ·A) = 1/(4·0.125) = 2 Ω, V = 10 V → P = 50 W.
        let cell_p = cell_joule_powers(&g, &sigma, &phi);
        let total: f64 = cell_p.iter().sum();
        assert!((total - 50.0).abs() < 1e-9, "total {total}");
        // Edge-based agrees.
        let m = edge_material_diagonal(&g, &sigma);
        assert!((total_edge_power(&g, &m, &phi) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn scatter_conserves_power() {
        let (g, sigma, phi) = bar();
        let cell_p = cell_joule_powers(&g, &sigma, &phi);
        let nodal = scatter_cell_powers(&g, &cell_p);
        let sum_cells: f64 = cell_p.iter().sum();
        let sum_nodes: f64 = nodal.iter().sum();
        assert!((sum_cells - sum_nodes).abs() < 1e-9 * sum_cells);
    }

    #[test]
    fn cell_and_edge_based_agree_on_uniform_field() {
        let (g, sigma, phi) = bar();
        let qc = joule_heat_cell_based(&g, &sigma, &phi);
        let m = edge_material_diagonal(&g, &sigma);
        let qe = joule_heat_edge_based(&g, &m, &phi);
        let tc: f64 = qc.iter().sum();
        let te: f64 = qe.iter().sum();
        assert!((tc - te).abs() < 1e-9 * tc);
        // Interior nodes get identical heat in both schemes for a uniform
        // x-field; compare an interior node.
        let n = g.node_index(2, 1, 1);
        assert!((qc[n] - qe[n]).abs() < 1e-9 * qc[n].max(1e-12), "{} {}", qc[n], qe[n]);
    }

    #[test]
    fn zero_potential_means_zero_heat() {
        let (g, sigma, _) = bar();
        let phi = vec![0.0; g.n_nodes()];
        assert!(cell_joule_powers(&g, &sigma, &phi).iter().all(|&p| p == 0.0));
        let m = edge_material_diagonal(&g, &sigma);
        assert!(joule_heat_edge_based(&g, &m, &phi).iter().all(|&p| p == 0.0));
    }

    #[test]
    fn constant_potential_means_zero_heat() {
        let (g, sigma, _) = bar();
        let phi = vec![42.0; g.n_nodes()];
        let q = joule_heat_cell_based(&g, &sigma, &phi);
        assert!(q.iter().all(|&p| p.abs() < 1e-18));
    }

    #[test]
    fn transverse_components_add() {
        // Potential varying along y only: power from Ey.
        let g = Grid3::new(
            Axis::uniform(0.0, 1.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 2).unwrap(),
            Axis::uniform(0.0, 1.0, 2).unwrap(),
        );
        let sigma = vec![1.0; g.n_cells()];
        let phi: Vec<f64> = (0..g.n_nodes()).map(|n| g.node_position(n).1).collect();
        let total: f64 = cell_joule_powers(&g, &sigma, &phi).iter().sum();
        // |E| = 1, σ = 1, V = 1 → P = 1 W.
        assert!((total - 1.0).abs() < 1e-12);
    }
}
