//! Tests of the effective cooled-area fraction (`area_scale`).

use etherm_fit::boundary::ThermalBoundary;
use etherm_fit::{DofMap, Stamper};
use etherm_grid::{Axis, Grid3};

fn unit_grid() -> Grid3 {
    Grid3::new(
        Axis::uniform(0.0, 1.0, 2).unwrap(),
        Axis::uniform(0.0, 1.0, 2).unwrap(),
        Axis::uniform(0.0, 1.0, 2).unwrap(),
    )
}

#[test]
fn area_scale_scales_stamped_coefficients_linearly() {
    let g = unit_grid();
    let t = vec![300.0; g.n_nodes()];
    let total_diag = |scale: f64| -> f64 {
        let mut b = ThermalBoundary::convective(25.0, 300.0);
        b.area_scale = scale;
        let map = DofMap::unconstrained(g.n_nodes());
        let mut st = Stamper::new(&map);
        b.stamp(&g, &t, &mut st);
        let (a, _) = st.finish();
        a.diag().iter().sum()
    };
    let full = total_diag(1.0);
    let half = total_diag(0.5);
    let tenth = total_diag(0.1);
    assert!((full - 25.0 * 6.0).abs() < 1e-9); // unit cube surface
    assert!((half - 0.5 * full).abs() < 1e-9);
    assert!((tenth - 0.1 * full).abs() < 1e-9);
}

#[test]
fn area_scale_scales_outgoing_power() {
    let g = unit_grid();
    let hot = vec![400.0; g.n_nodes()];
    let mut b = ThermalBoundary::paper_default();
    let p_full = b.outgoing_power(&g, &hot);
    b.area_scale = 0.25;
    let p_quarter = b.outgoing_power(&g, &hot);
    assert!((p_quarter - 0.25 * p_full).abs() < 1e-9 * p_full);
}

#[test]
fn zero_scale_is_adiabatic() {
    let g = unit_grid();
    let mut b = ThermalBoundary::paper_default();
    b.area_scale = 0.0;
    let hot = vec![450.0; g.n_nodes()];
    assert_eq!(b.outgoing_power(&g, &hot), 0.0);
    // Stamping adds nothing.
    let map = DofMap::unconstrained(g.n_nodes());
    let mut st = Stamper::new(&map);
    b.stamp(&g, &hot, &mut st);
    let (a, rhs) = st.finish();
    assert!(a.diag().iter().all(|&d| d == 0.0));
    assert!(rhs.iter().all(|&r| r == 0.0));
}
