//! Equivalence tests: the pattern-cached stamper must produce bit-identical
//! systems to the one-shot stamper across repeated rounds.

use etherm_fit::{CachedStamper, DofMap, Stamper};
use proptest::prelude::*;

/// A deterministic stamping "program": conductances, diagonals, rhs terms.
#[derive(Debug, Clone)]
struct Program {
    n: usize,
    fixed: Vec<(usize, f64)>,
    conductances: Vec<(usize, usize, f64)>,
    diags: Vec<(usize, f64)>,
    rhs: Vec<(usize, f64)>,
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (4usize..12).prop_flat_map(|n| {
        let fixed = proptest::collection::vec((0..n, -2.0f64..2.0), 0..3);
        let cond = proptest::collection::vec((0..n, 0..n, 0.01f64..10.0), 1..30)
            .prop_map(|v| {
                v.into_iter()
                    .filter(|&(a, b, _)| a != b)
                    .collect::<Vec<_>>()
            });
        let diags = proptest::collection::vec((0..n, 0.0f64..5.0), 0..10);
        let rhs = proptest::collection::vec((0..n, -3.0f64..3.0), 0..10);
        (Just(n), fixed, cond, diags, rhs).prop_map(|(n, fixed, conductances, diags, rhs)| {
            Program {
                n,
                fixed,
                conductances,
                diags,
                rhs,
            }
        })
    })
}

fn run_once(map: &DofMap, p: &Program, scale: f64) -> (Vec<(usize, usize, f64)>, Vec<f64>) {
    let mut st = Stamper::new(map);
    for &(a, b, g) in &p.conductances {
        st.add_conductance(a, b, g * scale);
    }
    for &(i, v) in &p.diags {
        st.add_diag(i, v * scale);
    }
    for &(i, q) in &p.rhs {
        st.add_rhs(i, q * scale);
    }
    let (a, b) = st.finish();
    (a.iter().collect(), b)
}

proptest! {
    #[test]
    fn cached_matches_one_shot_over_rounds(p in program_strategy(), scales in proptest::collection::vec(0.1f64..5.0, 1..4)) {
        let map = DofMap::new(p.n, &p.fixed);
        let mut cache = CachedStamper::new(&map);
        for &scale in &scales {
            cache.begin();
            for &(a, b, g) in &p.conductances {
                cache.add_conductance(a, b, g * scale);
            }
            for &(i, v) in &p.diags {
                cache.add_diag(i, v * scale);
            }
            for &(i, q) in &p.rhs {
                cache.add_rhs(i, q * scale);
            }
            let (a_cached, b_cached) = {
                let (a, b) = cache.finish();
                (a.clone(), b.to_vec())
            };
            let (a_ref, _b_ref) = run_once(&map, &p, scale);
            // Same values at the reference entries (the cached pattern may
            // keep extra explicit zeros from pattern union).
            for (i, j, v) in a_ref {
                prop_assert!((a_cached.get(i, j) - v).abs() < 1e-12 * v.abs().max(1.0));
            }
            // And nothing extra that is nonzero.
            let reference = run_once(&map, &p, scale);
            let mut total_ref = 0.0;
            for &(_, _, v) in &reference.0 {
                total_ref += v;
            }
            let mut total_cached = 0.0;
            for (_, _, v) in a_cached.iter() {
                total_cached += v;
            }
            prop_assert!((total_ref - total_cached).abs() < 1e-9 * total_ref.abs().max(1.0));
            for (x, y) in b_cached.iter().zip(&reference.1) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }
}

#[test]
#[should_panic(expected = "stamping sequence changed")]
fn sequence_change_is_detected() {
    let map = DofMap::new(4, &[]);
    let mut cache = CachedStamper::new(&map);
    cache.begin();
    cache.add_conductance(0, 1, 1.0);
    cache.add_conductance(1, 2, 1.0);
    let _ = cache.finish();
    // Second round with fewer stamps must panic at finish.
    cache.begin();
    cache.add_conductance(0, 1, 1.0);
    let _ = cache.finish();
}

#[test]
fn dirichlet_condensation_matches() {
    // Fixed middle node: both paths must condense identically.
    let map = DofMap::new(3, &[(1, 5.0)]);
    let mut cache = CachedStamper::new(&map);
    cache.begin();
    cache.add_conductance(0, 1, 2.0);
    cache.add_conductance(1, 2, 3.0);
    let (a, b) = cache.finish();
    // Reduced system: nodes 0 and 2; diag gains g; rhs gains g·5.
    assert_eq!(a.get(0, 0), 2.0);
    assert_eq!(a.get(1, 1), 3.0);
    assert_eq!(b, &[10.0, 15.0]);
}
