//! # etherm — electrothermal bonding-wire simulation under uncertain geometries
//!
//! Facade crate re-exporting the full `etherm` workspace: a reproduction of
//! Casper et al., *"Electrothermal Simulation of Bonding Wire Degradation
//! under Uncertain Geometries"* (DATE 2016).
//!
//! The sub-crates are re-exported under short module names:
//!
//! | module | contents |
//! |--------|----------|
//! | [`numerics`] | sparse/dense linear algebra, CG/PCG/BiCGStab/GMRES, quadrature, interpolation, fixed point |
//! | [`grid`] | 3D tensor-product hexahedral primal/dual grid pair (FIT) |
//! | [`materials`] | temperature-dependent σ(T), λ(T), ρc models (laws + tabulated curves) |
//! | [`fit`] | FIT material matrices, Laplacians, boundary operators, Joule heat, electroquasistatics |
//! | [`bondwire`] | lumped electrothermal wires, analytic baselines, fusing bounds, degradation |
//! | [`core`] | coupled transient field–circuit solver and quantities of interest |
//! | [`uq`] | distributions, (quasi-)Monte Carlo, polynomial chaos, Sobol' indices, variance reduction |
//! | [`package`] | the paper's 28-pad/12-wire chip package + synthetic X-ray metrology |
//! | [`reliability`] | rare-event failure probabilities: subset simulation, importance sampling, fusing-current search |
//! | [`report`] | ASCII + SVG charts/tables/heat maps and CSV export |
//! | [`serve`] | multi-tenant serving: compiled-model registry, session pool, NDJSON-over-TCP daemon |

#![forbid(unsafe_code)]

pub use etherm_bondwire as bondwire;
pub use etherm_core as core;
pub use etherm_fit as fit;
pub use etherm_grid as grid;
pub use etherm_materials as materials;
pub use etherm_numerics as numerics;
pub use etherm_package as package;
pub use etherm_reliability as reliability;
pub use etherm_report as report;
pub use etherm_serve as serve;
pub use etherm_uq as uq;
