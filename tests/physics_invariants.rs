//! Physics-invariant tests of the coupled solver on small models: zero
//! drive means no heating, geometric symmetry means symmetric fields,
//! Dirichlet pins hold exactly, and more drive means more heat.

use etherm::bondwire::BondWire;
use etherm::core::{ElectrothermalModel, Simulator, SolverOptions};
use etherm::grid::{Axis, CellPaint, Grid3, MaterialId};
use etherm::materials::{library, MaterialTable};

/// A small epoxy block with two copper end blocks and one wire between
/// their inner top edges, `±v` PEC drive at the outer faces.
fn two_pad_model(v: f64) -> ElectrothermalModel {
    let grid = Grid3::new(
        Axis::uniform(0.0, 2.0e-3, 8).unwrap(),
        Axis::uniform(0.0, 0.5e-3, 2).unwrap(),
        Axis::uniform(0.0, 0.25e-3, 2).unwrap(),
    );
    let mut paint = CellPaint::new(&grid, MaterialId(0));
    let pad_a = etherm::grid::BoxRegion::new((0.0, 0.0, 0.0), (0.5e-3, 0.5e-3, 0.25e-3));
    let pad_b = etherm::grid::BoxRegion::new((1.5e-3, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3));
    paint.paint(&grid, &pad_a, MaterialId(1));
    paint.paint(&grid, &pad_b, MaterialId(1));
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    materials.add(library::copper());
    let mut model = ElectrothermalModel::new(grid, paint, materials).expect("valid model");
    let wire = BondWire::new("w", 1.2e-3, 25.4e-6, library::copper()).expect("wire");
    model
        .add_wire(wire, (0.5e-3, 0.25e-3, 0.25e-3), (1.5e-3, 0.25e-3, 0.25e-3))
        .expect("attach");
    let left: Vec<usize> = model
        .grid()
        .nodes_in_box((0.0, 0.0, 0.0), (0.0, 0.5e-3, 0.25e-3));
    let right: Vec<usize> = model
        .grid()
        .nodes_in_box((2.0e-3, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3));
    model.set_electric_potential(&left, v);
    model.set_electric_potential(&right, -v);
    model
}

#[test]
fn zero_drive_stays_at_ambient() {
    let model = two_pad_model(0.0);
    let sim = Simulator::new(&model, SolverOptions::default()).expect("simulator");
    let sol = sim.run_transient(10.0, 10, &[]).expect("transient");
    for j in 0..sol.n_wires() {
        for &t in sol.wire_series(j) {
            assert!(
                (t - 300.0).abs() < 1e-6,
                "wire {j} left ambient without drive: {t} K"
            );
        }
    }
}

#[test]
fn drive_polarity_does_not_matter() {
    // Joule heat is quadratic in the field: flipping the sign of the drive
    // must produce the identical temperature series.
    let pos = two_pad_model(20e-3);
    let neg = two_pad_model(-20e-3);
    let sol_p = Simulator::new(&pos, SolverOptions::default())
        .unwrap()
        .run_transient(10.0, 10, &[])
        .unwrap();
    let sol_n = Simulator::new(&neg, SolverOptions::default())
        .unwrap()
        .run_transient(10.0, 10, &[])
        .unwrap();
    for i in 0..sol_p.n_times() {
        let a = sol_p.wire_series(0)[i];
        let b = sol_n.wire_series(0)[i];
        assert!((a - b).abs() < 1e-9, "step {i}: {a} vs {b}");
    }
}

#[test]
fn more_drive_means_monotonically_more_heat() {
    let temps: Vec<f64> = [10e-3, 20e-3, 40e-3]
        .iter()
        .map(|&v| {
            let model = two_pad_model(v);
            let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
            let sol = sim.run_transient(10.0, 10, &[]).unwrap();
            *sol.wire_series(0).last().unwrap()
        })
        .collect();
    assert!(
        temps[0] < temps[1] && temps[1] < temps[2],
        "temperatures not monotone in drive: {temps:?}"
    );
    // Low-temperature limit: Joule power ∝ V², so the rise roughly
    // quadruples per doubling while the coupling is weak.
    let rise01 = temps[1] - 300.0;
    let rise0 = temps[0] - 300.0;
    let ratio = rise01 / rise0;
    assert!(
        ratio > 2.5 && ratio < 4.5,
        "rise ratio {ratio} not ~4 (quadratic heating)"
    );
}

#[test]
fn mirror_symmetry_of_the_two_pads() {
    // The model is symmetric under x → 2 mm − x (pads, drive magnitude,
    // wire midpoint). The temperature field must share that symmetry.
    let model = two_pad_model(20e-3);
    let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
    let sol = sim.run_transient(10.0, 10, &[10.0]).unwrap();
    let (_, field) = &sol.snapshots[0];
    let grid = model.grid();
    let lx = 2.0e-3;
    for n in 0..grid.n_nodes() {
        let (x, y, z) = grid.node_position(n);
        let m = grid.nearest_node(lx - x, y, z);
        let (xm, _, _) = grid.node_position(m);
        // Only compare true mirror pairs (uniform axis ⇒ always exact).
        if ((lx - x) - xm).abs() < 1e-12 {
            assert!(
                (field[n] - field[m]).abs() < 1e-6,
                "asymmetry at x = {x}: {} vs {}",
                field[n],
                field[m]
            );
        }
    }
}

#[test]
fn fixed_temperature_nodes_hold_exactly() {
    let mut model = two_pad_model(20e-3);
    let sink: Vec<usize> = model
        .grid()
        .nodes_in_box((0.0, 0.0, 0.0), (0.0, 0.5e-3, 0.25e-3));
    model.set_fixed_temperature(&sink, 310.0);
    let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
    let sol = sim.run_transient(5.0, 5, &[5.0]).unwrap();
    let (_, field) = &sol.snapshots[0];
    for &n in &sink {
        assert_eq!(field[n], 310.0, "Dirichlet node {n} drifted");
    }
}

#[test]
fn stationary_limit_matches_long_transient() {
    let model = two_pad_model(20e-3);
    // The stationary fixed point starts from ambient, far from the
    // solution — allow more Picard iterations than the per-step default.
    let options = SolverOptions {
        picard_max_iter: 400,
        ..SolverOptions::default()
    };
    let sim = Simulator::new(&model, options).unwrap();
    let stationary = sim.solve_stationary().expect("stationary solve");
    assert!(
        stationary.converged,
        "stationary Picard stalled after {} iterations",
        stationary.picard_iterations
    );
    // March far past the settling time of this tiny block.
    let sol = sim.run_transient(2000.0, 200, &[]).expect("transient");
    let t_end = *sol.wire_series(0).last().unwrap();
    let t_stat = sim
        .layout()
        .topology(0)
        .average_temperature(&stationary.temperature);
    assert!(
        (t_end - t_stat).abs() < 0.05 * (t_stat - 300.0).max(0.1),
        "transient end {t_end} K vs stationary {t_stat} K"
    );
}

#[test]
fn adaptive_matches_fixed_step() {
    let model = two_pad_model(20e-3);
    let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
    let fixed = sim.run_transient(10.0, 100, &[]).unwrap();
    let adaptive = sim
        .run_transient_adaptive(10.0, &etherm::core::AdaptiveOptions::default())
        .unwrap();
    let t_fixed = *fixed.wire_series(0).last().unwrap();
    let t_adapt = *adaptive.wire_series(0).last().unwrap();
    assert!(
        (t_fixed - t_adapt).abs() < 0.1 * (t_fixed - 300.0).max(0.01),
        "fixed {t_fixed} K vs adaptive {t_adapt} K"
    );
}
