//! End-to-end smoke test of the full paper pipeline on reduced budgets:
//! package → synthetic X-ray → distribution fit → Monte Carlo → Fig. 7
//! statistics.

use etherm::core::{Simulator, SolverOptions};
use etherm::package::{
    build_model, paper_elongation_distribution, BuildOptions, PackageGeometry, XrayMetrology,
};
use etherm::uq::dist::Distribution;
use etherm::uq::{run_monte_carlo, McOptions, MonteCarloSampler};

fn coarse_options() -> BuildOptions {
    BuildOptions {
        target_spacing_xy: 0.6e-3,
        target_spacing_z: 0.3e-3,
        ..BuildOptions::paper_fig7()
    }
}

#[test]
fn xray_to_fit_pipeline() {
    let geometry = PackageGeometry::paper();
    let measurements = XrayMetrology::default().measure(&geometry);
    assert_eq!(measurements.len(), 12);
    let fit = XrayMetrology::fit(&measurements);
    // One virtual chip lands near the paper's N(0.17, 0.048).
    assert!((fit.mu() - 0.17).abs() < 0.06, "mu = {}", fit.mu());
    assert!((fit.sigma() - 0.048).abs() < 0.05, "sigma = {}", fit.sigma());
}

#[test]
fn nominal_paper_transient_reaches_plausible_temperatures() {
    let geometry = PackageGeometry::paper();
    let built = build_model(&geometry, &coarse_options()).unwrap();
    let sim = Simulator::new(&built.model, SolverOptions::fast()).unwrap();
    let sol = sim.run_transient(50.0, 25, &[]).unwrap();
    let series = sol.max_wire_series();
    // Starts at ambient, rises monotonically (to solver tolerance), ends in
    // the paper's regime (well above 400 K, below the runaway range).
    assert_eq!(series[0], 300.0);
    for w in series.windows(2) {
        assert!(w[1] >= w[0] - 1e-6, "non-monotone rise: {w:?}");
    }
    let end = *series.last().unwrap();
    assert!((420.0..560.0).contains(&end), "E_max(50 s) = {end} K");
    // The hottest wire is among the shortest (paper §V-D).
    let (j_hot, _) = sol.hottest_wire().unwrap();
    let mut lengths = built.nominal_lengths.clone();
    lengths.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = lengths[6];
    assert!(
        built.nominal_lengths[j_hot] <= median,
        "hottest wire #{j_hot} is not among the shorter half"
    );
}

#[test]
fn mini_monte_carlo_statistics_are_sane() {
    let geometry = PackageGeometry::paper();
    let mut built = build_model(&geometry, &coarse_options()).unwrap();
    let delta = paper_elongation_distribution();
    let dists: Vec<&dyn Distribution> = (0..12).map(|_| &delta as &dyn Distribution).collect();
    let steps = 10;
    let mut gen = MonteCarloSampler::new(5);
    let result = run_monte_carlo(
        &mut gen,
        &dists,
        8,
        McOptions::default(),
        |_, deltas| -> Result<Vec<f64>, String> {
            built.apply_elongations(deltas).map_err(|e| e.to_string())?;
            let sim = Simulator::new(&built.model, SolverOptions::fast()).map_err(|e| e.to_string())?;
            let sol = sim.run_transient(50.0, steps, &[]).map_err(|e| e.to_string())?;
            Ok(vec![sol.max_wire_series()[steps]])
        },
    )
    .unwrap();
    let stats = result.output(0);
    assert_eq!(stats.count(), 8);
    // Spread from the elongation uncertainty is nonzero but far below the
    // temperature rise itself.
    assert!(stats.sample_std() > 0.05, "sigma = {}", stats.sample_std());
    assert!(stats.sample_std() < 0.3 * (stats.mean() - 300.0));
    // Eq. (6): error = sigma/sqrt(M).
    let expect = stats.sample_std() / (8f64).sqrt();
    assert!((stats.mc_error() - expect).abs() < 1e-12);
}

#[test]
fn elongation_increases_resistance_decreases_power() {
    // Single deterministic check of the core MC mechanism: longer wires →
    // larger resistance → less dissipated power at fixed voltage.
    let geometry = PackageGeometry::paper();
    let mut built = build_model(&geometry, &coarse_options()).unwrap();

    built.apply_elongations(&[0.05; 12]).unwrap();
    let sim = Simulator::new(&built.model, SolverOptions::fast()).unwrap();
    let sol_short = sim.run_transient(10.0, 5, &[]).unwrap();
    let p_short: f64 = sol_short.wire_powers.iter().map(|w| *w.last().unwrap()).sum();

    built.apply_elongations(&[0.30; 12]).unwrap();
    let sim = Simulator::new(&built.model, SolverOptions::fast()).unwrap();
    let sol_long = sim.run_transient(10.0, 5, &[]).unwrap();
    let p_long: f64 = sol_long.wire_powers.iter().map(|w| *w.last().unwrap()).sum();

    assert!(
        p_short > p_long * 1.1,
        "short wires {p_short} W vs long wires {p_long} W"
    );
}
