//! Cross-crate validation of the coupled solver against analytic solutions.

use etherm::bondwire::BondWire;
use etherm::core::{ElectrothermalModel, Simulator, SolverOptions};
use etherm::fit::boundary::ThermalBoundary;
use etherm::grid::{Axis, BoxRegion, CellPaint, Grid3, GridBuilder, MaterialId};
use etherm::materials::{library, Material, MaterialTable, TemperatureModel};

/// A homogeneous copper block (constant properties for exact comparisons).
fn copper_block(nx: usize) -> ElectrothermalModel {
    let grid = Grid3::new(
        Axis::uniform(0.0, 1e-3, nx).unwrap(),
        Axis::uniform(0.0, 1e-3, 2).unwrap(),
        Axis::uniform(0.0, 1e-3, 2).unwrap(),
    );
    let paint = CellPaint::new(&grid, MaterialId(0));
    let mut materials = MaterialTable::new();
    materials.add(Material::new(
        "const copper",
        TemperatureModel::Constant(5.8e7),
        TemperatureModel::Constant(398.0),
        3.45e6,
    ));
    ElectrothermalModel::new(grid, paint, materials).unwrap()
}

#[test]
fn block_resistance_matches_analytic() {
    // R = L/(σA) with L = A_cross = 1e-3 ... R = 1e-3/(5.8e7 · 1e-6).
    let mut model = copper_block(8);
    let left: Vec<usize> = (0..model.grid().n_nodes())
        .filter(|&n| model.grid().node_position(n).0 == 0.0)
        .collect();
    let right: Vec<usize> = (0..model.grid().n_nodes())
        .filter(|&n| (model.grid().node_position(n).0 - 1e-3).abs() < 1e-12)
        .collect();
    let v = 1e-3;
    model.set_electric_potential(&left, v);
    model.set_electric_potential(&right, 0.0);
    model.set_thermal_boundary(ThermalBoundary::convective(100.0, 300.0));

    let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
    let st = sim.solve_stationary().unwrap();
    let r_analytic = 1e-3 / (5.8e7 * 1e-6);
    let p_expected = v * v / r_analytic;
    assert!(
        (st.field_power - p_expected).abs() < 1e-9 * p_expected,
        "power {} vs {}",
        st.field_power,
        p_expected
    );
}

#[test]
fn lumped_capacity_cooling_matches_ode() {
    // A copper block starting at 350 K in a 300 K environment with pure
    // convection cools as T(t) = 300 + 50·exp(−hA·t/C) (Biot ≪ 1).
    let mut model = copper_block(4);
    model.set_ambient(350.0);
    let h = 200.0;
    model.set_thermal_boundary(ThermalBoundary::convective(h, 300.0));
    let sim = Simulator::new(&model, SolverOptions::default()).unwrap();

    let volume = 1e-9; // (1 mm)³
    let area = 6e-6; // 6 faces × 1 mm²
    let c = 3.45e6 * volume;
    let tau = c / (h * area);

    // Integrate 2·tau with enough steps that the implicit-Euler error is
    // a few percent.
    let t_end = 2.0 * tau;
    let steps = 400;
    let sol = sim.run_transient(t_end, steps, &[t_end]).unwrap();
    let (_, state) = &sol.snapshots[0];
    let mean: f64 =
        state[..model.grid().n_nodes()].iter().sum::<f64>() / model.grid().n_nodes() as f64;
    let analytic = 300.0 + 50.0 * (-t_end / tau).exp();
    assert!(
        (mean - analytic).abs() < 0.5,
        "block cooled to {mean} K, ODE predicts {analytic} K (tau = {tau} s)"
    );
}

#[test]
fn stationary_equals_long_transient_with_wire() {
    // Two pads + wire: the transient must converge to the stationary limit.
    let pad_a = BoxRegion::new((0.0, 0.0, 0.0), (0.4e-3, 0.4e-3, 0.2e-3));
    let pad_b = BoxRegion::new((1.2e-3, 0.0, 0.0), (1.6e-3, 0.4e-3, 0.2e-3));
    let mold = BoxRegion::new((0.0, 0.0, 0.0), (1.6e-3, 0.4e-3, 0.2e-3));
    let grid = GridBuilder::new()
        .with_box(&mold)
        .with_box(&pad_a)
        .with_box(&pad_b)
        .with_target_spacing(0.2e-3)
        .build()
        .unwrap();
    let mut paint = CellPaint::new(&grid, MaterialId(0));
    paint.paint(&grid, &pad_a, MaterialId(1));
    paint.paint(&grid, &pad_b, MaterialId(1));
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    materials.add(library::copper());
    let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
    let wire = BondWire::new("w", 1.0e-3, 25.4e-6, library::copper()).unwrap();
    model
        .add_wire(wire, (0.4e-3, 0.2e-3, 0.2e-3), (1.2e-3, 0.2e-3, 0.2e-3))
        .unwrap();
    let left = model.grid().nodes_in_box((0.0, 0.0, 0.0), (0.0, 0.4e-3, 0.2e-3));
    let right = model
        .grid()
        .nodes_in_box((1.6e-3, 0.0, 0.0), (1.6e-3, 0.4e-3, 0.2e-3));
    model.set_electric_potential(&left, 20e-3);
    model.set_electric_potential(&right, -20e-3);

    // The stationary fixed point converges slowly here (strong σ(T)
    // feedback at a large temperature rise) — allow more Picard iterations.
    let options = SolverOptions {
        picard_max_iter: 120,
        ..SolverOptions::default()
    };
    let sim = Simulator::new(&model, options).unwrap();
    let st = sim.solve_stationary().unwrap();
    assert!(st.converged, "picard iterations: {}", st.picard_iterations);
    let tr = sim.run_transient(200.0, 100, &[]).unwrap();
    let t_wire_stationary =
        sim.layout().topology(0).average_temperature(&st.temperature);
    let t_wire_end = *tr.wire_series(0).last().unwrap();
    assert!(
        (t_wire_end - t_wire_stationary).abs() < 0.05 * (t_wire_stationary - 300.0).abs().max(0.1),
        "transient end {t_wire_end} K vs stationary {t_wire_stationary} K"
    );
    // Energy balance in the stationary limit.
    let n_grid = model.grid().n_nodes();
    let out = model
        .thermal_boundary()
        .outgoing_power(model.grid(), &st.temperature[..n_grid]);
    let total_in = st.field_power + st.wire_powers.iter().sum::<f64>();
    assert!(
        (out - total_in).abs() < 0.03 * total_in,
        "energy balance: in {total_in} W vs out {out} W"
    );
}

#[test]
fn multi_segment_wire_agrees_with_single_segment_on_qoi() {
    // The endpoint-average QoI must be nearly independent of segmentation.
    let run = |segments: usize| -> f64 {
        let pad_a = BoxRegion::new((0.0, 0.0, 0.0), (0.4e-3, 0.4e-3, 0.2e-3));
        let pad_b = BoxRegion::new((1.2e-3, 0.0, 0.0), (1.6e-3, 0.4e-3, 0.2e-3));
        let mold = BoxRegion::new((0.0, 0.0, 0.0), (1.6e-3, 0.4e-3, 0.2e-3));
        let grid = GridBuilder::new()
            .with_box(&mold)
            .with_box(&pad_a)
            .with_box(&pad_b)
            .with_target_spacing(0.2e-3)
            .build()
            .unwrap();
        let mut paint = CellPaint::new(&grid, MaterialId(0));
        paint.paint(&grid, &pad_a, MaterialId(1));
        paint.paint(&grid, &pad_b, MaterialId(1));
        let mut materials = MaterialTable::new();
        materials.add(library::epoxy_resin());
        materials.add(library::copper());
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let wire = BondWire::new("w", 1.0e-3, 25.4e-6, library::copper())
            .unwrap()
            .with_segments(segments)
            .unwrap();
        model
            .add_wire(wire, (0.4e-3, 0.2e-3, 0.2e-3), (1.2e-3, 0.2e-3, 0.2e-3))
            .unwrap();
        let left = model.grid().nodes_in_box((0.0, 0.0, 0.0), (0.0, 0.4e-3, 0.2e-3));
        let right = model
            .grid()
            .nodes_in_box((1.6e-3, 0.0, 0.0), (1.6e-3, 0.4e-3, 0.2e-3));
        model.set_electric_potential(&left, 20e-3);
        model.set_electric_potential(&right, -20e-3);
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let sol = sim.run_transient(30.0, 30, &[]).unwrap();
        *sol.wire_series(0).last().unwrap()
    };
    let t1 = run(1);
    let t4 = run(4);
    assert!(
        (t1 - t4).abs() < 0.02 * (t1 - 300.0),
        "1 segment: {t1} K, 4 segments: {t4} K"
    );
}
