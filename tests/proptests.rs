//! Cross-crate property-based tests.

use etherm::bondwire::BondWire;
use etherm::core::{ElectrothermalModel, Simulator, SolverOptions};
use etherm::fit::boundary::ThermalBoundary;
use etherm::grid::{Axis, CellPaint, Grid3, MaterialId};
use etherm::materials::{library, Material, MaterialTable, TemperatureModel};
use etherm::uq::dist::Distribution;
use etherm::uq::{Normal, TruncatedNormal};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Electrical dissipation in a homogeneous bar equals V²·σA/L for any
    /// conductivity and drive voltage.
    #[test]
    fn bar_power_scales_with_sigma_and_voltage(
        sigma in 1e5f64..1e8,
        v in 1e-4f64..0.1,
    ) {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1e-3, 4).unwrap(),
            Axis::uniform(0.0, 0.5e-3, 2).unwrap(),
            Axis::uniform(0.0, 0.5e-3, 2).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(Material::new(
            "m",
            TemperatureModel::Constant(sigma),
            TemperatureModel::Constant(100.0),
            1e6,
        ));
        let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
        let left: Vec<usize> = (0..model.grid().n_nodes())
            .filter(|&n| model.grid().node_position(n).0 == 0.0)
            .collect();
        let right: Vec<usize> = (0..model.grid().n_nodes())
            .filter(|&n| (model.grid().node_position(n).0 - 1e-3).abs() < 1e-12)
            .collect();
        model.set_electric_potential(&left, v);
        model.set_electric_potential(&right, 0.0);
        model.set_thermal_boundary(ThermalBoundary::convective(1000.0, 300.0));
        let sim = Simulator::new(&model, SolverOptions::default()).unwrap();
        let st = sim.solve_stationary().unwrap();
        let expect = v * v * sigma * 0.25e-6 / 1e-3;
        prop_assert!(
            (st.field_power - expect).abs() < 1e-6 * expect,
            "power {} vs {}", st.field_power, expect
        );
    }

    /// Wire conductance laws: longer wires conduct less, thicker wires
    /// more, hotter wires less — for arbitrary valid geometry.
    #[test]
    fn wire_conductance_monotonicity(
        length_mm in 0.5f64..4.0,
        d_um in 10.0f64..60.0,
        t in 300.0f64..520.0,
    ) {
        let l = length_mm * 1e-3;
        let d = d_um * 1e-6;
        let w = BondWire::new("w", l, d, library::copper()).unwrap();
        let longer = w.with_length(l * 1.3).unwrap();
        prop_assert!(longer.electrical_conductance(t) < w.electrical_conductance(t));
        let thicker = BondWire::new("w2", l, d * 1.2, library::copper()).unwrap();
        prop_assert!(thicker.electrical_conductance(t) > w.electrical_conductance(t));
        prop_assert!(w.electrical_conductance(t + 50.0) < w.electrical_conductance(t));
        // Thermal and electrical conductances share the geometry factor.
        let ratio = w.thermal_conductance(t) / w.electrical_conductance(t);
        let expect = library::copper().lambda(t) / library::copper().sigma(t);
        prop_assert!((ratio - expect).abs() < 1e-12 * expect);
    }

    /// Distribution sampling by inversion stays inside truncation bounds
    /// and reproduces the mean within the MC error.
    #[test]
    fn truncated_sampling_respects_bounds(
        mu in -1.0f64..1.0,
        sigma in 0.01f64..0.5,
        seed in 0u64..1000,
    ) {
        let lo = mu - 1.5 * sigma;
        let hi = mu + 2.0 * sigma;
        let dist = TruncatedNormal::new(mu, sigma, lo, hi).unwrap();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let n = 500;
        for _ in 0..n {
            let x = dist.quantile(rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12));
            prop_assert!(x >= lo - 1e-12 && x <= hi + 1e-12);
            sum += x;
        }
        let mean = sum / n as f64;
        prop_assert!((mean - dist.mean()).abs() < 6.0 * dist.std_dev() / (n as f64).sqrt());
    }

    /// The normal quantile transform preserves stochastic ordering.
    #[test]
    fn quantile_is_monotone(mu in -5.0f64..5.0, sigma in 0.1f64..3.0, u1 in 0.01f64..0.99, u2 in 0.01f64..0.99) {
        let n = Normal::new(mu, sigma).unwrap();
        let (a, b) = (u1.min(u2), u1.max(u2));
        prop_assert!(n.quantile(a) <= n.quantile(b) + 1e-12);
    }

    /// Grid paint + capacitance: total heat capacity equals the painted
    /// volumes times their ρc, independent of mesh resolution.
    #[test]
    fn heat_capacity_is_mesh_independent(n in 2usize..6) {
        let grid = Grid3::new(
            Axis::uniform(0.0, 1.0, n).unwrap(),
            Axis::uniform(0.0, 1.0, n).unwrap(),
            Axis::uniform(0.0, 1.0, n).unwrap(),
        );
        let paint = CellPaint::new(&grid, MaterialId(0));
        let mut materials = MaterialTable::new();
        materials.add(library::copper());
        let cap = etherm::fit::matrices::node_capacitance_diagonal(&grid, &paint, &materials);
        let total: f64 = cap.iter().sum();
        let expect = library::copper().rho_c(); // 1 m³ of copper
        prop_assert!((total - expect).abs() < 1e-6 * expect);
    }
}
