//! Workspace smoke test: the facade crate alone is enough to build the
//! paper's 28-pad / 12-wire package and advance the coupled electrothermal
//! transient by one implicit-Euler step.
//!
//! This is intentionally the cheapest end-to-end exercise of the whole stack
//! (grid → materials → FIT assembly → bondwire stamping → coupled solve):
//! it uses a coarse mesh and a single step so it stays fast in every profile.

use etherm::core::{Simulator, SolverOptions};
use etherm::package::paper::PaperParameters;
use etherm::package::{build_model, BuildOptions, PackageGeometry};

#[test]
fn paper_package_one_implicit_euler_step() {
    let geometry = PackageGeometry::paper();
    let mut options = BuildOptions::paper_fig7();
    // Coarse smoke-test mesh; the production MC mesh lives in the examples.
    options.target_spacing_xy = 0.8e-3;
    options.target_spacing_z = 0.4e-3;
    let built = build_model(&geometry, &options).expect("paper package builds");
    assert_eq!(built.model.wires().len(), 12, "paper package has 12 wires");

    let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
    // One implicit-Euler step of Δt = 1 s.
    let sol = sim.run_transient(1.0, 1, &[]).expect("one step converges");

    let ambient = PaperParameters::default().ambient;
    let (hottest, t_end) = sol.hottest_wire().expect("wire QoIs present");
    assert!(hottest < 12);
    assert!(t_end.is_finite(), "wire temperature is finite");
    // One second of 40 mV drive heats the wires, but nowhere near fusing:
    // physically plausible means "warmer than ambient, below the 523 K
    // critical temperature with margin".
    assert!(
        t_end > ambient - 1e-6,
        "wire must not cool below ambient: {t_end} K < {ambient} K"
    );
    assert!(
        t_end < 523.0,
        "one step at 40 mV must stay below the critical temperature: {t_end} K"
    );

    // Every wire series starts at ambient and stays finite.
    for j in 0..12 {
        let series = sol.wire_series(j);
        assert_eq!(series.len(), 2, "t = 0 and t = 1 s");
        assert!((series[0] - ambient).abs() < 1e-9, "starts at ambient");
        assert!(series[1].is_finite());
        assert!(series[1] >= series[0] - 1e-9, "heating, not cooling");
    }
}
