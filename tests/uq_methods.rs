//! Cross-validation of the UQ method family on the bonding-wire problem:
//! plain Monte Carlo (the paper's estimator), polynomial chaos, Saltelli
//! Sobol' indices, and the variance-reduction estimators must all agree on
//! the same quantity of interest.
//!
//! The QoI is the analytic fin model's peak temperature as a function of
//! the uncertain wire length — cheap enough to run thousands of times, yet
//! exercising the same σ(T)-nonlinear physics as the full field model.

use etherm::bondwire::analytic::FinModel;
use etherm::bondwire::BondWire;
use etherm::materials::library;
use etherm::package::paper_elongation_distribution;
use etherm::uq::special::normal_quantile;
use etherm::uq::{
    antithetic, fit_projection_1d, fit_regression, sobol_saltelli, Distribution, RunningStats,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const D_DIRECT: f64 = 1.3e-3;

/// Peak fin temperature for relative elongation `delta`.
fn peak_temp(delta: f64) -> f64 {
    let l = D_DIRECT / (1.0 - delta.clamp(-0.5, 0.9));
    let wire = BondWire::new("w", l, 25.4e-6, library::copper()).expect("wire");
    let mut fin = FinModel::new(wire, 300.0, 300.0, 300.0, 25.0, 0.45);
    fin.solve_self_consistent(1e-10, 200).1
}

#[test]
fn pce_and_monte_carlo_agree_on_mean_and_std() {
    let dist = paper_elongation_distribution();
    let (mu, sd) = (dist.mean(), dist.std_dev());

    // Spectral reference.
    let pce = fit_projection_1d(|xi| peak_temp(mu + sd * xi), 6, 16).expect("projection");

    // MC with M = 4000 → error_MC ≈ σ/63.
    let mut rng = StdRng::seed_from_u64(99);
    let mut mc = RunningStats::new();
    for _ in 0..4000 {
        let xi = normal_quantile(rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12));
        mc.push(peak_temp(mu + sd * xi));
    }
    let tol = 4.0 * mc.mc_error();
    assert!(
        (pce.mean() - mc.mean()).abs() < tol,
        "PCE mean {} vs MC mean {} (tol {tol})",
        pce.mean(),
        mc.mean()
    );
    assert!(
        (pce.std_dev() - mc.sample_std()).abs() / mc.sample_std() < 0.1,
        "PCE std {} vs MC std {}",
        pce.std_dev(),
        mc.sample_std()
    );
}

#[test]
fn regression_pce_matches_projection_pce() {
    let dist = paper_elongation_distribution();
    let (mu, sd) = (dist.mean(), dist.std_dev());
    let projection = fit_projection_1d(|xi| peak_temp(mu + sd * xi), 3, 10).expect("projection");

    let mut rng = StdRng::seed_from_u64(7);
    let xi: Vec<Vec<f64>> = (0..200)
        .map(|_| vec![normal_quantile(rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12))])
        .collect();
    let y: Vec<f64> = xi.iter().map(|x| peak_temp(mu + sd * x[0])).collect();
    let regression = fit_regression(&xi, &y, 1, 3).expect("regression");

    assert!(
        (projection.mean() - regression.mean()).abs() < 0.05,
        "means: projection {} vs regression {}",
        projection.mean(),
        regression.mean()
    );
    assert!(
        (projection.std_dev() - regression.std_dev()).abs() / projection.std_dev() < 0.15,
        "stds: projection {} vs regression {}",
        projection.std_dev(),
        regression.std_dev()
    );
}

#[test]
fn antithetic_mean_matches_mc_with_smaller_error() {
    let dist = paper_elongation_distribution();
    let qoi = |u: &[f64]| peak_temp(dist.quantile(u[0].clamp(1e-12, 1.0 - 1e-12)));

    let anti = antithetic(qoi, 1, 500, 4).expect("antithetic");
    let mut rng = StdRng::seed_from_u64(4);
    let mut plain = RunningStats::new();
    for _ in 0..1000 {
        plain.push(qoi(&[rng.gen::<f64>()]));
    }
    assert!(
        (anti.mean - plain.mean()).abs() < 4.0 * (anti.std_error + plain.mc_error()),
        "antithetic {} vs plain {}",
        anti.mean,
        plain.mean()
    );
    // The QoI is monotone in δ: antithetic must not be worse.
    assert!(anti.std_error <= plain.mc_error() * 1.05);
}

#[test]
fn saltelli_and_pce_sobol_agree_for_two_wires() {
    // Two *independent* wires; QoI = max of both peak temperatures. With
    // iid inputs both wires should carry comparable sensitivity and the
    // Saltelli estimates should match the chaos-based indices.
    let dist = paper_elongation_distribution();
    let (mu, sd) = (dist.mean(), dist.std_dev());
    // Wire 2 is 15 % longer → hotter → dominates the max.
    let qoi_xi = |xi: &[f64]| -> f64 {
        let t1 = peak_temp(mu + sd * xi[0]);
        let t2 = peak_temp(0.15 + mu + sd * xi[1]);
        t1.max(t2)
    };

    // Chaos surrogate via regression on 300 germ samples.
    let mut rng = StdRng::seed_from_u64(13);
    let xi: Vec<Vec<f64>> = (0..300)
        .map(|_| {
            (0..2)
                .map(|_| normal_quantile(rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12)))
                .collect()
        })
        .collect();
    let y: Vec<f64> = xi.iter().map(|x| qoi_xi(x)).collect();
    let pce = fit_regression(&xi, &y, 2, 2).expect("regression");

    // Saltelli on the uniform-cube parameterization of the same QoI.
    let qoi_u = |u: &[f64]| -> f64 {
        let x0 = normal_quantile(u[0].clamp(1e-12, 1.0 - 1e-12));
        let x1 = normal_quantile(u[1].clamp(1e-12, 1.0 - 1e-12));
        qoi_xi(&[x0, x1])
    };
    let saltelli = sobol_saltelli(qoi_u, 2, 4096, 21).expect("saltelli");

    for i in 0..2 {
        assert!(
            (pce.sobol_total(i) - saltelli.s_total[i]).abs() < 0.1,
            "input {i}: PCE {} vs Saltelli {}",
            pce.sobol_total(i),
            saltelli.s_total[i]
        );
    }
    // The longer wire dominates.
    assert!(saltelli.s_total[1] > saltelli.s_total[0]);
    assert!(pce.sobol_total(1) > pce.sobol_total(0));
}

#[test]
fn pce_surrogate_predicts_out_of_sample() {
    let dist = paper_elongation_distribution();
    let (mu, sd) = (dist.mean(), dist.std_dev());
    let pce = fit_projection_1d(|xi| peak_temp(mu + sd * xi), 5, 12).expect("projection");
    // Evaluate the surrogate where it was *not* fitted and compare with the
    // true model inside ±2σ.
    for &xi in &[-2.0, -1.3, -0.4, 0.0, 0.7, 1.6, 2.0] {
        let truth = peak_temp(mu + sd * xi);
        let pred = pce.eval(&[xi]);
        assert!(
            (pred - truth).abs() < 0.02,
            "xi = {xi}: surrogate {pred} vs truth {truth}"
        );
    }
}
