//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses:
//!
//! - [`SeedableRng::seed_from_u64`] — every RNG in the workspace is
//!   constructed from an explicit seed (determinism is a project invariant),
//! - [`Rng::gen`] / [`Rng::gen_range`],
//! - [`rngs::StdRng`] — here a xoshiro256\*\* generator seeded via SplitMix64.
//!
//! The generator is *not* bit-compatible with upstream `rand`'s `StdRng`
//! (which is ChaCha12); it is a small, fast, well-tested PRNG that keeps all
//! seeded simulations reproducible run-to-run on every platform.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience methods for sampling values, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution that can produce values of type `T` from an RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform on `[0, 1)` for floats, uniform over
/// the full domain for integers and `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, n)` via Lemire's widening-multiply
/// method with rejection of the biased low fraction.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(n as u128);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = Standard.sample(rng);
                self.start + (self.end - self.start) * u as $t
            }
        }
    )*};
}

impl_float_sample_range!(f64, f32);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (Blackman & Vigna), seeded via
    /// SplitMix64. Stands in for upstream `rand`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..200usize {
            let j = rng.gen_range(0..=i);
            assert!(j <= i);
            if i > 0 {
                let k = rng.gen_range(0..i);
                assert!(k < i);
            }
        }
        let mut saw_hi = false;
        for _ in 0..500 {
            if rng.gen_range(0..=3usize) == 3 {
                saw_hi = true;
            }
        }
        assert!(saw_hi, "inclusive upper bound is reachable");
    }
}
