//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of criterion's API the workspace's benches use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short warm-up, then `sample_size`
//! timed samples of an adaptively chosen batch of iterations; median, min and
//! max per-iteration wall time are printed. There is no statistical outlier
//! analysis, plotting, or HTML report — the point is that `cargo bench`
//! compiles and produces useful relative numbers offline.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value or the computation feeding it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark, e.g. `BenchmarkId::new("spmv", n)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median/min/max per-iteration time of the last run, for reporting.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            result: None,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: aim for >= 1ms per sample so Instant
        // granularity does not dominate short kernels.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed() / batch as u32);
        }
        per_iter.sort();
        self.result = Some((
            per_iter[per_iter.len() / 2],
            per_iter[0],
            per_iter[per_iter.len() - 1],
        ));
    }
}

fn report(name: &str, bencher: &Bencher) {
    match bencher.result {
        Some((median, min, max)) => println!(
            "{:<60} time: [{:>12?} {:>12?} {:>12?}]",
            name, min, median, max
        ),
        None => println!("{:<60} (no measurement)", name),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&id.name, &b);
        self
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
