//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`Strategy`] with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//! - range strategies (`-1.0f64..1.0`, `2usize..10`, …), tuple strategies,
//!   [`Just`], and [`collection::vec`],
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! **deterministic** (the per-test RNG is seeded from the test's name, so
//! `cargo test` is reproducible run-to-run) and failing cases are **not
//! shrunk** — the failing input is reported as generated.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test deterministic RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Seed deterministically from the test's name so every test draws an
        /// independent, reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Error type returned (via `prop_assert!`) from a failing test case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies live behind references inside tuple strategies.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = rng.0.gen();
                self.start + (self.end - self.start) * u as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f64, f32);

// Signed integer ranges sample via an unsigned offset from the start.
macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as $u;
                let off = rng.0.gen_range(0..span as u64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i64 => u64, i32 => u64, i16 => u64, i8 => u64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: an exact `usize` or a `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange(core::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng;
            let len = if self.size.0.len() <= 1 {
                self.size.0.start
            } else {
                rng.0.gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Define deterministic property tests.
///
/// Supports the forms used across this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in proptest::collection::vec(0usize..8, 1..10)) {
///         prop_assert!(x >= 0.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len = {}", v.len());
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn combinators_compose(pair in (1usize..4).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0.0f64..1.0, n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let strat = crate::collection::vec(-1.0f64..1.0, 8);
        let a = strat.new_value(&mut TestRng::for_test("t"));
        let b = strat.new_value(&mut TestRng::for_test("t"));
        assert_eq!(a, b);
    }
}
